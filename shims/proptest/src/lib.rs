//! Offline stand-in for the `proptest` crate.
//!
//! Runs each `proptest!` test body against `cases` deterministically
//! seeded random inputs. No shrinking: a failing case panics with the
//! case index so it can be reproduced (generation is a pure function of
//! the case index). Supports the strategy surface this workspace uses:
//! integer and float ranges, a regex subset for strings (`.{m,n}` and
//! `[class]{m,n}`), tuples, `collection::vec`, `Vec<impl Strategy>`,
//! `prop_map`, and `prop_flat_map`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// A vector of strategies generates a vector of one value from each —
/// proptest's "every element is its own strategy" form.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// String strategies from a regex subset: `.{m,n}` or `[class]{m,n}`
/// where `class` supports literal characters and `a-z` ranges. This is
/// all the workspace's patterns use; anything else panics loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

/// Characters `.` may produce: a mix of ASCII, whitespace, and
/// multi-byte scalars so Unicode handling gets exercised.
const DOT_ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'm', 'n', 'o', 's', 't', 'z', 'A', 'B', 'C', 'M', 'X',
    'Z', '0', '1', '7', '9', ' ', '-', '_', '.', ',', '\'', 'é', 'ß', 'ø', '中', '✓',
];

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pattern.chars().collect();
    let (alphabet, rest_idx) = if chars.first() == Some(&'.') {
        (DOT_ALPHABET.to_vec(), 1)
    } else if chars.first() == Some(&'[') {
        let close = chars
            .iter()
            .position(|&c| c == ']')
            .unwrap_or_else(|| panic!("unclosed class in pattern `{pattern}`"));
        let mut alphabet = Vec::new();
        let mut i = 1;
        while i < close {
            if i + 2 < close && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "bad range in pattern `{pattern}`");
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).expect("valid scalar range"));
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty class in pattern `{pattern}`");
        (alphabet, close + 1)
    } else {
        panic!("unsupported pattern `{pattern}`: expected `.` or `[class]`");
    };

    let rest: String = chars[rest_idx..].iter().collect();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| {
            panic!("unsupported pattern `{pattern}`: expected `{{m,n}}` repetition")
        });
    let (min, max) = match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().expect("pattern min repeat"),
            hi.parse().expect("pattern max repeat"),
        ),
        None => {
            let n = inner.parse().expect("pattern repeat");
            (n, n)
        }
    };
    (alphabet, min, max)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors whose elements come from `element` and whose
    /// length is uniform over `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: random-length vectors.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The deterministic per-case generator: a fixed base seed mixed with
/// the case index, so case `k` reproduces independently of the others.
pub fn test_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x5EED_CA5E ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Resolve the case count, honoring the `PROPTEST_CASES` env override.
pub fn resolve_cases(configured: u32) -> u64 {
    u64::from(configured.max(1))
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Property-test entry macro. Each `#[test] fn name(arg in strategy, ...)`
/// item expands to a normal test running `cases` seeded iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(__cfg.cases);
            for __case in 0..__cases {
                let mut __rng = $crate::test_rng(__case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                let __run = || -> () { $body };
                __run();
            }
        }
    )*};
}

/// Like `assert!` but inside a property body (no shrinking, so this is
/// a plain assertion).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = test_rng(0);
        for _ in 0..200 {
            let v = (0u32..10, 5usize..=6).generate(&mut rng);
            assert!(v.0 < 10);
            assert!((5..=6).contains(&v.1));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = test_rng(1);
        for _ in 0..100 {
            let s = "[a-c ]{0,20}".generate(&mut rng);
            assert!(s.chars().count() <= 20);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == ' '));
            let t = ".{1,16}".generate(&mut rng);
            let n = t.chars().count();
            assert!((1..=16).contains(&n));
        }
    }

    #[test]
    fn vec_of_strategies_is_elementwise() {
        let mut rng = test_rng(2);
        let strategies = vec![0u32..1, 5u32..6, 9u32..10];
        let v = strategies.generate(&mut rng);
        assert_eq!(v, vec![0, 5, 9]);
    }

    #[test]
    fn determinism_per_case() {
        let s = collection::vec(0u64..1000, 2..12);
        let a = s.generate(&mut test_rng(7));
        let b = s.generate(&mut test_rng(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn self_hosted_macro_works(x in 0u8..100, s in "[a-d]{0,6}",) {
            prop_assert!(x < 100);
            prop_assert!(s.len() <= 6);
        }
    }
}
