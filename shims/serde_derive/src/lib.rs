//! Offline stand-in for `serde_derive`.
//!
//! Parses `struct`/`enum` definitions directly from the token stream
//! (no `syn`/`quote` — those aren't available offline) and emits
//! implementations of the shim `serde`'s `Serialize`/`Deserialize`
//! traits, which route through the owned `serde::Value` data model.
//!
//! Supported shapes — everything this workspace derives:
//! named structs, tuple structs, unit structs, and enums mixing unit,
//! tuple, and struct variants; lifetime/type generics on the container.
//! Serde attributes (`#[serde(...)]`) are not supported and will
//! simply be ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of body an item (or enum variant) has.
enum Fields {
    Unit,
    /// Field names in declaration order.
    Named(Vec<String>),
    /// Number of positional fields.
    Tuple(usize),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    /// Full generic parameter list incl. bounds, e.g. `<'a, T: Clone>`.
    generics_decl: String,
    /// Generic arguments for the use site, e.g. `<'a, T>`.
    generics_use: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let item_kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found `{other}`"),
    };
    i += 1;

    let (generics_decl, generics_use) = parse_generics(&tokens, &mut i);

    // Skip a `where` clause if present (none in this workspace, but cheap
    // to tolerate): everything up to the body group.
    while i < tokens.len()
        && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis)
        && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ';')
    {
        i += 1;
    }

    let kind = if item_kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Fields::Unit),
        }
    } else if item_kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found `{other:?}`"),
        }
    } else {
        panic!(
            "derive(Serialize/Deserialize) supports only structs and enums, found `{item_kind}`"
        );
    };

    Input {
        name,
        generics_decl,
        generics_use,
        kind,
    }
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parse `<...>` generics at position `i` (if any) into the declaration
/// string (with bounds) and the use-site argument string (without).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (String, String) {
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (String::new(), String::new());
    }
    *i += 1; // '<'
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                inner.push(tokens[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
                inner.push(tokens[*i].clone());
            }
            t => inner.push(t.clone()),
        }
        *i += 1;
    }

    let decl = format!("<{}>", tokens_to_string(&inner));

    // Use-site arguments: for each comma-separated param take the
    // lifetime (`'a`) or the first identifier (skipping `const`).
    let mut args: Vec<String> = Vec::new();
    for param in split_top_level(&inner) {
        let mut j = 0;
        while j < param.len() {
            match &param[j] {
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    if let Some(TokenTree::Ident(id)) = param.get(j + 1) {
                        args.push(format!("'{id}"));
                    }
                    break;
                }
                TokenTree::Ident(id) if id.to_string() == "const" => {
                    j += 1;
                }
                TokenTree::Ident(id) => {
                    args.push(id.to_string());
                    break;
                }
                _ => j += 1,
            }
        }
    }
    let use_site = if args.is_empty() {
        String::new()
    } else {
        format!("<{}>", args.join(", "))
    };
    (decl, use_site)
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Split a token list on commas at angle-bracket depth zero. Nested
/// `()`/`[]`/`{}` arrive as single `Group` tokens, so only `<`/`>` need
/// explicit depth tracking; `->` is skipped so return types never
/// unbalance it.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth = 0usize;
    let mut k = 0;
    while k < tokens.len() {
        match &tokens[k] {
            TokenTree::Punct(p) if p.as_char() == '-' => {
                // A possible `->`: copy both tokens without counting the '>'.
                cur.push(tokens[k].clone());
                if matches!(tokens.get(k + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                    cur.push(tokens[k + 1].clone());
                    k += 1;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                cur.push(tokens[k].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
                cur.push(tokens[k].clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                k += 1;
                continue;
            }
            t => cur.push(t.clone()),
        }
        k += 1;
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-fields body, in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    for field in split_top_level(&tokens) {
        let mut j = 0;
        skip_attrs_and_vis(&field, &mut j);
        if let Some(TokenTree::Ident(id)) = field.get(j) {
            names.push(id.to_string());
        }
    }
    names
}

/// Number of fields in a tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens).len()
}

/// `(variant name, fields)` for each enum variant.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for var in split_top_level(&tokens) {
        let mut j = 0;
        skip_attrs_and_vis(&var, &mut j);
        let name = match var.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue,
        };
        j += 1;
        let fields = match var.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit, // unit variant, possibly with `= discriminant`
        };
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(input: &Input, trait_name: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl{} ::serde::{} for {}{} {{\n",
        input.generics_decl, trait_name, input.name, input.generics_use
    )
}

fn gen_serialize(input: &Input) -> String {
    let mut out = impl_header(input, "Serialize");
    out.push_str("fn to_value(&self) -> ::serde::Value {\n");
    match &input.kind {
        Kind::Struct(Fields::Unit) => {
            out.push_str("::serde::Value::Null\n");
        }
        Kind::Struct(Fields::Named(names)) => {
            out.push_str(&ser_named_map(names, |n| format!("&self.{n}")));
        }
        Kind::Struct(Fields::Tuple(1)) => {
            out.push_str("::serde::Serialize::to_value(&self.0)\n");
        }
        Kind::Struct(Fields::Tuple(n)) => {
            out.push_str("::serde::Value::Seq(::std::vec::Vec::from([\n");
            for k in 0..*n {
                out.push_str(&format!("::serde::Serialize::to_value(&self.{k}),\n"));
            }
            out.push_str("]))\n");
        }
        Kind::Enum(variants) => {
            out.push_str("match self {\n");
            for (vname, fields) in variants {
                let ty = &input.name;
                match fields {
                    Fields::Unit => out.push_str(&format!(
                        "{ty}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                                items.join(", ")
                            )
                        };
                        out.push_str(&format!(
                            "{ty}::{vname}({}) => ::serde::Value::Map(::std::vec::Vec::from([(::std::string::String::from(\"{vname}\"), {payload})])),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let inner = ser_named_map(names, |n| n.to_string());
                        out.push_str(&format!(
                            "{ty}::{vname} {{ {} }} => {{ let __payload = {{ {inner} }};\n ::serde::Value::Map(::std::vec::Vec::from([(::std::string::String::from(\"{vname}\"), __payload)])) }},\n",
                            names.join(", ")
                        ));
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}

/// `Value::Map` construction for a list of named fields; `access`
/// renders the expression yielding a reference to each field.
fn ser_named_map(names: &[String], access: impl Fn(&str) -> String) -> String {
    let mut s = String::from(
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
    );
    for n in names {
        s.push_str(&format!(
            "__m.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({})));\n",
            access(n)
        ));
    }
    s.push_str("::serde::Value::Map(__m)\n");
    s
}

fn gen_deserialize(input: &Input) -> String {
    let mut out = impl_header(input, "Deserialize");
    out.push_str(
        "fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {\n",
    );
    let ty = &input.name;
    match &input.kind {
        Kind::Struct(Fields::Unit) => {
            out.push_str(&format!("::std::result::Result::Ok({ty})\n"));
        }
        Kind::Struct(Fields::Named(names)) => {
            out.push_str(&format!(
                "let __m = ::serde::expect_map(__v, \"{ty}\")?;\n::std::result::Result::Ok({ty} {{\n"
            ));
            for n in names {
                out.push_str(&format!("{n}: ::serde::field(__m, \"{n}\")?,\n"));
            }
            out.push_str("})\n");
        }
        Kind::Struct(Fields::Tuple(1)) => {
            out.push_str(&format!(
                "::std::result::Result::Ok({ty}(::serde::Deserialize::from_value(__v)?))\n"
            ));
        }
        Kind::Struct(Fields::Tuple(n)) => {
            out.push_str(&format!(
                "let __s = ::serde::expect_seq(__v, \"{ty}\")?;\nif __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::msg(\"wrong tuple arity\")); }}\n::std::result::Result::Ok({ty}(\n"
            ));
            for k in 0..*n {
                out.push_str(&format!("::serde::Deserialize::from_value(&__s[{k}])?,\n"));
            }
            out.push_str("))\n");
        }
        Kind::Enum(variants) => {
            out.push_str(&format!(
                "let (__tag, __payload) = ::serde::variant(__v, \"{ty}\")?;\nmatch __tag {{\n"
            ));
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => out.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({ty}::{vname}),\n"
                    )),
                    Fields::Tuple(n) => {
                        let need_payload = format!(
                            "let __p = __payload.ok_or_else(|| ::serde::DeError::msg(\"variant `{vname}` needs a payload\"))?;"
                        );
                        if *n == 1 {
                            out.push_str(&format!(
                                "\"{vname}\" => {{ {need_payload} ::std::result::Result::Ok({ty}::{vname}(::serde::Deserialize::from_value(__p)?)) }},\n"
                            ));
                        } else {
                            let mut arm = format!(
                                "\"{vname}\" => {{ {need_payload} let __s = ::serde::expect_seq(__p, \"{vname}\")?;\nif __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::msg(\"wrong variant arity\")); }}\n::std::result::Result::Ok({ty}::{vname}(\n"
                            );
                            for k in 0..*n {
                                arm.push_str(&format!(
                                    "::serde::Deserialize::from_value(&__s[{k}])?,\n"
                                ));
                            }
                            arm.push_str(")) },\n");
                            out.push_str(&arm);
                        }
                    }
                    Fields::Named(names) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{ let __p = __payload.ok_or_else(|| ::serde::DeError::msg(\"variant `{vname}` needs a payload\"))?;\nlet __m = ::serde::expect_map(__p, \"{vname}\")?;\n::std::result::Result::Ok({ty}::{vname} {{\n"
                        );
                        for n in names {
                            arm.push_str(&format!("{n}: ::serde::field(__m, \"{n}\")?,\n"));
                        }
                        arm.push_str("}) },\n");
                        out.push_str(&arm);
                    }
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\"unknown variant `{{}}` for {ty}\", __other))),\n"
            ));
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}
