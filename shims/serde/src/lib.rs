//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim
//! routes everything through an owned [`Value`] tree: `Serialize`
//! converts a type *to* a `Value`, `Deserialize` reads it back *from*
//! one. Formats (i.e. the `serde_json` shim) then only need to render
//! and parse `Value`s. The derive macros re-exported here generate the
//! corresponding `to_value`/`from_value` implementations.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing field / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (positive ones normalize to [`Value::U64`]).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence (arrays, tuples).
    Seq(Vec<Value>),
    /// Ordered key-value map (structs, enum payloads).
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] implementation expects.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(mismatch("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{} out of range for i64", u)))?,
                    other => return Err(mismatch("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(mismatch("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(mismatch("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(mismatch("sequence", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = expect_seq_len(v, 2)?;
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = expect_seq_len(v, 3)?;
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = expect_seq_len(v, 4)?;
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
            D::from_value(&s[3])?,
        ))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by generated code
// ---------------------------------------------------------------------------

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::U64(_) | Value::I64(_) => "integer",
        Value::F64(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

fn mismatch(expected: &str, got: &Value) -> DeError {
    DeError::msg(format!("expected {expected}, got {}", kind(got)))
}

fn expect_seq_len(v: &Value, len: usize) -> Result<&[Value], DeError> {
    let s = expect_seq(v, "tuple")?;
    if s.len() != len {
        return Err(DeError::msg(format!(
            "expected sequence of {len} elements, got {}",
            s.len()
        )));
    }
    Ok(s)
}

/// Expect `v` to be a map; `what` names the type for error messages.
pub fn expect_map<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(DeError::msg(format!(
            "expected map for {what}, got {}",
            kind(other)
        ))),
    }
}

/// Expect `v` to be a sequence; `what` names the type for error messages.
pub fn expect_seq<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], DeError> {
    match v {
        Value::Seq(s) => Ok(s),
        other => Err(DeError::msg(format!(
            "expected sequence for {what}, got {}",
            kind(other)
        ))),
    }
}

/// Look up and deserialize field `name`; a missing field deserializes
/// from `Null` so `Option` fields default to `None`.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::msg(format!("field `{name}`: {}", e.0)))
        }
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::msg(format!("missing field `{name}`")))
        }
    }
}

/// Decompose an enum value into `(variant name, optional payload)`:
/// unit variants serialize as a bare string, data variants as a
/// single-entry map.
pub fn variant<'v>(v: &'v Value, what: &str) -> Result<(&'v str, Option<&'v Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s, None)),
        Value::Map(m) if m.len() == 1 => Ok((&m[0].0, Some(&m[0].1))),
        other => Err(DeError::msg(format!(
            "expected enum variant for {what}, got {}",
            kind(other)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        assert_eq!(u32::from_value(&5u32.to_value()).unwrap(), 5);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        // Integral floats may arrive as integers from a JSON parser.
        assert_eq!(f64::from_value(&Value::U64(7)).unwrap(), 7.0);
    }

    #[test]
    fn option_handles_missing_field() {
        let m = [("present".to_string(), Value::U64(1))];
        let present: Option<u64> = field(&m, "present").unwrap();
        let absent: Option<u64> = field(&m, "absent").unwrap();
        assert_eq!(present, Some(1));
        assert_eq!(absent, None);
        let err = field::<u64>(&m, "absent").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u64, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }
}
