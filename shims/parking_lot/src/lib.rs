//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns a guard directly and a poisoned lock is recovered
//! rather than propagated, matching `parking_lot` semantics closely
//! enough for this workspace.

use std::sync::TryLockError;

/// Mutual exclusion primitive; `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
