//! Offline stand-in for the `bytes` crate.
//!
//! `BytesMut` is a growable byte buffer, `Bytes` a cheaply splittable
//! read cursor. Unlike the real crate this version copies on `split_to`
//! and `slice` instead of sharing reference-counted storage — the spill
//! codec only cares about the logical byte stream, not allocation
//! behaviour.

use std::ops::{Deref, RangeBounds};

/// Read-side trait: consuming bytes from the front of a buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Pop one byte from the front.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8;
}

/// Write-side trait: appending bytes to a buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Remove all bytes.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Convert into an immutable [`Bytes`] cursor.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.buf,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf }
    }
}

/// Immutable byte cursor: reads advance `pos` over owned storage.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// The unread suffix as a slice.
    fn rest(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copy the unread bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.rest().to_vec()
    }

    /// Split off and return the next `len` unread bytes, advancing self.
    ///
    /// # Panics
    /// Panics if fewer than `len` bytes remain.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "split_to out of range");
        let out = Bytes {
            data: self.data[self.pos..self.pos + len].to_vec(),
            pos: 0,
        };
        self.pos += len;
        out
    }

    /// A new cursor over `range` of the unread bytes.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.remaining(),
        };
        Bytes {
            data: self.rest()[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.rest()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_slice(&[2, 3, 4]);
        assert_eq!(m.len(), 4);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 1);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![2, 3]);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 4);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let _ = b.get_u8();
        assert_eq!(b.slice(0..2).to_vec(), vec![8, 7]);
    }
}
