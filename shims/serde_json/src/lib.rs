//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes any shim-`serde` `Serialize` type to JSON text and parses
//! JSON back through `Deserialize`, via the owned `serde::Value` tree.
//! Numbers render with Rust's shortest-round-trip float formatting, so
//! `f64` fields survive a serialize/parse cycle exactly.

use std::io::Write;

use serde::{DeError, Deserialize, Serialize};

/// Re-export of the data model (the real crate defines its own
/// `Value`; the shim shares `serde`'s).
pub type Value = serde::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Write compact JSON to `w`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::msg(e.to_string()))
}

/// Write pretty JSON to `w`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string_pretty(value)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::msg(e.to_string()))
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; degrade to null like
                // lenient encoders do.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_items(
            out,
            indent,
            level,
            '[',
            ']',
            items.iter(),
            |out, item, ind, lvl| {
                write_value(out, item, ind, lvl);
            },
        ),
        Value::Map(entries) => write_items(
            out,
            indent,
            level,
            '{',
            '}',
            entries.iter(),
            |out, (k, val), ind, lvl| {
                write_escaped(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, lvl);
            },
        ),
    }
}

fn write_items<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    items: I,
    mut write_one: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_one(out, item, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a raw [`Value`].
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid unicode escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-5, 123456.789, f64::MAX, 5.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\nquote\"backslash\\tab\tünïcode✓";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Unicode escapes incl. surrogate pairs.
        let back: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "A😀");
    }

    #[test]
    fn nested_structures() {
        let v = vec![
            (1u64, vec!["a".to_string()]),
            (2, vec!["b".to_string(), "c".to_string()]),
        ];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, Vec<String>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  1"));
        let back: Vec<u64> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
