//! Offline stand-in for the `rand` crate (0.9 API names).
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (xoshiro256++
//! seeded through SplitMix64) and the `Rng` surface this workspace
//! uses: `random`, `random_bool`, `random_range`, and slice `shuffle`.
//! Not cryptographically secure; statistical quality is more than
//! adequate for synthetic data generation and property tests.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next `f64` uniform in `[0, 1)` (53 random mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Values uniformly samplable from a raw generator (the "standard"
/// distribution of each type).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable over a bounded range. A single blanket
/// impl of [`SampleRange`] per range shape keeps integer-literal type
/// inference working (mirroring the real crate's design).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn from the standard distribution of `T` (`f64` is
    /// uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice adapters (`shuffle`).
pub mod seq {
    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(5u8..=6);
            assert!((5..=6).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
