//! Offline stand-in for [loom](https://docs.rs/loom): exhaustive model
//! checking of thread interleavings over the small API surface this
//! workspace actually uses — `loom::model`, `loom::thread::{spawn, yield_now}`,
//! `loom::sync::Arc`, and `loom::sync::atomic::{AtomicUsize, AtomicU64}`.
//!
//! ## How it explores interleavings
//!
//! Each `model()` execution runs the test body and every `thread::spawn`ed
//! closure on real OS threads, but under a cooperative token scheduler:
//! exactly one thread holds the token at a time, and every atomic operation
//! (plus `yield_now` and `join`) is a *schedule point* that hands the token
//! to a scheduler-chosen runnable thread. Because controlled threads only
//! interleave at schedule points, an execution is fully described by the
//! sequence of choices the scheduler made.
//!
//! The driver explores that choice tree depth-first: each execution records
//! its choice path as `(chosen, number_of_alternatives)` pairs; afterwards
//! the deepest choice with an unexplored alternative is bumped and the
//! prefix replayed. When no choice anywhere on the path has alternatives
//! left, the state space is exhausted. This is plain exhaustive DFS — no
//! partial-order reduction — which is fine for the handful-of-ops models in
//! this repo (the driver panics past [`MAX_EXECUTIONS`] rather than pass
//! vacuously).
//!
//! ## Fidelity caveats
//!
//! All shim atomics behave as `SeqCst` regardless of the `Ordering` the
//! model passes, so this checker finds interleaving bugs (lost updates,
//! double-claims, deadlocks) but not relaxed-memory reordering bugs. That
//! matches what the workspace models: single atomics whose RMW atomicity
//! alone must carry the invariant (see `pper-lint`'s `relaxed` rule).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar, Mutex};

/// Hard cap on executions per model; exceeding it panics so an
/// accidentally huge state space fails loudly instead of running forever.
pub const MAX_EXECUTIONS: usize = 1_000_000;

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    /// Eligible for the token.
    Runnable,
    /// Waiting for thread `t` to finish (`JoinHandle::join`).
    BlockedOnJoin(usize),
    /// Exited; never runnable again.
    Finished,
}

/// One recorded scheduling decision: position `chosen` out of `alternatives`
/// runnable threads (the runnable set is enumerated in thread-id order, so a
/// position replays to the same thread).
#[derive(Clone, Copy)]
struct Choice {
    chosen: usize,
    alternatives: usize,
}

struct SchedState {
    /// Thread currently holding the token.
    current: usize,
    threads: Vec<ThreadState>,
    /// Choice path taken by this execution.
    path: Vec<Choice>,
    /// Forced prefix (positions) replayed from the previous execution.
    prefix: Vec<usize>,
    /// How much of `prefix` has been consumed.
    cursor: usize,
    /// Set when any controlled thread panics; everyone else bails out.
    poisoned: bool,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    fn new(prefix: Vec<usize>) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                current: 0,
                threads: vec![ThreadState::Runnable],
                path: Vec::new(),
                prefix,
                cursor: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register a new controlled thread; returns its id. The new thread
    /// starts Runnable but does not receive the token until chosen.
    fn register(&self) -> usize {
        let mut s = self.state.lock().expect("scheduler lock");
        s.threads.push(ThreadState::Runnable);
        s.threads.len() - 1
    }

    /// Pick the next token holder among runnable threads, recording the
    /// decision. Caller must hold the lock. Panics on deadlock.
    fn transfer_locked(&self, s: &mut SchedState) {
        let runnable: Vec<usize> = (0..s.threads.len())
            .filter(|&t| s.threads[t] == ThreadState::Runnable)
            .collect();
        if runnable.is_empty() {
            if s.threads.iter().any(|&t| t != ThreadState::Finished) {
                s.poisoned = true;
                self.cv.notify_all();
                panic!("loom model deadlock: every live thread is blocked");
            }
            // All threads finished: nothing to schedule, execution is over.
            return;
        }
        let pos = if s.cursor < s.prefix.len() {
            s.prefix[s.cursor]
        } else {
            0
        };
        s.cursor += 1;
        debug_assert!(pos < runnable.len(), "replay prefix diverged");
        s.path.push(Choice {
            chosen: pos,
            alternatives: runnable.len(),
        });
        s.current = runnable[pos];
        self.cv.notify_all();
    }

    /// Wait until `me` holds the token (a freshly spawned thread reaches its
    /// first schedule point before any transfer has granted it the token).
    fn acquire_locked<'a>(
        &self,
        mut s: std::sync::MutexGuard<'a, SchedState>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        while s.current != me && !s.poisoned {
            s = self.cv.wait(s).expect("scheduler wait");
        }
        if s.poisoned {
            panic!("loom model poisoned by a failure in another thread");
        }
        s
    }

    /// Schedule point: hand the token to a scheduler-chosen thread and block
    /// until it comes back to `me`. Called before every visible operation.
    fn schedule(&self, me: usize) {
        let s = self.state.lock().expect("scheduler lock");
        let mut s = self.acquire_locked(s, me);
        self.transfer_locked(&mut s);
        drop(self.acquire_locked(s, me));
    }

    /// Block `me` until thread `target` finishes, releasing the token.
    fn join_wait(&self, me: usize, target: usize) {
        let s = self.state.lock().expect("scheduler lock");
        let mut s = self.acquire_locked(s, me);
        if s.threads[target] != ThreadState::Finished {
            s.threads[me] = ThreadState::BlockedOnJoin(target);
            self.transfer_locked(&mut s);
            drop(self.acquire_locked(s, me));
        }
    }

    /// Mark `me` finished, wake its joiners, and pass the token on.
    fn exit(&self, me: usize) {
        let mut s = self.state.lock().expect("scheduler lock");
        s.threads[me] = ThreadState::Finished;
        for t in 0..s.threads.len() {
            if s.threads[t] == ThreadState::BlockedOnJoin(me) {
                s.threads[t] = ThreadState::Runnable;
            }
        }
        self.transfer_locked(&mut s);
    }

    /// Poison the model because `me` panicked; wakes every waiter.
    fn poison(&self, me: usize) {
        let mut s = self.state.lock().expect("scheduler lock");
        s.threads[me] = ThreadState::Finished;
        s.poisoned = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Per-thread context
// ---------------------------------------------------------------------------

thread_local! {
    static CONTEXT: std::cell::RefCell<Option<(StdArc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn with_context<R>(f: impl FnOnce(&StdArc<Scheduler>, usize) -> R) -> R {
    CONTEXT.with(|c| {
        let ctx = c.borrow();
        let (sched, id) = ctx
            .as_ref()
            .expect("loom primitives may only be used inside loom::model");
        f(sched, *id)
    })
}

/// Run `body` on a fresh OS thread registered as controlled thread `id`.
fn spawn_controlled<T: Send + 'static>(
    sched: StdArc<Scheduler>,
    id: usize,
    body: impl FnOnce() -> T + Send + 'static,
) -> std::thread::JoinHandle<std::thread::Result<T>> {
    std::thread::spawn(move || {
        CONTEXT.with(|c| *c.borrow_mut() = Some((sched.clone(), id)));
        let result = catch_unwind(AssertUnwindSafe(body));
        CONTEXT.with(|c| *c.borrow_mut() = None);
        match &result {
            Ok(_) => sched.exit(id),
            Err(_) => sched.poison(id),
        }
        result
    })
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Exhaustively check `f` under every schedule of its controlled threads.
///
/// Panics (propagating the model's own panic) on the first failing
/// interleaving; the replay prefix that reached it is printed first so the
/// failure is reproducible by inspection.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom model exceeded {MAX_EXECUTIONS} executions; shrink the model"
        );
        let sched = StdArc::new(Scheduler::new(prefix.clone()));
        let body = {
            let f = f.clone();
            let sched = sched.clone();
            spawn_controlled(sched, 0, move || f())
        };
        let result = body.join().expect("model body thread died");
        if let Err(payload) = result {
            eprintln!("loom: model failed on execution {executions} (schedule prefix {prefix:?})");
            resume_unwind(payload);
        }
        // Back up to the deepest choice with an untried alternative.
        let path = {
            let s = sched.state.lock().expect("scheduler lock");
            s.path.clone()
        };
        let Some(backtrack) = path.iter().rposition(|c| c.chosen + 1 < c.alternatives) else {
            return; // state space exhausted
        };
        prefix = path[..=backtrack].iter().map(|c| c.chosen).collect();
        prefix[backtrack] += 1;
    }
}

pub mod thread {
    use super::{spawn_controlled, with_context};

    /// Handle to a controlled thread; `join` is a schedule point.
    pub struct JoinHandle<T> {
        os: std::thread::JoinHandle<std::thread::Result<T>>,
        id: usize,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its result, exactly
        /// like [`std::thread::JoinHandle::join`].
        pub fn join(self) -> std::thread::Result<T> {
            with_context(|sched, me| sched.join_wait(me, self.id));
            self.os.join().expect("controlled thread died")
        }
    }

    /// Spawn a controlled thread inside a [`super::model`] body.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, id) = with_context(|sched, _| {
            let id = sched.register();
            (sched.clone(), id)
        });
        JoinHandle {
            os: spawn_controlled(sched, id, f),
            id,
        }
    }

    /// A pure schedule point: lets any other runnable thread run.
    pub fn yield_now() {
        with_context(|sched, me| sched.schedule(me));
    }
}

pub mod sync {
    /// Plain [`std::sync::Arc`]: reference counting is not part of the
    /// modeled state space.
    pub use std::sync::Arc;

    pub mod atomic {
        use super::super::with_context;

        pub use std::sync::atomic::Ordering;

        /// Model-checked atomics: every operation is a schedule point, then
        /// executes `SeqCst` on a std atomic (one controlled thread runs at
        /// a time, so `SeqCst` realizes every interleaving the scheduler
        /// chooses regardless of the ordering asked for).
        macro_rules! modeled_atomic {
            ($name:ident, $std:path, $prim:ty) => {
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    pub fn new(v: $prim) -> Self {
                        $name {
                            inner: <$std>::new(v),
                        }
                    }

                    fn schedule_point() {
                        with_context(|sched, me| sched.schedule(me));
                    }

                    pub fn load(&self, _order: Ordering) -> $prim {
                        Self::schedule_point();
                        self.inner.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, v: $prim, _order: Ordering) {
                        Self::schedule_point();
                        self.inner.store(v, Ordering::SeqCst);
                    }

                    pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                        Self::schedule_point();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                        Self::schedule_point();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        Self::schedule_point();
                        self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }
                }
            };
        }

        modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    /// Two unsynchronized load-then-store increments must lose an update in
    /// at least one interleaving: the checker has to find it.
    #[test]
    fn finds_lost_update() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let counter = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let counter = counter.clone();
                        super::thread::spawn(move || {
                            let v = counter.load(Ordering::SeqCst);
                            counter.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("worker");
                }
                assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(result.is_err(), "model must expose the lost-update race");
    }

    /// The same increments done with fetch_add never lose updates in any
    /// interleaving: the checker must exhaust the space without failing.
    #[test]
    fn fetch_add_has_no_lost_update() {
        super::model(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = counter.clone();
                    super::thread::spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
    }

    /// Explicit yields create schedule points but no shared-state effects;
    /// the model must terminate (exhaust) quickly.
    #[test]
    fn exhausts_yield_only_models() {
        super::model(|| {
            let h = super::thread::spawn(|| {
                super::thread::yield_now();
            });
            super::thread::yield_now();
            h.join().expect("worker");
        });
    }
}
