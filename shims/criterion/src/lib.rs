//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors criterion's execution model: invoked without `--bench`
//! (e.g. by `cargo test` running a `harness = false` bench target) each
//! benchmark body executes exactly once as a smoke test; under
//! `cargo bench` (which passes `--bench`) each body is timed with a
//! short warmup and a coarse wall-clock measurement, printed as
//! ns/iteration. No statistics, plots, or comparison to saved
//! baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(self.bench_mode, &id.to_string(), |b| f(b));
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.bench_mode, &label, |b| f(b));
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.bench_mode, &label, |b| f(b, input));
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration (reported by the real crate; accepted
/// and ignored here).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Handed to each benchmark body to drive the measured routine.
pub struct Bencher {
    bench_mode: bool,
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Run `routine` repeatedly (once in test mode) and record timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.bench_mode {
            black_box(routine());
            return;
        }
        // Warmup, then measure for a short budget.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(100);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 10_000 {
            black_box(routine());
            iters += 1;
        }
        self.measured = Some((iters.max(1), start.elapsed()));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(bench_mode: bool, label: &str, mut f: F) {
    let mut bencher = Bencher {
        bench_mode,
        measured: None,
    };
    f(&mut bencher);
    if bench_mode {
        match bencher.measured {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("{label:<50} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("{label:<50} (no measurement)"),
        }
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { bench_mode: false };
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { bench_mode: false };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Elements(5));
        let mut hits = 0;
        g.bench_with_input(BenchmarkId::new("case", 1), &3u32, |b, &x| {
            b.iter(|| hits += x)
        });
        g.finish();
        assert_eq!(hits, 3);
    }
}
