//! Kill-point conformance suite: spawn real `pper` child processes, abort
//! them at *every* journal-event boundary (`--kill-after-events N` calls
//! `std::process::abort()` — a simulated `kill -9` — right after the N-th
//! event is durably appended), resume each aborted job with `pper resume`
//! in a fresh process, and require the resumed result fingerprint to match
//! the uninterrupted golden run byte for byte.
//!
//! Also covers the process-level dead-letter round trip: a run whose
//! reduce task exhausts its attempt budget dead-letters it, `pper dlq`
//! lists the capture, and `pper dlq --reprocess` drains it to the
//! fault-free golden result.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

use pper::datagen::PubGen;
use pper::journal::{recover, FileStore, JournalStore};

const MACHINES: &str = "1";
const CHECKPOINT_EVERY: &str = "2000";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_dataset(dir: &Path) -> PathBuf {
    let path = dir.join("data.jsonl");
    let ds = PubGen::new(500, 23).generate();
    let file = std::fs::File::create(&path).unwrap();
    ds.write_jsonl(std::io::BufWriter::new(file)).unwrap();
    path
}

fn pper(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pper"))
        .args(args)
        .output()
        .unwrap()
}

fn run_ok(args: &[&str]) -> Output {
    let out = pper(args);
    assert!(
        out.status.success(),
        "pper {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Golden fingerprint + per-boundary kill/resume over every journal event.
#[test]
fn kill_at_every_event_boundary_resumes_bit_identically() {
    let dir = tmp_dir("resume-sweep");
    let data = write_dataset(&dir);
    let data = data.to_str().unwrap();
    let journal = dir.join("journal");
    let journal = journal.to_str().unwrap();
    let golden_path = dir.join("golden.json");
    let golden_out = golden_path.to_str().unwrap();

    // Uninterrupted golden run in a child process.
    run_ok(&[
        "run",
        "--data",
        data,
        "--machines",
        MACHINES,
        "--durable",
        "--journal",
        journal,
        "--job-id",
        "golden",
        "--checkpoint-every",
        CHECKPOINT_EVERY,
        "--result-out",
        golden_out,
    ]);
    let golden = std::fs::read(&golden_path).unwrap();
    assert!(!golden.is_empty());

    // How many events does the uninterrupted run journal?
    let store: Arc<dyn JournalStore> = FileStore::shared(journal).unwrap();
    let rec = recover(&store, "golden").unwrap();
    assert!(rec.report.clean());
    let total_events = rec.events.len();
    assert!(
        total_events >= 10,
        "want a meaningful sweep, journaled only {total_events} events"
    );

    for n in 1..=total_events {
        let job = format!("kill-{n}");
        let kill = pper(&[
            "run",
            "--data",
            data,
            "--machines",
            MACHINES,
            "--durable",
            "--journal",
            journal,
            "--job-id",
            &job,
            "--checkpoint-every",
            CHECKPOINT_EVERY,
            "--kill-after-events",
            &n.to_string(),
        ]);
        assert!(
            !kill.status.success(),
            "kill point {n}: child should have aborted"
        );
        // Exactly n events survived the abort (appends are fsync'd).
        let rec = recover(&store, &job).unwrap();
        assert!(rec.report.clean(), "kill point {n}: journal not clean");
        assert_eq!(rec.events.len(), n, "kill point {n}: durable event count");

        let out_path = dir.join(format!("resumed-{n}.json"));
        let out = out_path.to_str().unwrap();
        run_ok(&[
            "resume",
            "--journal",
            journal,
            "--job-id",
            &job,
            "--data",
            data,
            "--result-out",
            out,
        ]);
        let resumed = std::fs::read(&out_path).unwrap();
        assert_eq!(
            resumed, golden,
            "kill point {n}: resumed fingerprint diverged from golden"
        );
    }
}

/// Process-level dead-letter round trip: exhaust a reduce task's attempt
/// budget, list the capture, reprocess it to the fault-free result.
#[test]
fn dlq_process_round_trip() {
    let dir = tmp_dir("dlq-process");
    let data = write_dataset(&dir);
    let data = data.to_str().unwrap();
    let journal = dir.join("journal");
    let journal = journal.to_str().unwrap();

    // Fault-free golden.
    let golden_path = dir.join("golden.json");
    let golden_out = golden_path.to_str().unwrap();
    run_ok(&[
        "run",
        "--data",
        data,
        "--machines",
        MACHINES,
        "--durable",
        "--journal",
        journal,
        "--job-id",
        "golden",
        "--checkpoint-every",
        CHECKPOINT_EVERY,
        "--result-out",
        golden_out,
    ]);
    let golden = std::fs::read(&golden_path).unwrap();

    // Reduce task 0 fails 4 attempts — the whole default budget.
    let failed = pper(&[
        "run",
        "--data",
        data,
        "--machines",
        MACHINES,
        "--durable",
        "--journal",
        journal,
        "--job-id",
        "faulty",
        "--checkpoint-every",
        CHECKPOINT_EVERY,
        "--fail-reduce",
        "0:4",
    ]);
    assert!(!failed.status.success());
    let stderr = String::from_utf8_lossy(&failed.stderr);
    assert!(
        stderr.contains("dead-lettered"),
        "expected dead-letter notice, got: {stderr}"
    );

    // The queue lists the capture with its context.
    let list = run_ok(&["dlq", "--journal", journal, "--job-id", "faulty"]);
    let stdout = String::from_utf8_lossy(&list.stdout);
    assert!(stdout.contains("reduce-0"), "dlq listing: {stdout}");
    assert!(stdout.contains("attempt"), "dlq listing: {stdout}");
    assert!(stdout.contains("context"), "dlq listing: {stdout}");

    // Drain it (fault cleared) — bit-identical to the fault-free golden.
    let out_path = dir.join("reprocessed.json");
    let out = out_path.to_str().unwrap();
    run_ok(&[
        "dlq",
        "--journal",
        journal,
        "--job-id",
        "faulty",
        "--reprocess",
        "--data",
        data,
        "--result-out",
        out,
    ]);
    assert_eq!(std::fs::read(&out_path).unwrap(), golden);

    // Now empty.
    let list = run_ok(&["dlq", "--journal", journal, "--job-id", "faulty"]);
    assert!(String::from_utf8_lossy(&list.stdout).contains("empty"));
}
