//! Property-based integration tests over randomized datasets: invariants
//! that must hold for *any* generator configuration.

use pper::blocking::{build_forests, compute_signatures, pairs, presets, DatasetStats};
use pper::datagen::PubGen;
use pper::er::{ErConfig, ProgressiveEr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full (small) pipeline
        .. ProptestConfig::default()
    })]

    #[test]
    fn pipeline_invariants_hold_for_random_datasets(
        seed in 0u64..1_000,
        n in 300usize..900,
        dup_prob in 0.1f64..0.6,
    ) {
        let mut generator = PubGen::new(n, seed);
        generator.dup_cluster_prob = dup_prob;
        let ds = generator.generate();
        let result = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);

        // Output sanity.
        prop_assert!(result.duplicates.windows(2).all(|w| w[0] < w[1]));
        prop_assert!((0.0..=1.0).contains(&result.precision));
        prop_assert!((0.0..=1.0).contains(&result.curve.final_recall()));
        prop_assert!(result.total_cost > 0.0);
        prop_assert!(result.overhead_cost <= result.total_cost);

        // Duplicate events and counters agree.
        let found = result.counters.get("duplicates_found");
        prop_assert!(found >= result.duplicates.len() as u64);

        // Comparisons are bounded by the total co-blocked pairs.
        let families = presets::citeseer_families();
        let forests = build_forests(&ds, &families);
        let all_block_pairs: u64 = forests
            .iter()
            .flat_map(|f| f.trees.iter())
            .map(|t| pairs(t.root().size()))
            .sum();
        prop_assert!(result.counters.get("pairs_compared") <= all_block_pairs);
    }

    #[test]
    fn stats_invariants_for_random_datasets(seed in 0u64..1_000, n in 200usize..1_200) {
        let ds = PubGen::new(n, seed).generate();
        let families = presets::citeseer_families();
        let forests = build_forests(&ds, &families);
        let stats = DatasetStats::from_forests(&ds, &families, &forests);
        let sigs = compute_signatures(&ds, &families);
        prop_assert_eq!(sigs.len(), ds.len());

        for tree in &stats.trees {
            for (i, node) in tree.nodes.iter().enumerate() {
                // Covered + uncovered = all pairs.
                prop_assert!(node.uncovered_pairs <= pairs(node.size));
                // The most dominating family has no uncovered pairs.
                if tree.family == 0 {
                    prop_assert_eq!(node.uncovered_pairs, 0);
                }
                // Children nest.
                for &c in &node.children {
                    prop_assert!(tree.nodes[c].size <= node.size);
                    prop_assert_eq!(tree.nodes[c].parent, Some(i));
                }
            }
        }
    }
}
