//! Integration tests for the extension modules: failure injection through
//! the full pipeline, clustering, budgeted runs, and the third mechanism.

use pper::datagen::PubGen;
use pper::er::{
    correlation_clustering, run_with_budget, transitive_closure, ClusterMetrics, ErConfig,
    MechanismKind, ProgressiveEr,
};
use pper::mapreduce::FaultPlan;

#[test]
fn pipeline_survives_injected_task_failures() {
    let ds = PubGen::new(1_500, 401).generate();
    let clean = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);

    // Fail every reduce task once: the reduce makespan must grow no matter
    // which task is on the critical path. (Failing a single task need not
    // move the phase makespan — that is correct wave-scheduling behaviour.)
    let mut config = ErConfig::citeseer(2);
    let reduce_tasks = config.reduce_tasks();
    config.faults = Some(FaultPlan {
        reduce_failures: (0..reduce_tasks).map(|i| (i, 1)).collect(),
        ..FaultPlan::default()
    });
    let faulty = ProgressiveEr::new(config).run(&ds);

    // Retried tasks reproduce the same results…
    assert_eq!(clean.duplicates, faulty.duplicates);
    // …at strictly higher virtual cost.
    assert!(
        faulty.total_cost > clean.total_cost,
        "retries must cost time: {} vs {}",
        faulty.total_cost,
        clean.total_cost
    );
    assert_eq!(faulty.counters.get("task_retries"), reduce_tasks as u64);
}

#[test]
fn exhausted_retries_surface_as_error() {
    let ds = PubGen::new(300, 402).generate();
    let mut config = ErConfig::citeseer(1);
    config.faults = Some(FaultPlan {
        reduce_failures: vec![(0, 9)],
        max_attempts: 4,
        ..FaultPlan::default()
    });
    let err = ProgressiveEr::new(config).try_run(&ds).unwrap_err();
    assert!(err.to_string().contains("failed after"));
}

#[test]
fn clustering_pipeline_output_beats_pairs_alone() {
    let ds = PubGen::new(2_500, 403).generate();
    let result = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);

    let tc = transitive_closure(ds.len(), &result.duplicates);
    let tc_metrics = ClusterMetrics::evaluate(&tc, &ds.truth);
    assert!(tc_metrics.f1() > 0.85, "TC F1 {:.3}", tc_metrics.f1());
    // Transitive closure can only add pairs, so its pairwise recall is at
    // least the raw pair recall.
    assert!(tc_metrics.pairwise_recall >= result.curve.final_recall() - 1e-9);

    let cc = correlation_clustering(ds.len(), &result.duplicates);
    let cc_metrics = ClusterMetrics::evaluate(&cc, &ds.truth);
    assert!(cc_metrics.f1() > 0.8, "CC F1 {:.3}", cc_metrics.f1());
    // Correlation clustering refines TC, so its precision is at least TC's.
    assert!(cc_metrics.pairwise_precision >= tc_metrics.pairwise_precision - 1e-9);
}

#[test]
fn budgeted_run_delivers_partial_results() {
    let ds = PubGen::new(1_500, 404).generate();
    let config = ErConfig::citeseer(2);
    let full = ProgressiveEr::new(config.clone()).run(&ds);
    let report = run_with_budget(&config, &ds, full.total_cost * 0.4).unwrap();
    assert!(report.recall_at_budget > 0.0);
    assert!(!report.delivered.is_empty());
    assert!(report.recall_at_budget <= full.curve.final_recall() + 1e-9);
}

#[test]
fn hierarchy_mechanism_end_to_end() {
    let ds = PubGen::new(1_500, 405).generate();
    let mut config = ErConfig::citeseer(2);
    config.mechanism = MechanismKind::Hierarchy;
    let result = ProgressiveEr::new(config).run(&ds);
    assert!(
        result.curve.final_recall() > 0.8,
        "hierarchy-hint recall {:.3}",
        result.curve.final_recall()
    );
    assert!(result.precision > 0.8);
}

#[test]
fn mechanisms_agree_on_exhaustive_coverage() {
    // Same blocking, same stop rules: every mechanism covers the same
    // windowed pair set, so final recall must be identical across them for
    // a static ordering (SN vs Hierarchy). PSNM's adaptive promotions only
    // change order, not coverage.
    let ds = PubGen::new(1_200, 406).generate();
    let mut finals = Vec::new();
    for mechanism in [
        MechanismKind::Sn,
        MechanismKind::Psnm,
        MechanismKind::Hierarchy,
    ] {
        let mut config = ErConfig::citeseer(2);
        config.mechanism = mechanism;
        let result = ProgressiveEr::new(config).run(&ds);
        finals.push((mechanism.name(), result.curve.final_recall()));
    }
    for w in finals.windows(2) {
        assert!(
            (w[0].1 - w[1].1).abs() < 0.02,
            "coverage mismatch: {finals:?}"
        );
    }
}
