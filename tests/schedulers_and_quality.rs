//! Scheduler comparisons and the Qty quality measure across crates —
//! integration-level versions of the §VI-B2 findings.

use pper::datagen::PubGen;
use pper::er::metrics::quality;
use pper::er::{ErConfig, ProgressiveEr};
use pper::schedule::TreeScheduler;

fn run_with(scheduler: TreeScheduler, ds: &pper::datagen::Dataset) -> pper::er::ErRunResult {
    ProgressiveEr::new(ErConfig::citeseer(4).with_scheduler(scheduler)).run(ds)
}

#[test]
fn all_schedulers_reach_the_same_final_recall() {
    // Schedulers that merely redistribute trees across tasks (NoSplit, Lpt)
    // must find exactly the same duplicates. The Progressive scheduler also
    // *splits* sub-trees, and §IV-C2's split strategy promotes a split
    // sub-tree's root to full root-style resolution (Frac = 1, root window):
    // splitting can only add comparisons, never remove them, so Progressive
    // finds a superset of the no-split schedulers' duplicates.
    use std::collections::HashSet;
    let ds = PubGen::new(2_500, 301).generate();
    let ours = run_with(TreeScheduler::Progressive, &ds);
    let nosplit = run_with(TreeScheduler::NoSplit, &ds);
    let lpt = run_with(TreeScheduler::Lpt, &ds);
    assert_eq!(nosplit.duplicates, lpt.duplicates);
    let ours_set: HashSet<_> = ours.duplicates.iter().copied().collect();
    let missing: Vec<_> = nosplit
        .duplicates
        .iter()
        .filter(|p| !ours_set.contains(p))
        .collect();
    assert!(
        missing.is_empty(),
        "splitting must never lose duplicates; lost {missing:?}"
    );
}

#[test]
fn our_scheduler_is_no_worse_than_baselines_at_mid_recall() {
    let ds = PubGen::new(4_000, 302).generate();
    let ours = run_with(TreeScheduler::Progressive, &ds);
    let nosplit = run_with(TreeScheduler::NoSplit, &ds);
    let lpt = run_with(TreeScheduler::Lpt, &ds);
    for recall in [0.4, 0.6] {
        let t_ours = ours.curve.time_to_recall(recall).unwrap();
        let t_nosplit = nosplit.curve.time_to_recall(recall).unwrap();
        let t_lpt = lpt.curve.time_to_recall(recall).unwrap();
        // Tolerate small estimation noise but demand we're competitive.
        assert!(
            t_ours <= t_nosplit * 1.1,
            "recall {recall}: ours {t_ours:.0} vs nosplit {t_nosplit:.0}"
        );
        assert!(
            t_ours <= t_lpt * 1.1,
            "recall {recall}: ours {t_ours:.0} vs lpt {t_lpt:.0}"
        );
    }
}

#[test]
fn quality_measure_orders_the_approaches() {
    // Eq. 1 with decaying weights should prefer the more progressive run.
    let ds = PubGen::new(3_000, 303).generate();
    let ours = run_with(TreeScheduler::Progressive, &ds);
    let lpt = run_with(TreeScheduler::Lpt, &ds);

    let max_cost = ours.total_cost.max(lpt.total_cost);
    let costs: Vec<f64> = (1..=10).map(|i| max_cost * i as f64 / 10.0).collect();
    let weights: Vec<f64> = (1..=10).map(|i| 1.0 - (i - 1) as f64 / 10.0).collect();

    let q_ours = quality(&ours.curve, &costs, &weights);
    let q_lpt = quality(&lpt.curve, &costs, &weights);
    assert!((0.0..=1.0).contains(&q_ours));
    assert!((0.0..=1.0).contains(&q_lpt));
    assert!(
        q_ours >= q_lpt - 0.02,
        "Qty(ours) {q_ours:.3} should not trail Qty(lpt) {q_lpt:.3}"
    );
}

#[test]
fn weighting_functions_change_schedule_not_correctness() {
    use pper::schedule::Weighting;
    let ds = PubGen::new(2_000, 304).generate();
    for weighting in [
        Weighting::Uniform,
        Weighting::Linear,
        Weighting::Exponential { decay: 0.5 },
    ] {
        let result = ProgressiveEr::new(ErConfig::citeseer(3).with_weighting(weighting)).run(&ds);
        assert!(
            result.curve.final_recall() > 0.85,
            "{weighting:?}: {:.3}",
            result.curve.final_recall()
        );
    }
}
