//! The paper's running example (Table I / Fig. 2 / Fig. 4) end to end.

use pper::blocking::{build_forests, presets};
use pper::datagen::toy_people;
use pper::er::{ErConfig, ProgressiveEr};
use pper::simil::{AttributeSim, MatchRule, WeightedAttr};

fn toy_config() -> ErConfig {
    let mut config = ErConfig::citeseer(1);
    config.families = presets::toy_families();
    config.rule = MatchRule::new(
        vec![
            WeightedAttr::new(0, 0.9, AttributeSim::JaroWinkler),
            WeightedAttr::new(1, 0.1, AttributeSim::Exact),
        ],
        0.85,
    );
    config
}

#[test]
fn resolves_all_table_one_duplicates() {
    let ds = toy_people();
    let result = ProgressiveEr::new(toy_config()).run(&ds);
    // Ground truth: {e1,e2,e3} and {e4,e5} → 4 duplicate pairs (0-based ids).
    let expected = vec![(0, 1), (0, 2), (1, 2), (3, 4)];
    assert_eq!(result.duplicates, expected);
    assert_eq!(result.curve.final_recall(), 1.0);
    assert_eq!(result.precision, 1.0);
}

#[test]
fn charles_gharles_pair_needs_the_state_family() {
    // ⟨e4, e5⟩ is split by the name-prefix family ("ch" vs "gh") and only
    // co-blocked by state "LA" — the paper's motivating example for multiple
    // blocking functions. Removing the Y family must lose exactly that pair.
    let ds = toy_people();
    let mut config = toy_config();
    config.families.truncate(1); // X only
    let result = ProgressiveEr::new(config).run(&ds);
    assert!(!result.duplicates.contains(&(3, 4)));
    assert!(result.duplicates.contains(&(0, 1)));
    assert!(result.curve.final_recall() < 1.0);
}

#[test]
fn forest_shapes_match_figure_four_semantics() {
    // Fig. 4's structure: each main block is the root of a tree of child
    // blocks, children strictly smaller, every block ≥ 2 members.
    let ds = toy_people();
    let forests = build_forests(&ds, &presets::toy_families());
    for forest in &forests {
        for tree in &forest.trees {
            assert!(tree.root().size() >= 2);
            for block in &tree.blocks {
                assert!(block.size() >= 2);
                if let Some(p) = block.parent {
                    assert!(block.size() <= tree.blocks[p].size());
                }
            }
        }
    }
}

#[test]
fn shared_pair_counted_once_in_output() {
    // ⟨e1,e2⟩ lives in the X "jo" tree AND the Y "hi" tree; the output must
    // contain it exactly once (redundancy-free resolution, §V).
    let ds = toy_people();
    let result = ProgressiveEr::new(toy_config()).run(&ds);
    let count = result.duplicates.iter().filter(|&&p| p == (0, 1)).count();
    assert_eq!(count, 1);
}
