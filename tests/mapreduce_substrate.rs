//! Substrate-level integration: the MapReduce runtime features exercised
//! through the public facade, independent of the ER pipeline.

use pper::mapreduce::driver::Driver;
use pper::mapreduce::prelude::*;
use pper::mapreduce::runtime::run_job_with_combiner;

struct Tokenize;
impl Mapper for Tokenize {
    type Input = String;
    type Key = String;
    type Value = u64;
    fn map(&self, line: &String, ctx: &mut TaskContext, out: &mut Emitter<String, u64>) {
        for w in line.split_whitespace() {
            ctx.charge(1.0);
            out.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn reduce(
        &self,
        key: &String,
        values: &[u64],
        ctx: &mut TaskContext,
        out: &mut Vec<(String, u64)>,
    ) {
        ctx.charge(values.len() as f64);
        out.push((key.clone(), values.iter().sum()));
    }
}

struct SumCombiner;
impl Combiner for SumCombiner {
    type Key = String;
    type Value = u64;
    fn combine(&self, _key: &String, values: &mut Vec<u64>) {
        let sum: u64 = values.iter().sum();
        values.clear();
        values.push(sum);
    }
}

fn corpus() -> Vec<String> {
    (0..500)
        .map(|i| format!("alpha beta w{} alpha", i % 20))
        .collect()
}

#[test]
fn word_count_with_combiner_matches_plain() {
    let cfg = JobConfig::new("wc", ClusterSpec::paper(2));
    let inputs = corpus();
    let plain = run_job(&cfg, &Tokenize, &GroupReducer::new(Sum), &inputs).unwrap();
    let combined = run_job_with_combiner(
        &cfg,
        &Tokenize,
        &SumCombiner,
        &GroupReducer::new(Sum),
        &inputs,
    )
    .unwrap();
    let mut a = plain.outputs.clone();
    let mut b = combined.outputs.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(combined.shuffle_records < plain.shuffle_records / 10);
}

#[test]
fn driver_chains_two_jobs() {
    let cfg = JobConfig::new("wc", ClusterSpec::paper(2));
    let inputs = corpus();
    let r1 = run_job(&cfg, &Tokenize, &GroupReducer::new(Sum), &inputs).unwrap();
    let r2 = run_job(&cfg, &Tokenize, &GroupReducer::new(Sum), &inputs).unwrap();
    let mut driver = Driver::new();
    driver.record("count-1", &r1);
    driver.record("count-2", &r2);
    assert_eq!(driver.stages().len(), 2);
    assert!(driver.now() > r1.total_virtual_cost);
    assert!(driver.report().contains("count-2"));
}

#[test]
fn external_sorter_handles_shuffle_scale() {
    let mut sorter: ExternalSorter<(u64, String)> = ExternalSorter::new(1_000);
    let mut expected = Vec::new();
    for i in (0..20_000u64).rev() {
        let rec = (i % 997, format!("value-{i}"));
        expected.push(rec.clone());
        sorter.push(rec).unwrap();
    }
    assert!(sorter.spilled_runs() >= 20);
    let sorted = sorter.finish().unwrap();
    expected.sort();
    assert_eq!(sorted, expected);
}

#[test]
fn skew_metric_visible_from_results() {
    let cfg = JobConfig::new("wc", ClusterSpec::paper(2));
    let inputs = corpus();
    let result = run_job(&cfg, &Tokenize, &GroupReducer::new(Sum), &inputs).unwrap();
    let skew = result.reduce_skew();
    assert!(skew >= 0.0, "skew {skew}");
}
