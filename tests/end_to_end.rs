//! Cross-crate integration tests: the full pipeline on both synthetic
//! datasets, exercised through the top-level `pper` facade.

use pper::datagen::{BookGen, PubGen};
use pper::er::{BasicApproach, BasicConfig, ErConfig, MechanismKind, ProgressiveEr};

#[test]
fn publications_pipeline_end_to_end() {
    let ds = PubGen::new(3_000, 201).generate();
    let result = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);

    assert!(
        result.curve.final_recall() > 0.85,
        "final recall {:.3}",
        result.curve.final_recall()
    );
    assert!(result.precision > 0.8, "precision {:.3}", result.precision);

    // Every reported duplicate pair must share at least one root block —
    // the pipeline never compares across blocks.
    for &(a, b) in &result.duplicates {
        let ea = ds.entity(a);
        let eb = ds.entity(b);
        let co_blocked = ErConfig::citeseer(2)
            .families
            .iter()
            .any(|f| f.root_key(ea) == f.root_key(eb));
        assert!(
            co_blocked,
            "pair ({a},{b}) reported without sharing a block"
        );
    }
}

#[test]
fn books_pipeline_with_psnm() {
    let ds = BookGen::new(3_000, 202).generate();
    let config = ErConfig::books(2);
    assert_eq!(config.mechanism, MechanismKind::Psnm);
    let result = ProgressiveEr::new(config).run(&ds);
    assert!(
        result.curve.final_recall() > 0.8,
        "final recall {:.3}",
        result.curve.final_recall()
    );
    assert!(result.precision > 0.75, "precision {:.3}", result.precision);
}

#[test]
fn recall_curve_is_monotone_and_bounded() {
    let ds = PubGen::new(2_000, 203).generate();
    let result = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);
    let samples = result.curve.sample(result.total_cost, 50);
    assert!(samples.windows(2).all(|w| w[0].1 <= w[1].1));
    assert!(samples.iter().all(|&(_, r)| (0.0..=1.0).contains(&r)));
    // Curve breakpoints never exceed the run's total cost.
    assert!(result.curve.last_cost() <= result.total_cost + 1e-6);
}

#[test]
fn progressive_beats_basic_at_mid_recall() {
    let ds = PubGen::new(3_000, 204).generate();
    let er = ErConfig::citeseer(2);
    let ours = ProgressiveEr::new(er.clone()).run(&ds);
    let basic = BasicApproach::new(er, BasicConfig::full(15))
        .run(&ds)
        .unwrap();
    let t_ours = ours.curve.time_to_recall(0.6).expect("ours reaches 0.6");
    let t_basic = basic.curve.time_to_recall(0.6).expect("basic reaches 0.6");
    assert!(
        t_ours < t_basic,
        "progressive pipeline should lead at recall 0.6: {t_ours:.0} vs {t_basic:.0}"
    );
}

#[test]
fn results_identical_across_simulated_cluster_sizes() {
    // Virtual time changes with μ, but the *set* of duplicates found must
    // not (same schedule semantics, just different parallelism).
    let ds = PubGen::new(1_500, 205).generate();
    let r2 = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);
    let r5 = ProgressiveEr::new(ErConfig::citeseer(5)).run(&ds);
    // Recall parity (schedules differ slightly in task packing, but every
    // tree is fully scheduled either way, so the found set matches).
    assert_eq!(r2.duplicates, r5.duplicates);
}

#[test]
fn incremental_segments_cover_all_duplicates() {
    use pper::er::job1::run_job1;
    use pper::er::job2::run_job2;
    use std::sync::Arc;

    let ds = PubGen::new(1_500, 206).generate();
    let mut config = ErConfig::citeseer(2);
    config.alpha = 300.0;
    let pipeline = ProgressiveEr::new(config.clone());
    let job1 = run_job1(&ds, &config).unwrap();
    let schedule = Arc::new(pipeline.generate_schedule(&ds, &job1.stats));
    let job2 = run_job2(&ds, &config, schedule).unwrap();

    let mut from_segments: Vec<(u32, u32)> = job2
        .segments
        .iter()
        .flat_map(|s| s.records.iter().copied())
        .collect();
    from_segments.sort_unstable();
    from_segments.dedup();
    assert_eq!(from_segments, job2.duplicates);
    // Segment completion times are sensible.
    assert!(job2
        .segments
        .iter()
        .all(|s| s.completed_at <= job2.virtual_cost + 1e-6));
}
