//! Orchestration of the full progressive pipeline (Fig. 3): first job →
//! schedule generation → second job, with timelines merged onto one global
//! virtual clock.

use std::sync::Arc;

use pper_datagen::Dataset;
use pper_mapreduce::{Counters, MrError, ProgressEvent};
use pper_schedule::{generate_schedule, EstimationContext, Schedule};

use crate::checkpoint::Checkpoint;
use crate::config::ErConfig;
use crate::job1::run_job1;
use crate::job2::{
    run_job2, run_job2_resume, run_job2_resume_to_crash, run_job2_to_crash, Job2Result,
};
use crate::metrics::RecallCurve;

/// Result of one ER run (ours or a baseline) — everything the experiment
/// harness needs.
#[derive(Debug)]
pub struct ErRunResult {
    /// Recall-versus-cost curve counting only *correct* duplicates.
    pub curve: RecallCurve,
    /// All pairs the matcher declared duplicates (normalized, deduplicated).
    pub duplicates: Vec<(u32, u32)>,
    /// Duplicate discovery events in timeline order: `(cost, a, b)` for
    /// every matcher-positive pair (correct or not).
    pub found_events: Vec<(f64, u32, u32)>,
    /// Virtual completion time of the whole run.
    pub total_cost: f64,
    /// Virtual cost spent before any pair could be resolved (job startup,
    /// the entire first job, schedule generation, routing) — the
    /// preprocessing overhead visible at the start of Fig. 10's curves.
    pub overhead_cost: f64,
    /// Merged counters from every task of every job.
    pub counters: Counters,
    /// Fraction of emitted duplicates that are correct per ground truth.
    pub precision: f64,
    /// Human-readable label for reports.
    pub label: String,
}

impl ErRunResult {
    /// Convenience: recall at a given virtual cost.
    pub fn recall_at(&self, cost: f64) -> f64 {
        self.curve.recall_at(cost)
    }
}

/// The paper's approach, end to end.
#[derive(Debug, Clone)]
pub struct ProgressiveEr {
    /// Pipeline configuration.
    pub config: ErConfig,
}

impl ProgressiveEr {
    /// Build a pipeline.
    pub fn new(config: ErConfig) -> Self {
        Self { config }
    }

    /// Run both jobs, panicking on runtime errors (convenient for
    /// experiments; see [`ProgressiveEr::try_run`] for error handling).
    pub fn run(&self, ds: &Dataset) -> ErRunResult {
        // lint:allow(panic_path) documented panicking convenience wrapper; fallible callers use try_run
        self.try_run(ds).expect("pipeline run failed")
    }

    /// Run both jobs.
    pub fn try_run(&self, ds: &Dataset) -> Result<ErRunResult, MrError> {
        let config = &self.config;

        // ---- First job: progressive blocking + statistics --------------
        let job1 = run_job1(ds, config)?;

        // ---- Schedule generation (replicated in each map task's setup;
        // computed once here and shared, §III-B) -------------------------
        let schedule = Arc::new(self.generate_schedule(ds, &job1.stats));

        // ---- Second job: schedule-driven resolution ---------------------
        let job2 = run_job2(ds, config, Arc::clone(&schedule))?;

        Ok(self.assemble(ds, job2, job1.virtual_cost, job1.counters))
    }

    /// Run the pipeline but kill every reduce task of the resolution job
    /// once its task-local virtual clock crosses `crash_at`, returning the
    /// [`Checkpoint`] a real deployment would have persisted: the schedule,
    /// the first job's completion time, and per-task resume state cut at
    /// the last completed block boundaries. The crashed run's results are
    /// otherwise discarded. Feed the checkpoint to
    /// [`ProgressiveEr::resume`] to finish the run.
    pub fn run_to_crash(&self, ds: &Dataset, crash_at: f64) -> Result<Checkpoint, MrError> {
        let config = &self.config;
        let job1 = run_job1(ds, config)?;
        let schedule = Arc::new(self.generate_schedule(ds, &job1.stats));
        let tasks = run_job2_to_crash(ds, config, Arc::clone(&schedule), crash_at)?;
        Ok(Checkpoint {
            schedule: Arc::try_unwrap(schedule).unwrap_or_else(|s| (*s).clone()),
            job1_cost: job1.virtual_cost,
            crash_at,
            machines: config.machines,
            tasks,
        })
    }

    /// Resume a killed run from its [`Checkpoint`]: the first job and
    /// schedule generation are *not* re-run (their outputs live in the
    /// checkpoint); the resolution job replays the checkpointed duplicates
    /// and resolves only the remaining blocks. The result is bit-identical
    /// to the uninterrupted [`ProgressiveEr::try_run`] in its duplicate
    /// set, found events, recall curve, and total cost.
    pub fn resume(&self, ds: &Dataset, checkpoint: &Checkpoint) -> Result<ErRunResult, MrError> {
        let config = &self.config;
        checkpoint.validate(config.machines)?;
        let job2 = run_job2_resume(ds, config, checkpoint)?;
        Ok(self.assemble(ds, job2, checkpoint.job1_cost, Counters::new()))
    }

    /// One step of staged periodic checkpointing: resume the resolution job
    /// from `checkpoint`, run until every task's clock crosses the later
    /// threshold `crash_at`, and return the fresh [`Checkpoint`]. By
    /// determinism this equals [`ProgressiveEr::run_to_crash`] at
    /// `crash_at` on an uninterrupted run, so a chain of these steps makes
    /// progress while each step stays cheap to redo after a kill.
    pub fn resume_to_crash(
        &self,
        ds: &Dataset,
        checkpoint: &Checkpoint,
        crash_at: f64,
    ) -> Result<Checkpoint, MrError> {
        let config = &self.config;
        let tasks = run_job2_resume_to_crash(ds, config, checkpoint, crash_at)?;
        Ok(Checkpoint {
            schedule: checkpoint.schedule.clone(),
            job1_cost: checkpoint.job1_cost,
            crash_at,
            machines: config.machines,
            tasks,
        })
    }

    /// Shared tail of [`ProgressiveEr::try_run`] and
    /// [`ProgressiveEr::resume`]: splice the resolution job's timeline onto
    /// the global clock at `offset` and derive curve/precision/counters.
    /// `pub(crate)` for the durable runner, which drives the jobs itself.
    pub(crate) fn assemble(
        &self,
        ds: &Dataset,
        job2: Job2Result,
        offset: f64,
        mut counters: Counters,
    ) -> ErRunResult {
        let config = &self.config;

        // Merge timelines: job 2 starts where job 1 finished.
        let timeline: Vec<ProgressEvent> = job2
            .timeline
            .iter()
            .map(|e| ProgressEvent {
                cost: e.cost + offset,
                ..*e
            })
            .collect();

        let truth = &ds.truth;
        let total_truth = truth.total_duplicate_pairs();
        let curve = RecallCurve::from_timeline_where(&timeline, total_truth, |v| {
            let (a, b) = crate::unpack_pair(v);
            truth.is_duplicate(a, b)
        });

        let correct = job2
            .duplicates
            .iter()
            .filter(|&&(a, b)| truth.is_duplicate(a, b))
            .count();
        let precision = if job2.duplicates.is_empty() {
            1.0
        } else {
            correct as f64 / job2.duplicates.len() as f64
        };

        counters.merge(&job2.counters);

        let found_events = timeline
            .iter()
            .filter(|e| e.kind == crate::EVENT_DUPLICATE)
            .map(|e| {
                let (a, b) = crate::unpack_pair(e.value);
                (e.cost, a, b)
            })
            .collect();

        ErRunResult {
            curve,
            duplicates: job2.duplicates,
            found_events,
            total_cost: offset + job2.virtual_cost,
            overhead_cost: offset + config.cost_model.job_startup,
            counters,
            precision,
            label: format!(
                "ours-{}-{:?}-mu{}",
                config.mechanism.name(),
                config.schedule.scheduler,
                config.machines
            ),
        }
    }

    /// Generate the progressive schedule from first-job statistics.
    pub fn generate_schedule(&self, ds: &Dataset, stats: &pper_blocking::DatasetStats) -> Schedule {
        let config = &self.config;
        let ctx = EstimationContext {
            dataset_size: ds.len(),
            policy: &config.policy,
            cost_model: &config.cost_model,
            prob: config.prob.as_model(),
        };
        let mut sc = config.schedule.clone();
        sc.reduce_tasks = config.reduce_tasks();
        generate_schedule(stats, &ctx, &sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{BasicApproach, BasicConfig};
    use crate::config::ProbModelKind;
    use pper_datagen::PubGen;

    #[test]
    fn pipeline_end_to_end_recall_and_precision() {
        let ds = PubGen::new(3_000, 91).generate();
        let result = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);
        assert!(
            result.curve.final_recall() > 0.85,
            "final recall {:.3}",
            result.curve.final_recall()
        );
        assert!(result.precision > 0.8, "precision {:.3}", result.precision);
        assert!(result.total_cost > result.overhead_cost);
    }

    #[test]
    fn ours_beats_basic_progressively() {
        // The headline claim (Fig. 8): at matched recall targets, ours gets
        // there in less virtual cost than Basic-F.
        let ds = PubGen::new(4_000, 92).generate();
        let er = ErConfig::citeseer(3);
        let ours = ProgressiveEr::new(er.clone()).run(&ds);
        let basic = BasicApproach::new(er, BasicConfig::full(15))
            .run(&ds)
            .unwrap();
        for recall in [0.3, 0.5, 0.7] {
            let t_ours = ours.curve.time_to_recall(recall);
            let t_basic = basic.curve.time_to_recall(recall);
            let (Some(a), Some(b)) = (t_ours, t_basic) else {
                panic!("both approaches should reach recall {recall}");
            };
            assert!(
                a < b,
                "ours should reach recall {recall} first: {a:.0} vs {b:.0}"
            );
        }
    }

    #[test]
    fn trained_prob_model_works_end_to_end() {
        let train = PubGen::new(1_000, 93).generate();
        let ds = PubGen::new(2_000, 94).generate();
        let mut config = ErConfig::citeseer(2);
        config.prob = ProbModelKind::train(&train, &config.families);
        let result = ProgressiveEr::new(config).run(&ds);
        assert!(result.curve.final_recall() > 0.8);
    }

    #[test]
    fn more_machines_do_not_hurt_recall() {
        let ds = PubGen::new(2_000, 95).generate();
        let r2 = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);
        let r6 = ProgressiveEr::new(ErConfig::citeseer(6)).run(&ds);
        assert!((r2.curve.final_recall() - r6.curve.final_recall()).abs() < 0.05);
        assert!(r6.total_cost < r2.total_cost, "parallelism should pay off");
    }
}
