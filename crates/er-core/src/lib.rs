//! # pper-er
//!
//! The end-to-end parallel progressive entity-resolution pipeline — the
//! paper's primary contribution (§III), assembled from the workspace's
//! substrates:
//!
//! * [`job1`] — the first MR job: annotate entities with their blocking
//!   keys and gather per-tree block statistics (sizes, hierarchy, overlap
//!   information);
//! * [`job2`] — the second MR job: generate the progressive schedule in the
//!   map setup, route each entity to the reduce tasks owning its trees
//!   (keyed by sequence value, carrying its dominance list), and resolve
//!   blocks incrementally bottom-up with the configured mechanism, skipping
//!   pairs owned by other trees (`SHOULD-RESOLVE`, §V) and pairs already
//!   resolved in child blocks;
//! * [`basic`] — the Basic baseline of §II-C: one MR job, hash
//!   partitioning by blocking key, Popcorn stopping, and the smallest-key
//!   redundancy elimination of Kolb et al. (ref. [14]);
//! * [`pipeline`] — orchestration: the two jobs chained, timelines merged,
//!   results exposed as a [`metrics::RecallCurve`];
//! * [`checkpoint`] — crash/resume support: kill the resolution job
//!   mid-flight, persist a [`checkpoint::Checkpoint`], and resume to a
//!   bit-identical result (see [`pipeline::ProgressiveEr::run_to_crash`]);
//! * [`metrics`] — duplicate recall curves, the `Qty` quality measure
//!   (Eq. 1), and recall speedup (§VI-B4).
//!
//! ```no_run
//! use pper_er::prelude::*;
//! use pper_datagen::PubGen;
//!
//! let ds = PubGen::new(20_000, 7).generate();
//! let config = ErConfig::citeseer(10); // 10 simulated machines
//! let result = ProgressiveEr::new(config).run(&ds);
//! println!("final recall {:.3} at cost {:.0}", result.curve.final_recall(), result.total_cost);
//! ```

pub mod basic;
pub mod budget;
pub mod checkpoint;
pub mod clustering;
pub mod config;
pub mod durable;
pub mod incremental;
pub mod job1;
pub mod job2;
pub mod metrics;
pub mod pipeline;

/// Convenience re-exports covering the whole public surface.
pub mod prelude {
    pub use crate::basic::{BasicApproach, BasicConfig};
    pub use crate::budget::{run_with_budget, BudgetReport};
    pub use crate::checkpoint::{Checkpoint, TaskCheckpoint};
    pub use crate::clustering::{
        correlation_clustering, transitive_closure, ClusterMetrics, UnionFind,
    };
    pub use crate::config::{ErConfig, MechanismKind, ProbModelKind};
    pub use crate::durable::{
        reprocess_dlq, resume_durable, run_durable, DurableError, DurableOptions, ResultFingerprint,
    };
    pub use crate::incremental::{BatchOutcome, IncrementalEr};
    pub use crate::job1::run_job1;
    pub use crate::metrics::{quality, speedup_at, RecallCurve};
    pub use crate::pipeline::{ErRunResult, ProgressiveEr};
}

pub use prelude::*;

/// Timeline event kind: one duplicate pair identified. The event value is
/// the packed pair (see [`pack_pair`]).
pub const EVENT_DUPLICATE: u32 = 1;
/// Timeline event kind: a result segment was flushed (value = pairs in it).
pub const EVENT_SEGMENT: u32 = 2;

/// Pack an entity pair into one event payload.
#[inline]
pub fn pack_pair(a: u32, b: u32) -> u64 {
    (u64::from(a.min(b)) << 32) | u64::from(a.max(b))
}

/// Inverse of [`pack_pair`].
#[inline]
pub fn unpack_pair(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

#[cfg(test)]
mod pack_tests {
    use super::*;

    #[test]
    fn pack_round_trips_and_normalizes() {
        assert_eq!(unpack_pair(pack_pair(3, 9)), (3, 9));
        assert_eq!(unpack_pair(pack_pair(9, 3)), (3, 9));
        assert_eq!(unpack_pair(pack_pair(0, u32::MAX)), (0, u32::MAX));
    }
}
