//! Incremental (batch-streaming) entity resolution.
//!
//! The paper motivates progressive ER with "enterprises that continually
//! collect, clean, and analyze very large datasets" (§I). This module
//! extends the pipeline to that setting: entities arrive in batches, and
//! each batch resolves only the pairs it could possibly add — pairs
//! involving at least one new entity — inside the blocks the batch touches.
//!
//! Skipping old-old pairs is *safe* under sorted-neighbourhood windows:
//! inserting entities into a sorted order can only push two existing
//! entities further apart, so any old-old pair within the window now was
//! within the window when the older of its blocks was resolved.
//!
//! The resolver here is the single-node analogue of the MR pipeline (same
//! blocking, same mechanisms, same level policy); batches are expected to
//! be a small fraction of the accumulated dataset, where a full two-job run
//! per batch would be wasteful — exactly the scenario the paper's
//! cost-effectiveness argument targets.

use std::collections::HashSet;

use pper_blocking::{build_forests, BlockingFamily};
use pper_datagen::{Dataset, Entity, EntityId, GroundTruth};
use pper_progressive::{sort_by_attrs, LevelPolicy, PairSource, StopState};
use pper_simil::{MatchRule, PreparedEntity, PreparedRule, SimScratch, TokenInterner};

use crate::config::MechanismKind;

/// What one batch ingestion resolved.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Batch sequence number (0-based).
    pub batch: usize,
    /// Entity ids assigned to the batch's entities.
    pub ids: Vec<EntityId>,
    /// Duplicate pairs discovered by this batch (at least one side new).
    pub new_duplicates: Vec<(EntityId, EntityId)>,
    /// Pairs compared while ingesting the batch.
    pub comparisons: u64,
}

/// Prepared-path state: signatures are built once at ingest (indexed like
/// `entities`), so every later comparison of an entity — across batches —
/// reuses them with zero per-pair allocation.
struct PrepState {
    rule: PreparedRule,
    interner: TokenInterner,
    entities: Vec<PreparedEntity>,
    scratch: SimScratch,
}

/// Accumulating incremental resolver.
pub struct IncrementalEr {
    families: Vec<BlockingFamily>,
    rule: MatchRule,
    policy: LevelPolicy,
    mechanism: MechanismKind,
    entities: Vec<Entity>,
    clusters: Vec<u32>,
    duplicates: Vec<(EntityId, EntityId)>,
    /// All pairs ever compared (either outcome), so re-ingestions never
    /// repeat work.
    compared: HashSet<(EntityId, EntityId)>,
    batches: usize,
    /// Prepared fast path (on by default); `None` forces the string path.
    prepared: Option<PrepState>,
}

impl IncrementalEr {
    /// Build an empty resolver.
    pub fn new(
        families: Vec<BlockingFamily>,
        rule: MatchRule,
        policy: LevelPolicy,
        mechanism: MechanismKind,
    ) -> Self {
        let prepared = Some(PrepState {
            rule: PreparedRule::new(rule.clone()),
            interner: TokenInterner::new(),
            entities: Vec::new(),
            scratch: SimScratch::new(),
        });
        Self {
            families,
            rule,
            policy,
            mechanism,
            entities: Vec::new(),
            clusters: Vec::new(),
            duplicates: Vec::new(),
            compared: HashSet::new(),
            batches: 0,
            prepared,
        }
    }

    /// Force the original string-path pair resolution (disable the prepared
    /// fast path). Used by regression tests to A/B the two paths.
    pub fn with_string_path(mut self) -> Self {
        self.prepared = None;
        self
    }

    /// Entities accumulated so far.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True before the first batch.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// All duplicates found so far (normalized, discovery order).
    pub fn duplicates(&self) -> &[(EntityId, EntityId)] {
        &self.duplicates
    }

    /// Ingest one batch of attribute vectors (with their ground-truth
    /// cluster ids, used only for later evaluation) and resolve the pairs
    /// the batch adds.
    pub fn ingest(&mut self, batch: Vec<(Vec<String>, u32)>) -> BatchOutcome {
        let first_new = self.entities.len() as EntityId;
        let mut ids = Vec::with_capacity(batch.len());
        for (attrs, cluster) in batch {
            let id = self.entities.len() as EntityId;
            if let Some(p) = &mut self.prepared {
                p.entities.push(p.rule.prepare(&attrs, &mut p.interner));
            }
            self.entities.push(Entity::new(id, attrs));
            self.clusters.push(cluster);
            ids.push(id);
        }
        let outcome = self.resolve_delta(first_new);
        self.batches += 1;
        BatchOutcome {
            batch: self.batches - 1,
            ids,
            new_duplicates: outcome.0,
            comparisons: outcome.1,
        }
    }

    fn resolve_delta(&mut self, first_new: EntityId) -> (Vec<(EntityId, EntityId)>, u64) {
        let snapshot = self.as_dataset();
        let forests = build_forests(&snapshot, &self.families);
        let mut found = Vec::new();
        let mut comparisons = 0u64;

        for forest in &forests {
            let family = &self.families[forest.family];
            for tree in &forest.trees {
                // Only trees the batch touched can add pairs.
                if !tree.root().members.iter().any(|&m| m >= first_new) {
                    continue;
                }
                for &idx in tree.bottom_up().collect::<Vec<_>>().iter() {
                    let block = &tree.blocks[idx];
                    if !block.members.iter().any(|&m| m >= first_new) {
                        continue;
                    }
                    let sorted =
                        sort_by_attrs(&block.members, &[family.levels[0].attr, 0], &snapshot);
                    let is_root = block.is_root();
                    let window = self.policy.window(is_root, block.is_leaf());
                    let mut run = self.mechanism.start(sorted, window);
                    let mut stop = StopState::new(self.policy.stop_rule(is_root, block.size()));
                    while let Some((a, b)) = run.next_pair() {
                        // Delta filter: at least one side must be new, and
                        // the pair must not have been compared before (in
                        // this round's child blocks or an earlier batch).
                        if a < first_new && b < first_new {
                            continue;
                        }
                        let key = (a.min(b), a.max(b));
                        if !self.compared.insert(key) {
                            continue;
                        }
                        comparisons += 1;
                        let is_dup = match &mut self.prepared {
                            Some(p) => p.rule.matches(
                                &p.entities[a as usize],
                                &p.entities[b as usize],
                                &mut p.scratch,
                            ),
                            None => self.rule.matches(
                                &self.entities[a as usize].attrs,
                                &self.entities[b as usize].attrs,
                            ),
                        };
                        run.feedback(is_dup);
                        if is_dup {
                            found.push(key);
                        }
                        if stop.observe(is_dup) {
                            break;
                        }
                    }
                }
            }
        }
        found.sort_unstable();
        found.dedup();
        self.duplicates.extend(found.iter().copied());
        (found, comparisons)
    }

    /// Snapshot the accumulated entities as a [`Dataset`] (with the
    /// accumulated ground truth), e.g. to compare against a from-scratch
    /// run.
    pub fn as_dataset(&self) -> Dataset {
        Dataset::new(
            format!("incremental-{}batches", self.batches),
            schema_placeholder(self.entities.first()),
            self.entities.clone(),
            GroundTruth::new(self.clusters.clone()),
        )
    }

    /// Recall of the accumulated duplicates against the accumulated truth.
    pub fn recall(&self) -> f64 {
        let truth = GroundTruth::new(self.clusters.clone());
        let total = truth.total_duplicate_pairs();
        if total == 0 {
            return 0.0;
        }
        let correct = self
            .duplicates
            .iter()
            .filter(|&&(a, b)| truth.is_duplicate(a, b))
            .count();
        correct as f64 / total as f64
    }
}

fn schema_placeholder(first: Option<&Entity>) -> Vec<String> {
    (0..first.map_or(0, |e| e.attrs.len()))
        .map(|i| format!("attr{i}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pper_blocking::presets;
    use pper_datagen::PubGen;
    use pper_simil::{AttributeSim, WeightedAttr};

    fn resolver() -> IncrementalEr {
        IncrementalEr::new(
            presets::citeseer_families(),
            MatchRule::new(
                vec![
                    WeightedAttr::new(0, 0.55, AttributeSim::Levenshtein { max_chars: None }),
                    WeightedAttr::new(
                        1,
                        0.25,
                        AttributeSim::Levenshtein {
                            max_chars: Some(350),
                        },
                    ),
                    WeightedAttr::new(2, 0.20, AttributeSim::Levenshtein { max_chars: None }),
                ],
                0.82,
            ),
            LevelPolicy::citeseer(),
            MechanismKind::Sn,
        )
    }

    fn batches_of(ds: &Dataset, size: usize) -> Vec<Vec<(Vec<String>, u32)>> {
        ds.entities
            .chunks(size)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|e| (e.attrs.clone(), ds.truth.cluster(e.id)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batched_ingestion_matches_single_shot_recall() {
        let ds = PubGen::new(1_200, 131).generate();

        let mut single = resolver();
        let mut whole: Vec<(Vec<String>, u32)> = Vec::new();
        for b in batches_of(&ds, ds.len()) {
            whole.extend(b);
        }
        single.ingest(whole);

        let mut streamed = resolver();
        for batch in batches_of(&ds, 200) {
            streamed.ingest(batch);
        }
        assert_eq!(streamed.len(), single.len());
        // Streaming may differ marginally (block trees evolve between
        // batches) but must stay close to the single-shot recall.
        let (r1, r2) = (single.recall(), streamed.recall());
        assert!(
            (r1 - r2).abs() < 0.05,
            "single-shot {r1:.3} vs streamed {r2:.3}"
        );
        assert!(r2 > 0.8, "streamed recall {r2:.3}");
    }

    #[test]
    fn later_batches_never_repeat_comparisons() {
        let ds = PubGen::new(800, 132).generate();
        let mut er = resolver();
        let mut total = 0u64;
        let mut seen_pairs = std::collections::HashSet::new();
        for batch in batches_of(&ds, 160) {
            let outcome = er.ingest(batch);
            total += outcome.comparisons;
            for p in &outcome.new_duplicates {
                assert!(seen_pairs.insert(*p), "pair {p:?} reported twice");
            }
        }
        // Total comparisons bounded by all pairs.
        let n = ds.len() as u64;
        assert!(total <= n * (n - 1) / 2);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let mut er = resolver();
        let out = er.ingest(vec![]);
        assert_eq!(out.comparisons, 0);
        assert!(er.is_empty());
        let out = er.ingest(vec![(
            vec!["one entity".into(), "abs".into(), "ICDE".into()],
            0,
        )]);
        assert_eq!(out.comparisons, 0);
        assert_eq!(er.len(), 1);
    }

    #[test]
    fn duplicate_arriving_late_is_found() {
        let mut er = resolver();
        let master = vec![
            "progressive entity resolution at scale".to_string(),
            "we study the problem of".to_string(),
            "ICDE".to_string(),
        ];
        er.ingest(vec![(master.clone(), 0)]);
        assert!(er.duplicates().is_empty());
        // The duplicate arrives two batches later.
        er.ingest(vec![(
            vec![
                "unrelated record title".into(),
                "other".into(),
                "VLDB".into(),
            ],
            1,
        )]);
        let out = er.ingest(vec![(master, 0)]);
        assert_eq!(out.new_duplicates.len(), 1);
        assert_eq!(er.recall(), 1.0);
    }
}
