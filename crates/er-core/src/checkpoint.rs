//! Checkpointed progressive resume for the resolution job.
//!
//! Progressive ER's defining promise is that results survive early
//! termination: duplicates emitted before a crash are not lost, and a
//! resumed run must pick up exactly where the killed one stopped. A
//! [`Checkpoint`] captures everything the second job needs to do that:
//!
//! * the generated [`Schedule`] (so resume never re-runs the first job or
//!   schedule generation — only the first job's virtual cost is kept, to
//!   splice timelines);
//! * per reduce task, a [`TaskCheckpoint`] with the *resolved-block
//!   watermark* (`blocks_done` into `Schedule::block_order`), the task's
//!   virtual clock at that watermark, the per-tree resolved-pair sets
//!   (parents must still skip work their checkpointed children already
//!   did), and the duplicates found so far with their task-local costs.
//!
//! Checkpoints are cut at block granularity: a crash mid-block rolls the
//! partial block back (its resolved-pair insertions and duplicates are
//! discarded), so the resumed run re-executes that block from the
//! checkpointed clock and — execution being deterministic — lands on
//! exactly the virtual times the uninterrupted run would have produced.
//! The e2e contract, proven by `tests/resume_checkpoint.rs`: crash + resume
//! yields a bit-identical duplicate set and recall curve.
//!
//! The format is plain serde (JSON via `serde_json`), mirroring how a real
//! deployment would persist it next to the incremental result files.

use pper_schedule::Schedule;
use serde::{Deserialize, Serialize};

use pper_mapreduce::MrError;

/// Resume state of one reduce task of the resolution job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskCheckpoint {
    /// Reduce task index.
    pub task: usize,
    /// Watermark: blocks `0..blocks_done` of
    /// `Schedule::block_order[task]` are fully resolved.
    pub blocks_done: usize,
    /// The task's virtual clock right after the last completed block
    /// (includes startup, shuffle, and all per-block charges up to the
    /// watermark). Resume continues the clock from exactly this value.
    pub clock: f64,
    /// Per tree (by tree id): pairs already compared in this task,
    /// normalized `a < b` and sorted. Parent blocks resolved after resume
    /// must still skip them.
    pub resolved: Vec<(usize, Vec<(u32, u32)>)>,
    /// Duplicates found before the crash as `(task-local cost, a, b)`,
    /// in discovery order. Replayed verbatim on resume so the global
    /// timeline and segment files come out identical.
    pub duplicates: Vec<(f64, u32, u32)>,
}

/// Everything needed to resume a killed resolution job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The generated progressive schedule the killed run was executing.
    pub schedule: Schedule,
    /// Virtual completion time of the first job (statistics gathering);
    /// the resumed job-2 timeline is offset by this, exactly like an
    /// uninterrupted pipeline run.
    pub job1_cost: f64,
    /// The task-local virtual cost at which each reduce task was killed.
    pub crash_at: f64,
    /// Machine count μ of the killed run (resume must match it — the wave
    /// layout determines the global timeline).
    pub machines: usize,
    /// One entry per reduce task, indexed by task id.
    pub tasks: Vec<TaskCheckpoint>,
}

impl Checkpoint {
    /// Validate internal consistency and compatibility with the
    /// configuration about to resume it.
    pub fn validate(&self, machines: usize) -> Result<(), MrError> {
        let err = |msg: String| Err(MrError::Checkpoint(msg));
        if self.machines != machines {
            return err(format!(
                "checkpoint was cut on {} machines but resume is configured for {machines}",
                self.machines
            ));
        }
        if self.tasks.len() != self.schedule.num_tasks {
            return err(format!(
                "checkpoint has {} task entries but the schedule expects {}",
                self.tasks.len(),
                self.schedule.num_tasks
            ));
        }
        for (idx, t) in self.tasks.iter().enumerate() {
            if t.task != idx {
                return err(format!(
                    "task entry {idx} records task id {} (entries must be in task order)",
                    t.task
                ));
            }
            let blocks = self.schedule.block_order[idx].len();
            if t.blocks_done > blocks {
                return err(format!(
                    "task {idx} claims {} resolved blocks but its schedule has only {blocks}",
                    t.blocks_done
                ));
            }
            if !t.clock.is_finite() || t.clock < 0.0 {
                return err(format!(
                    "task {idx} has a non-finite or negative clock ({})",
                    t.clock
                ));
            }
            for tree in t.resolved.iter().map(|(tree, _)| *tree) {
                if tree >= self.schedule.trees.len() {
                    return err(format!(
                        "task {idx} references tree {tree}, but the schedule has only {}",
                        self.schedule.trees.len()
                    ));
                }
            }
            for w in t.duplicates.windows(2) {
                if w[1].0 < w[0].0 {
                    return err(format!(
                        "task {idx} duplicates are not in cost order ({} after {})",
                        w[1].0, w[0].0
                    ));
                }
            }
            if let Some(&(cost, _, _)) = t.duplicates.last() {
                if cost > t.clock {
                    return err(format!(
                        "task {idx} records a duplicate at cost {cost} past its clock {}",
                        t.clock
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, MrError> {
        serde_json::to_string(self).map_err(|e| MrError::Checkpoint(e.to_string()))
    }

    /// Deserialize from JSON produced by [`Checkpoint::to_json`].
    pub fn from_json(json: &str) -> Result<Self, MrError> {
        serde_json::from_str(json).map_err(|e| MrError::Checkpoint(e.to_string()))
    }

    /// Total duplicates recorded across all task checkpoints.
    pub fn duplicates_found(&self) -> usize {
        self.tasks.iter().map(|t| t.duplicates.len()).sum()
    }

    /// Total resolved blocks across all task checkpoints.
    pub fn blocks_done(&self) -> usize {
        self.tasks.iter().map(|t| t.blocks_done).sum()
    }

    /// Blocks the resumed run still has to resolve.
    pub fn blocks_remaining(&self) -> usize {
        self.schedule
            .block_order
            .iter()
            .zip(&self.tasks)
            .map(|(blocks, t)| blocks.len() - t.blocks_done)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint() -> Checkpoint {
        // A structurally minimal schedule: serde-round-trip and validation
        // only look at `num_tasks`, `block_order`, and `trees` lengths.
        let schedule = Schedule {
            trees: Vec::new(),
            task_of_tree: Vec::new(),
            block_order: vec![Vec::new(), Vec::new()],
            tree_sq: Vec::new(),
            dom: Vec::new(),
            num_tasks: 2,
        };
        Checkpoint {
            schedule,
            job1_cost: 1234.5,
            crash_at: 500.0,
            machines: 1,
            tasks: vec![
                TaskCheckpoint {
                    task: 0,
                    blocks_done: 0,
                    clock: 60.0,
                    resolved: Vec::new(),
                    duplicates: vec![(55.0, 1, 2)],
                },
                TaskCheckpoint {
                    task: 1,
                    blocks_done: 0,
                    clock: 50.0,
                    resolved: Vec::new(),
                    duplicates: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let cp = tiny_checkpoint();
        let json = cp.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back.job1_cost, cp.job1_cost);
        assert_eq!(back.tasks.len(), 2);
        assert_eq!(back.tasks[0].duplicates, vec![(55.0, 1, 2)]);
        assert!(back.validate(1).is_ok());
    }

    #[test]
    fn validate_rejects_mismatches() {
        let cp = tiny_checkpoint();
        assert!(matches!(cp.validate(3), Err(MrError::Checkpoint(_))));

        let mut wrong_tasks = tiny_checkpoint();
        wrong_tasks.tasks.pop();
        assert!(wrong_tasks.validate(1).is_err());

        let mut bad_watermark = tiny_checkpoint();
        bad_watermark.tasks[0].blocks_done = 7;
        assert!(bad_watermark.validate(1).is_err());

        let mut bad_clock = tiny_checkpoint();
        bad_clock.tasks[1].clock = f64::NAN;
        assert!(bad_clock.validate(1).is_err());

        let mut late_dup = tiny_checkpoint();
        late_dup.tasks[0].duplicates.push((100.0, 3, 4));
        assert!(late_dup.validate(1).is_err());
    }

    #[test]
    fn garbage_json_is_a_checkpoint_error() {
        assert!(matches!(
            Checkpoint::from_json("{not json"),
            Err(MrError::Checkpoint(_))
        ));
    }
}
