//! Clustering of resolved duplicate pairs (§II-A): "a clustering technique
//! such as transitive closure [1] or correlation clustering [22] may be
//! applied at the end to group duplicate entities into disjoint clusters
//! such that each cluster uniquely represents a single real-world object".
//!
//! * [`transitive_closure`] — union-find over the duplicate pairs;
//! * [`correlation_clustering`] — the classic greedy pivot algorithm
//!   (Ailon et al.'s KwikCluster specialization of Bansal-Blum-Chawla
//!   correlation clustering): pick a pivot, absorb its positive neighbours,
//!   repeat. Deterministic here (pivots in id order) so results are stable;
//! * [`ClusterMetrics`] — pairwise precision/recall/F1 of a clustering
//!   against ground truth.

use std::collections::HashMap;

use pper_datagen::{EntityId, GroundTruth};

/// Disjoint-set forest (union by rank, path halving).
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Extract clusters as a dense `entity → cluster id` assignment.
    pub fn into_assignment(mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut out = Vec::with_capacity(n);
        for x in 0..n as u32 {
            let root = self.find(x);
            let next = remap.len() as u32;
            out.push(*remap.entry(root).or_insert(next));
        }
        out
    }
}

/// Transitive closure: every connected component of the duplicate graph
/// becomes one cluster. Returns `entity → cluster id` over `n` entities.
pub fn transitive_closure(n: usize, pairs: &[(EntityId, EntityId)]) -> Vec<u32> {
    let mut uf = UnionFind::new(n);
    for &(a, b) in pairs {
        uf.union(a, b);
    }
    uf.into_assignment()
}

/// Greedy pivot correlation clustering: process entities in id order; an
/// unassigned entity becomes a pivot and absorbs all *unassigned* entities
/// connected to it by a positive (duplicate) edge.
///
/// Unlike transitive closure, a chain `a—b—c` without the `a—c` edge does
/// not necessarily merge all three: `c` joins only if it is adjacent to the
/// pivot. This bounds the damage of a single false-positive edge, which is
/// exactly why the paper lists correlation clustering as the alternative.
pub fn correlation_clustering(n: usize, pairs: &[(EntityId, EntityId)]) -> Vec<u32> {
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in pairs {
        adjacency[a as usize].push(b);
        adjacency[b as usize].push(a);
    }
    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut next_cluster = 0u32;
    for pivot in 0..n as u32 {
        if assignment[pivot as usize] != UNASSIGNED {
            continue;
        }
        assignment[pivot as usize] = next_cluster;
        for &nb in &adjacency[pivot as usize] {
            if assignment[nb as usize] == UNASSIGNED {
                assignment[nb as usize] = next_cluster;
            }
        }
        next_cluster += 1;
    }
    assignment
}

/// Pairwise clustering quality against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterMetrics {
    /// Pairs clustered together that are true duplicates / pairs clustered
    /// together.
    pub pairwise_precision: f64,
    /// Pairs clustered together that are true duplicates / true duplicate
    /// pairs.
    pub pairwise_recall: f64,
    /// Number of produced clusters.
    pub clusters: usize,
}

impl ClusterMetrics {
    /// Harmonic mean of pairwise precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.pairwise_precision, self.pairwise_recall);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Evaluate an assignment against ground truth.
    pub fn evaluate(assignment: &[u32], truth: &GroundTruth) -> Self {
        assert_eq!(assignment.len(), truth.len());
        let mut produced: HashMap<u32, Vec<u32>> = HashMap::new();
        for (id, &c) in assignment.iter().enumerate() {
            produced.entry(c).or_default().push(id as u32);
        }
        let mut together = 0u64;
        let mut correct = 0u64;
        // lint:allow(hash_iter) commutative pair counting: together/correct
        // are sums over unordered cluster-member pairs, so the totals are
        // independent of the order clusters are visited in.
        for members in produced.values() {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    together += 1;
                    correct += u64::from(truth.is_duplicate(a, b));
                }
            }
        }
        let truth_pairs = truth.total_duplicate_pairs();
        Self {
            pairwise_precision: if together == 0 {
                1.0
            } else {
                correct as f64 / together as f64
            },
            pairwise_recall: if truth_pairs == 0 {
                1.0
            } else {
                correct as f64 / truth_pairs as f64
            },
            clusters: produced.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        let assignment = uf.into_assignment();
        assert_eq!(assignment[0], assignment[2]);
        assert_ne!(assignment[0], assignment[3]);
        assert_ne!(assignment[3], assignment[4]);
    }

    #[test]
    fn transitive_closure_merges_chains() {
        let clusters = transitive_closure(5, &[(0, 1), (1, 2)]);
        assert_eq!(clusters[0], clusters[1]);
        assert_eq!(clusters[1], clusters[2]);
        assert_ne!(clusters[0], clusters[3]);
    }

    #[test]
    fn correlation_clustering_resists_chaining() {
        // Chain 0—1—2 without 0—2: pivot 0 absorbs 1; 2 is not adjacent to
        // 0, so it becomes its own pivot.
        let clusters = correlation_clustering(3, &[(0, 1), (1, 2)]);
        assert_eq!(clusters[0], clusters[1]);
        assert_ne!(clusters[0], clusters[2]);
        // Transitive closure merges all three.
        let tc = transitive_closure(3, &[(0, 1), (1, 2)]);
        assert_eq!(tc[0], tc[2]);
    }

    #[test]
    fn correlation_clustering_complete_cliques_merge() {
        let clusters = correlation_clustering(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(clusters[0], clusters[1]);
        assert_eq!(clusters[1], clusters[2]);
    }

    #[test]
    fn metrics_perfect_clustering() {
        let truth = GroundTruth::new(vec![0, 0, 1, 1, 2]);
        let m = ClusterMetrics::evaluate(&[0, 0, 1, 1, 2], &truth);
        assert_eq!(m.pairwise_precision, 1.0);
        assert_eq!(m.pairwise_recall, 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.clusters, 3);
    }

    #[test]
    fn metrics_overmerged_clustering() {
        let truth = GroundTruth::new(vec![0, 0, 1, 1]);
        // Everything in one cluster: recall 1, precision 2/6.
        let m = ClusterMetrics::evaluate(&[0, 0, 0, 0], &truth);
        assert_eq!(m.pairwise_recall, 1.0);
        assert!((m.pairwise_precision - 2.0 / 6.0).abs() < 1e-12);
        assert!(m.f1() < 1.0);
    }

    #[test]
    fn metrics_singletons() {
        let truth = GroundTruth::new(vec![0, 0, 1]);
        let m = ClusterMetrics::evaluate(&[0, 1, 2], &truth);
        assert_eq!(m.pairwise_precision, 1.0); // vacuous
        assert_eq!(m.pairwise_recall, 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_transitive_closure_is_equivalence(
            n in 2usize..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40), 0..60)
        ) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .filter(|(a, b)| (*a as usize) < n && (*b as usize) < n && a != b)
                .collect();
            let clusters = transitive_closure(n, &edges);
            // Every edge's endpoints share a cluster.
            for (a, b) in &edges {
                prop_assert_eq!(clusters[*a as usize], clusters[*b as usize]);
            }
            // Cluster ids are dense.
            let max = clusters.iter().copied().max().unwrap_or(0) as usize;
            prop_assert!(max < n);
        }

        #[test]
        fn prop_correlation_refines_transitive_closure(
            n in 2usize..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40), 0..60)
        ) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .filter(|(a, b)| (*a as usize) < n && (*b as usize) < n && a != b)
                .collect();
            let cc = correlation_clustering(n, &edges);
            let tc = transitive_closure(n, &edges);
            // Correlation clusters never span transitive-closure components.
            for a in 0..n {
                for b in (a + 1)..n {
                    if cc[a] == cc[b] {
                        prop_assert_eq!(tc[a], tc[b]);
                    }
                }
            }
        }
    }
}
