//! The second MR job (§III-B): schedule-driven progressive resolution.
//!
//! * **Map setup** — generate the progressive schedule from the first job's
//!   statistics (every map task derives the identical schedule; here the
//!   driver computes it once and shares it, charging each task the
//!   generation cost against its virtual clock).
//! * **Map** — for each entity, emit one record per tree containing it,
//!   keyed by the tree's sequence value `SQ` and carrying the entity plus
//!   its dominance list (§V).
//! * **Partition** — a range partitioner over `SQ` routes every tree to its
//!   scheduled reduce task.
//! * **Reduce (whole partition)** — ingest the task's trees, then walk the
//!   task's *block schedule*: for each block, materialize its members,
//!   sort them by the blocking attribute, run the configured mechanism with
//!   the level's window, and resolve pairs until the level's stop rule
//!   fires — skipping pairs another tree is responsible for
//!   (`SHOULD-RESOLVE`) and pairs already resolved in this tree's child
//!   blocks. Root blocks resolve fully. Duplicates stream through an
//!   [`IncrementalWriter`] cut every α cost units.
//!
//! ## Crash and resume
//!
//! The reduce phase can additionally run in two fault-tolerance modes (see
//! [`crate::checkpoint`]): *crash mode* executes each task only until its
//! virtual clock crosses a kill threshold and emits a [`TaskCheckpoint`]
//! cut at the last completed block boundary, and *resume mode* seeds each
//! task from a checkpoint — replaying recorded duplicates at their original
//! virtual costs, restoring the resolved-pair sets, continuing the clock
//! from the checkpointed watermark, and resolving only the remaining
//! blocks. Because execution is deterministic, crash + resume reproduces
//! the uninterrupted run's duplicate set and timeline bit for bit.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pper_blocking::BlockingFamily;
use pper_datagen::{Dataset, Entity, EntityId};
use pper_mapreduce::prelude::*;
use pper_mapreduce::runtime::run_job_with_partitioner;
use pper_progressive::{LevelPolicy, PairSource, StopState};
use pper_schedule::{should_resolve, DomList, Schedule, TreeLocator};
use pper_simil::{MatchRule, PreparedCache, PreparedRule, SimScratch};

use crate::checkpoint::{Checkpoint, TaskCheckpoint};
use crate::config::ErConfig;
use crate::EVENT_DUPLICATE;

/// Map output value: the entity and its dominance list for the target tree.
type Routed = (Entity, DomList);

struct RouteMapper<'a> {
    families: &'a [BlockingFamily],
    schedule: &'a Arc<Schedule>,
    locator: &'a Arc<TreeLocator>,
}

impl Mapper for RouteMapper<'_> {
    type Input = Entity;
    type Key = u64;
    type Value = Routed;

    fn setup(&self, ctx: &mut TaskContext) {
        // Every map task generates the progressive schedule from the
        // gathered statistics (§III-B). The dominant term is sorting SL.
        let total_blocks: usize = self.schedule.trees.iter().map(|t| t.nodes.len()).sum();
        ctx.charge(ctx.cost_model.sort_cost(total_blocks) * 2.0);
        ctx.counters.incr("job2_schedules_generated");
    }

    fn map(&self, entity: &Entity, ctx: &mut TaskContext, out: &mut Emitter<u64, Routed>) {
        for tree in self.locator.trees_of_entity(self.families, entity) {
            ctx.charge(ctx.cost_model.read_per_entity * 0.25);
            let list = self
                .locator
                .dom_list(self.schedule, self.families, entity, tree);
            out.emit(self.schedule.tree_sq[tree], (entity.clone(), list));
        }
    }
}

/// Per-tree reduce-side state.
/// Per-tree resolve state. Entities and dominance lists stay borrowed from
/// the job's flat shuffle partition — a task restoring from checkpoint or
/// re-running after a fault reads the same arena, no copies.
struct TreeState<'p> {
    entities: HashMap<EntityId, &'p Entity>,
    doms: HashMap<EntityId, &'p DomList>,
    /// Pairs already *compared* in this tree (normalized `a < b`), so a
    /// parent block never repeats its children's work (§III-A).
    resolved: HashSet<(EntityId, EntityId)>,
}

/// How the reduce phase executes (see the module docs' crash/resume
/// section).
#[derive(Clone, Copy)]
enum ReduceMode<'a> {
    /// Ordinary resolution: resolve every scheduled block.
    Normal,
    /// Kill each reduce task once its virtual clock crosses the threshold;
    /// emit a [`TaskCheckpoint`] cut at the last completed block.
    CrashAt(f64),
    /// Restore each task from the checkpoint and resolve only the
    /// remaining blocks.
    Resume(&'a Checkpoint),
    /// Restore from the checkpoint like [`ReduceMode::Resume`], but kill
    /// each task again once its clock crosses the (later) threshold and
    /// emit a fresh [`TaskCheckpoint`]. This is the staged periodic-
    /// checkpointing step: by determinism, resuming checkpoint `T1` and
    /// crashing at `T2` yields the same checkpoint as crashing the
    /// uninterrupted run at `T2`.
    ResumeToCrash(&'a Checkpoint, f64),
}

/// Reduce output: result segments in normal/resume modes, one task
/// checkpoint per reduce task in crash mode.
#[derive(Debug)]
enum Job2Out {
    Seg(Segment<(EntityId, EntityId)>),
    Ckpt(TaskCheckpoint),
}

struct ResolveReducer<'a> {
    families: &'a [BlockingFamily],
    schedule: &'a Arc<Schedule>,
    policy: &'a LevelPolicy,
    rule: &'a MatchRule,
    /// Compiled prepared rule; `None` forces the original string path.
    prepared: Option<PreparedRule>,
    mechanism: crate::config::MechanismKind,
    alpha: f64,
    mode: ReduceMode<'a>,
}

impl PartitionReducer for ResolveReducer<'_> {
    type Key = u64;
    type Value = Routed;
    type Output = Job2Out;

    fn reduce_partition(
        &self,
        partition: &pper_mapreduce::GroupedPartition<u64, Routed>,
        ctx: &mut TaskContext,
        out: &mut Vec<Job2Out>,
    ) {
        let task = ctx.id.index;
        let n_families = self.families.len();

        // Invert SQ → tree id for this task's groups.
        let sq_to_tree: HashMap<u64, usize> = self
            .schedule
            .tree_sq
            .iter()
            .enumerate()
            .map(|(t, &sq)| (sq, t))
            .collect();

        let mut states: HashMap<usize, TreeState<'_>> = HashMap::new();
        for (&sq, values) in partition.iter() {
            let Some(&tree) = sq_to_tree.get(&sq) else {
                ctx.counters.incr("job2_unroutable_groups");
                continue;
            };
            let mut state = TreeState {
                entities: HashMap::with_capacity(values.len()),
                doms: HashMap::with_capacity(values.len()),
                resolved: HashSet::new(),
            };
            for (entity, dom) in values {
                state.doms.insert(entity.id, dom);
                state.entities.insert(entity.id, entity);
            }
            states.insert(tree, state);
        }

        let mut writer: IncrementalWriter<(EntityId, EntityId)> =
            IncrementalWriter::new(self.alpha, ctx.now());

        let resume = match self.mode {
            ReduceMode::Resume(cp) | ReduceMode::ResumeToCrash(cp, _) => Some(&cp.tasks[task]),
            _ => None,
        };
        let crash_at = match self.mode {
            ReduceMode::CrashAt(limit) | ReduceMode::ResumeToCrash(_, limit) => Some(limit),
            _ => None,
        };

        if let Some(tc) = resume {
            // Work redone before the clock override (startup, shuffle,
            // schedule ingestion) is the price of resuming.
            ctx.counters
                .add("resume_replay_cost", ctx.now().round() as u64);
            // Restore the resolved-pair sets so blocks resolved after the
            // resume still skip work the checkpointed blocks already did.
            // lint:allow(hash_iter) `tc.resolved` is the checkpoint's Vec
            // (same name as the per-tree HashSet field, but a sorted list);
            // and extending disjoint per-tree sets commutes anyway.
            for &(tree, ref pairs) in &tc.resolved {
                if let Some(state) = states.get_mut(&tree) {
                    state.resolved.extend(pairs.iter().copied());
                }
            }
            // Replay checkpointed duplicates at their original task-local
            // costs: the writer was created at the same start cost as in
            // the killed run and segments cut on a fixed α-grid, so the
            // replay reproduces the original segment files and timeline.
            for &(cost, a, b) in &tc.duplicates {
                ctx.events
                    .push(cost, EVENT_DUPLICATE, crate::pack_pair(a, b));
                writer.write(cost, (a.min(b), a.max(b)));
                ctx.counters.incr("duplicates_found");
                ctx.counters.incr("resume_replayed_duplicates");
            }
            // Continue the virtual clock from the checkpointed watermark;
            // the remaining blocks then land on exactly the costs the
            // uninterrupted run would have charged.
            ctx.clock = CostClock::with_offset(tc.clock);
        }

        // Crash-mode bookkeeping: the checkpoint is cut at the last
        // completed block boundary, so a mid-block kill rolls the partial
        // block back below.
        let mut blocks_done = resume.map_or(0, |tc| tc.blocks_done);
        let mut ckpt_clock = ctx.now();
        // In combined resume+crash mode the next checkpoint must carry the
        // replayed duplicates forward, so the log is seeded from the one
        // being resumed; restored resolved-pair sets are likewise already
        // in `states` and are never rolled back (only `block_added` is).
        let mut dup_log: Vec<(f64, EntityId, EntityId)> = match (resume, crash_at) {
            (Some(tc), Some(_)) => tc.duplicates.clone(),
            _ => Vec::new(),
        };
        let mut dups_at_boundary = dup_log.len();

        // Per-reduce-task prepared state: an entity's signatures are built
        // on its first comparison in this task and reused across every
        // block (of any tree) the task resolves it in.
        let mut cache: PreparedCache<EntityId> = PreparedCache::new();
        let mut scratch = SimScratch::new();

        'blocks: for (block_idx, block) in self.schedule.block_order[task].iter().enumerate() {
            if let Some(tc) = resume {
                if block_idx < tc.blocks_done {
                    // Already resolved before the crash; its charges are
                    // part of the checkpointed clock.
                    ctx.counters.incr("job2_blocks_skipped_resumed");
                    continue;
                }
            }
            if let Some(limit) = crash_at {
                if ctx.now() >= limit {
                    break 'blocks;
                }
            }
            let Some(state) = states.get_mut(&block.tree) else {
                // Tree received no entities (cannot happen for real trees).
                blocks_done = block_idx + 1;
                ckpt_clock = ctx.now();
                dups_at_boundary = dup_log.len();
                continue;
            };
            let plan_tree = &self.schedule.trees[block.tree];
            let node = &plan_tree.nodes[block.node];
            let family = &self.families[plan_tree.family];

            // Materialize the block: members of the tree whose key at the
            // node's level equals the node's key (prefix nesting makes the
            // level key sufficient).
            let mut members: Vec<EntityId> = state
                .entities
                .values() // lint:allow(hash_iter) members are sorted before use, right below
                .filter(|e| family.key_at(e, node.level) == node.key)
                .map(|e| e.id)
                .collect();
            members.sort_unstable();
            ctx.charge(ctx.cost_model.read_per_entity * state.entities.len() as f64);
            if members.len() < 2 {
                blocks_done = block_idx + 1;
                ckpt_clock = ctx.now();
                dups_at_boundary = dup_log.len();
                continue;
            }

            // Hint generation: sort by the blocking attribute.
            // Compound SNM sort key: the blocking attribute, ties broken
            // by the most discriminative attribute (index 0, the title).
            let sorted = pper_progressive::sort_by_attrs(
                &members,
                &[family.levels[0].attr, 0],
                &state.entities,
            );
            ctx.charge(ctx.cost_model.block_additional_cost(sorted.len()));

            // Root-ness follows the scheduling tree: a split sub-tree's root
            // is promoted to full root-style resolution (§IV-C2). Leaf-ness
            // follows the blocking hierarchy: a parent whose children were
            // split away keeps its mid-level window — its sub-blocks still
            // exist, they are just resolved in another task.
            let is_root = node.is_root();
            let is_leaf = node.hier_leaf;
            let window = self.policy.window(is_root, is_leaf);
            let mut run = self.mechanism.start(sorted, window);
            let mut stop = StopState::new(self.policy.stop_rule(is_root, members.len()));
            let mut block_added: Vec<(EntityId, EntityId)> = Vec::new();

            while let Some((a, b)) = run.next_pair() {
                if let Some(limit) = crash_at {
                    if ctx.now() >= limit {
                        // Killed mid-block: roll the partial block back so
                        // the checkpoint sits exactly on the last completed
                        // block boundary.
                        for key in &block_added {
                            state.resolved.remove(key);
                        }
                        dup_log.truncate(dups_at_boundary);
                        break 'blocks;
                    }
                }
                let key = (a.min(b), a.max(b));
                if state.resolved.contains(&key) {
                    ctx.counters.incr("pairs_skipped_already_resolved");
                    continue;
                }
                let responsible =
                    should_resolve(state.doms[&a], state.doms[&b], plan_tree.family, n_families);
                if !responsible {
                    ctx.counters.incr("pairs_skipped_redundant");
                    continue;
                }
                ctx.charge(ctx.cost_model.resolve_pair);
                ctx.counters.incr("pairs_compared");
                state.resolved.insert(key);
                if crash_at.is_some() {
                    block_added.push(key);
                }
                let is_dup = match &self.prepared {
                    Some(pr) => cache.matches_pair(
                        pr,
                        &mut scratch,
                        (a, state.entities[&a].attrs.as_slice()),
                        (b, state.entities[&b].attrs.as_slice()),
                    ),
                    None => self
                        .rule
                        .matches(&state.entities[&a].attrs, &state.entities[&b].attrs),
                };
                run.feedback(is_dup);
                if is_dup {
                    ctx.counters.incr("duplicates_found");
                    ctx.log_event(EVENT_DUPLICATE, crate::pack_pair(a, b));
                    writer.write(ctx.now(), key);
                    if crash_at.is_some() {
                        dup_log.push((ctx.now(), a, b));
                    }
                } else {
                    writer.advance(ctx.now());
                }
                if stop.observe(is_dup) {
                    ctx.counters.incr("blocks_stopped_early");
                    break;
                }
            }
            ctx.counters.incr("blocks_resolved");
            blocks_done = block_idx + 1;
            ckpt_clock = ctx.now();
            dups_at_boundary = dup_log.len();
        }

        if crash_at.is_some() {
            // The crashed run's in-memory results are lost; only the
            // checkpoint (with its embedded duplicate log) survives.
            let mut resolved: Vec<(usize, Vec<(EntityId, EntityId)>)> = states
                .iter()
                .filter(|(_, s)| !s.resolved.is_empty())
                .map(|(&tree, s)| {
                    // lint:allow(hash_iter) set order discarded by the sort below.
                    let mut pairs: Vec<_> = s.resolved.iter().copied().collect();
                    pairs.sort_unstable();
                    (tree, pairs)
                })
                .collect();
            resolved.sort_unstable_by_key(|&(tree, _)| tree);
            out.push(Job2Out::Ckpt(TaskCheckpoint {
                task,
                blocks_done,
                clock: ckpt_clock,
                resolved,
                duplicates: dup_log,
            }));
        } else {
            out.extend(writer.finish(ctx.now()).into_iter().map(Job2Out::Seg));
        }
    }
}

/// Result of the second job.
#[derive(Debug)]
pub struct Job2Result {
    /// All duplicate pairs found, normalized `a < b`, deduplicated.
    pub duplicates: Vec<(EntityId, EntityId)>,
    /// Result segments across all reduce tasks (α-incremental output).
    pub segments: Vec<Segment<(EntityId, EntityId)>>,
    /// Global timeline of duplicate events.
    pub timeline: Vec<ProgressEvent>,
    /// Virtual completion time of the job.
    pub virtual_cost: f64,
    /// Merged counters.
    pub counters: Counters,
}

fn run_job2_inner(
    ds: &Dataset,
    config: &ErConfig,
    schedule: &Arc<Schedule>,
    mode: ReduceMode<'_>,
) -> Result<pper_mapreduce::runtime::JobResult<Job2Out>, MrError> {
    let locator = Arc::new(TreeLocator::new(schedule, config.families.len()));
    let mut cfg = JobConfig::new("pper-job2-resolution", config.cluster());
    cfg.cost_model = config.cost_model.clone();
    cfg.worker_threads = config.worker_threads;
    cfg.num_reduce_tasks = Some(schedule.num_tasks);
    cfg.faults = config.faults.clone();
    cfg.speculation = config.speculation;
    cfg.observer = config.observer.clone();
    cfg.executor = config.executor;

    let mapper = RouteMapper {
        families: &config.families,
        schedule,
        locator: &locator,
    };
    let reducer = ResolveReducer {
        families: &config.families,
        schedule,
        policy: &config.policy,
        rule: &config.rule,
        prepared: config
            .use_prepared
            .then(|| PreparedRule::new(config.rule.clone())),
        mechanism: config.mechanism,
        alpha: config.alpha,
        mode,
    };
    let partitioner = RangePartitioner::new(schedule.sq_bounds(), |sq: &u64| *sq);
    run_job_with_partitioner(&cfg, &mapper, &reducer, &partitioner, &ds.entities)
}

fn assemble(result: pper_mapreduce::runtime::JobResult<Job2Out>) -> Job2Result {
    let segments: Vec<Segment<(EntityId, EntityId)>> = result
        .outputs
        .into_iter()
        .filter_map(|o| match o {
            Job2Out::Seg(s) => Some(s),
            Job2Out::Ckpt(_) => None,
        })
        .collect();
    let mut duplicates: Vec<(EntityId, EntityId)> = segments
        .iter()
        .flat_map(|s| s.records.iter().copied())
        .collect();
    duplicates.sort_unstable();
    duplicates.dedup();

    Job2Result {
        duplicates,
        segments,
        timeline: result.timeline,
        virtual_cost: result.total_virtual_cost,
        counters: result.counters,
    }
}

/// Run the second job against a generated schedule.
pub fn run_job2(
    ds: &Dataset,
    config: &ErConfig,
    schedule: Arc<Schedule>,
) -> Result<Job2Result, MrError> {
    run_job2_inner(ds, config, &schedule, ReduceMode::Normal).map(assemble)
}

/// Run the second job but kill every reduce task once its task-local
/// virtual clock crosses `crash_at`, returning the per-task checkpoints cut
/// at the last completed block boundaries (in task order). The crashed
/// run's own outputs are discarded — only the checkpoints survive, exactly
/// as if the cluster died and the checkpoint files were all that was left.
pub fn run_job2_to_crash(
    ds: &Dataset,
    config: &ErConfig,
    schedule: Arc<Schedule>,
    crash_at: f64,
) -> Result<Vec<TaskCheckpoint>, MrError> {
    if !crash_at.is_finite() || crash_at < 0.0 {
        return Err(MrError::Checkpoint(format!(
            "crash threshold must be finite and non-negative, got {crash_at}"
        )));
    }
    let result = run_job2_inner(ds, config, &schedule, ReduceMode::CrashAt(crash_at))?;
    collect_checkpoints(result, schedule.num_tasks)
}

/// Extract and order the per-task checkpoints of a crashed run.
fn collect_checkpoints(
    result: pper_mapreduce::runtime::JobResult<Job2Out>,
    num_tasks: usize,
) -> Result<Vec<TaskCheckpoint>, MrError> {
    let mut tasks: Vec<TaskCheckpoint> = result
        .outputs
        .into_iter()
        .filter_map(|o| match o {
            Job2Out::Ckpt(tc) => Some(tc),
            Job2Out::Seg(_) => None,
        })
        .collect();
    tasks.sort_unstable_by_key(|tc| tc.task);
    if tasks.len() != num_tasks {
        return Err(MrError::Checkpoint(format!(
            "crashed run produced {} task checkpoints, expected {num_tasks}",
            tasks.len()
        )));
    }
    Ok(tasks)
}

/// Resume the second job from a checkpoint and crash it again at the later
/// threshold `crash_at` — one step of staged periodic checkpointing. By
/// determinism the returned checkpoints are bit-identical to what
/// [`run_job2_to_crash`] at `crash_at` would have produced on the
/// uninterrupted run (asserted in this module's tests).
pub fn run_job2_resume_to_crash(
    ds: &Dataset,
    config: &ErConfig,
    checkpoint: &Checkpoint,
    crash_at: f64,
) -> Result<Vec<TaskCheckpoint>, MrError> {
    checkpoint.validate(config.machines)?;
    if !crash_at.is_finite() || crash_at < checkpoint.crash_at {
        return Err(MrError::Checkpoint(format!(
            "staged crash threshold {crash_at} must be finite and not before \
             the checkpoint's own ({})",
            checkpoint.crash_at
        )));
    }
    let schedule = Arc::new(checkpoint.schedule.clone());
    let result = run_job2_inner(
        ds,
        config,
        &schedule,
        ReduceMode::ResumeToCrash(checkpoint, crash_at),
    )?;
    collect_checkpoints(result, schedule.num_tasks)
}

/// Resume the second job from a validated [`Checkpoint`]: replay the
/// checkpointed duplicates and resolve only the remaining blocks. The
/// returned result is bit-identical to an uninterrupted [`run_job2`] in its
/// duplicate set, segments, and timeline.
pub fn run_job2_resume(
    ds: &Dataset,
    config: &ErConfig,
    checkpoint: &Checkpoint,
) -> Result<Job2Result, MrError> {
    checkpoint.validate(config.machines)?;
    let schedule = Arc::new(checkpoint.schedule.clone());
    run_job2_inner(ds, config, &schedule, ReduceMode::Resume(checkpoint)).map(assemble)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job1::run_job1;
    use pper_datagen::PubGen;
    use pper_schedule::{generate_schedule, EstimationContext};

    fn schedule_for(ds: &Dataset, config: &ErConfig) -> Arc<Schedule> {
        let job1 = run_job1(ds, config).unwrap();
        let ctx = EstimationContext {
            dataset_size: ds.len(),
            policy: &config.policy,
            cost_model: &config.cost_model,
            prob: config.prob.as_model(),
        };
        let mut sc = config.schedule.clone();
        sc.reduce_tasks = config.reduce_tasks();
        Arc::new(generate_schedule(&job1.stats, &ctx, &sc))
    }

    #[test]
    fn job2_finds_most_duplicates_without_redundancy() {
        let ds = PubGen::new(3_000, 71).generate();
        let config = ErConfig::citeseer(2);
        let schedule = schedule_for(&ds, &config);
        let result = run_job2(&ds, &config, schedule).unwrap();

        let truth = ds.truth.total_duplicate_pairs();
        let correct = result
            .duplicates
            .iter()
            .filter(|&&(a, b)| ds.truth.is_duplicate(a, b))
            .count() as u64;
        let recall = correct as f64 / truth as f64;
        assert!(
            recall > 0.8,
            "recall {recall:.3} too low ({correct}/{truth})"
        );
        // Redundancy-free: every pair compared at most once per tree, and
        // cross-tree redundancy should be a small residual (only the pairs
        // legitimately re-examined when both of a pair's trees were split).
        assert!(result.counters.get("pairs_skipped_redundant") > 0);
        // Duplicates list is deduplicated and sorted.
        assert!(result.duplicates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn job2_timeline_is_monotone_and_matches_counters() {
        let ds = PubGen::new(1_500, 72).generate();
        let config = ErConfig::citeseer(2);
        let schedule = schedule_for(&ds, &config);
        let result = run_job2(&ds, &config, schedule).unwrap();
        assert!(result.timeline.windows(2).all(|w| w[0].cost <= w[1].cost));
        let events = result
            .timeline
            .iter()
            .filter(|e| e.kind == EVENT_DUPLICATE)
            .count() as u64;
        assert_eq!(events, result.counters.get("duplicates_found"));
    }

    #[test]
    fn job2_segments_partition_duplicates() {
        let ds = PubGen::new(1_500, 73).generate();
        let mut config = ErConfig::citeseer(2);
        config.alpha = 500.0; // several segments
        let schedule = schedule_for(&ds, &config);
        let result = run_job2(&ds, &config, schedule).unwrap();
        let seg_pairs: usize = result.segments.iter().map(|s| s.records.len()).sum();
        assert_eq!(seg_pairs as u64, result.counters.get("duplicates_found"));
        assert!(
            result.segments.len() > 1,
            "alpha should cut multiple segments"
        );
    }

    #[test]
    fn job2_deterministic_virtual_time() {
        let ds = PubGen::new(1_000, 74).generate();
        let mut c1 = ErConfig::citeseer(2);
        c1.worker_threads = Some(1);
        let mut c8 = ErConfig::citeseer(2);
        c8.worker_threads = Some(8);
        let s1 = schedule_for(&ds, &c1);
        let r1 = run_job2(&ds, &c1, s1).unwrap();
        let s8 = schedule_for(&ds, &c8);
        let r8 = run_job2(&ds, &c8, s8).unwrap();
        assert_eq!(r1.duplicates, r8.duplicates);
        assert_eq!(r1.virtual_cost, r8.virtual_cost);
    }
}
