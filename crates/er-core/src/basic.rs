//! The Basic approach (§II-C, Fig. 2): the baseline our pipeline is
//! evaluated against.
//!
//! One MR job. The map function determines each entity's blocking key
//! value(s) and emits a key-value pair per main blocking function, keyed by
//! `(blocking key, function id)`; the default hash partitioner routes whole
//! blocks to reduce tasks; each reduce call partially resolves its block
//! with the mechanism `M` until the Popcorn stopping condition fires
//! (or fully, for "Basic F").
//!
//! As in the paper's experiments, the redundancy-elimination technique of
//! Kolb et al. (ref. [14]) is incorporated: a pair co-occurring in several
//! blocks is resolved only in the common block with the smallest blocking
//! key value. The §II-C limitations this baseline exhibits by construction:
//! schedule oblivious to duplicate distribution, single visit per block
//! (so the Popcorn threshold trades early detection against final recall),
//! no hierarchy to cut large-block overhead, and shared pairs resolved
//! late in whatever block happens to have the smallest key.

use pper_blocking::BlockingFamily;
use pper_datagen::{Dataset, Entity, EntityId};
use pper_mapreduce::prelude::*;
use pper_progressive::{PairSource, StopRule, StopState};
use pper_simil::{MatchRule, PreparedCache, PreparedRule, SimScratch};
use serde::{Deserialize, Serialize};

use crate::config::{ErConfig, MechanismKind};
use crate::metrics::RecallCurve;
use crate::pipeline::ErRunResult;
use crate::EVENT_DUPLICATE;

/// Basic-baseline knobs (§VI-B1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BasicConfig {
    /// Sorted-neighbourhood window `w` (the paper sweeps 5 and 15).
    pub window: usize,
    /// Popcorn stopping threshold; `None` is "Basic F" (blocks resolved to
    /// completion).
    pub popcorn_threshold: Option<f64>,
    /// Comparisons window over which the Popcorn rate is measured.
    pub popcorn_window: u64,
}

impl BasicConfig {
    /// Basic F: no stopping condition.
    pub fn full(window: usize) -> Self {
        Self {
            window,
            popcorn_threshold: None,
            popcorn_window: 100,
        }
    }

    /// Popcorn stopping at `threshold`. The rate-measurement window scales
    /// inversely with the threshold (a rate of 0.001 is only observable
    /// over ≥ 1000 comparisons), so the paper's full threshold sweep — from
    /// 0.1 down to 0.00001 — produces genuinely different behaviour.
    pub fn popcorn(window: usize, threshold: f64) -> Self {
        let rate_window = if threshold > 0.0 {
            ((2.0 / threshold).ceil() as u64).clamp(50, 200_000)
        } else {
            200_000
        };
        Self {
            window,
            popcorn_threshold: Some(threshold),
            popcorn_window: rate_window,
        }
    }

    fn stop_rule(&self) -> StopRule {
        match self.popcorn_threshold {
            None => StopRule::Exhaust,
            Some(threshold) => StopRule::Popcorn {
                threshold,
                window: self.popcorn_window,
            },
        }
    }
}

/// Map value: the entity plus its full `(key, family)` block-key list for
/// the smallest-key redundancy check.
type Keyed = (Entity, Vec<(String, u8)>);

/// Map key: `(blocking key value, function id)` — ordered by key value
/// first, exactly the order the smallest-key rule compares by.
type BasicKey = (String, u8);

struct BasicMapper<'a> {
    families: &'a [BlockingFamily],
}

impl Mapper for BasicMapper<'_> {
    type Input = Entity;
    type Key = BasicKey;
    type Value = Keyed;

    fn map(&self, entity: &Entity, ctx: &mut TaskContext, out: &mut Emitter<BasicKey, Keyed>) {
        let keys: Vec<(String, u8)> = self
            .families
            .iter()
            .enumerate()
            .map(|(f, fam)| (fam.root_key(entity), f as u8))
            .collect();
        for key in &keys {
            ctx.charge(ctx.cost_model.read_per_entity * 0.25);
            out.emit(key.clone(), (entity.clone(), keys.clone()));
        }
    }
}

struct BasicReducer<'a> {
    families: &'a [BlockingFamily],
    rule: &'a MatchRule,
    /// Compiled prepared rule; `None` forces the original string path.
    prepared: Option<PreparedRule>,
    mechanism: MechanismKind,
    basic: &'a BasicConfig,
}

/// Per-reduce-task resolve state: entities are prepared once per task (an
/// entity recurring across this task's blocks reuses its signatures) and
/// every pair comparison goes through the same reusable scratch.
struct TaskSimState {
    cache: PreparedCache<EntityId>,
    scratch: SimScratch,
}

impl TaskSimState {
    fn new() -> Self {
        Self {
            cache: PreparedCache::new(),
            scratch: SimScratch::new(),
        }
    }
}

impl PartitionReducer for BasicReducer<'_> {
    type Key = BasicKey;
    type Value = Keyed;
    type Output = (EntityId, EntityId);

    fn reduce_partition(
        &self,
        partition: &pper_mapreduce::GroupedPartition<BasicKey, Keyed>,
        ctx: &mut TaskContext,
        out: &mut Vec<(EntityId, EntityId)>,
    ) {
        let mut sim = TaskSimState::new();
        for (key, values) in partition.iter() {
            self.reduce_block(key, values, ctx, out, &mut sim);
        }
    }
}

impl BasicReducer<'_> {
    fn reduce_block(
        &self,
        key: &BasicKey,
        values: &[Keyed],
        ctx: &mut TaskContext,
        out: &mut Vec<(EntityId, EntityId)>,
        sim: &mut TaskSimState,
    ) {
        if values.len() < 2 {
            return;
        }
        let family = &self.families[key.1 as usize];
        let mut entities: std::collections::HashMap<EntityId, &Entity> =
            std::collections::HashMap::with_capacity(values.len());
        let mut key_lists: std::collections::HashMap<EntityId, &[(String, u8)]> =
            std::collections::HashMap::with_capacity(values.len());
        let mut members = Vec::with_capacity(values.len());
        for (e, keys) in values {
            members.push(e.id);
            key_lists.insert(e.id, keys.as_slice());
            entities.insert(e.id, e);
        }
        members.sort_unstable();

        let sorted =
            pper_progressive::sort_by_attrs(&members, &[family.levels[0].attr, 0], &entities);
        ctx.charge(ctx.cost_model.block_additional_cost(sorted.len()));

        let mut run = self.mechanism.start(sorted, self.basic.window);
        let mut stop = StopState::new(self.basic.stop_rule());
        while let Some((a, b)) = run.next_pair() {
            // Kolb-style smallest-key rule: resolve the pair only in the
            // common block with the smallest (key, function) value.
            let smallest_common = key_lists[&a]
                .iter()
                .filter(|k| key_lists[&b].contains(k))
                .min()
                .cloned();
            if smallest_common.as_ref() != Some(key) {
                ctx.counters.incr("pairs_skipped_redundant");
                continue;
            }
            ctx.charge(ctx.cost_model.resolve_pair);
            ctx.counters.incr("pairs_compared");
            let is_dup = match &self.prepared {
                Some(pr) => sim.cache.matches_pair(
                    pr,
                    &mut sim.scratch,
                    (a, entities[&a].attrs.as_slice()),
                    (b, entities[&b].attrs.as_slice()),
                ),
                None => self.rule.matches(&entities[&a].attrs, &entities[&b].attrs),
            };
            run.feedback(is_dup);
            if is_dup {
                ctx.counters.incr("duplicates_found");
                ctx.log_event(EVENT_DUPLICATE, crate::pack_pair(a, b));
                out.push((a.min(b), a.max(b)));
            }
            if stop.observe(is_dup) {
                ctx.counters.incr("blocks_stopped_early");
                break;
            }
        }
        ctx.counters.incr("blocks_resolved");
    }
}

/// The Basic baseline runner.
#[derive(Debug, Clone)]
pub struct BasicApproach {
    /// Shared pipeline configuration (blocking, rule, cluster, mechanism).
    pub er: ErConfig,
    /// Basic-specific knobs.
    pub basic: BasicConfig,
}

impl BasicApproach {
    /// Build a runner.
    pub fn new(er: ErConfig, basic: BasicConfig) -> Self {
        Self { er, basic }
    }

    /// Run the baseline and report the same result shape as the pipeline.
    pub fn run(&self, ds: &Dataset) -> Result<ErRunResult, MrError> {
        let mut cfg = JobConfig::new("pper-basic", self.er.cluster());
        cfg.cost_model = self.er.cost_model.clone();
        cfg.worker_threads = self.er.worker_threads;
        cfg.shuffle_balance = self.er.shuffle_balance;
        cfg.faults = self.er.faults.clone();
        cfg.speculation = self.er.speculation;
        cfg.observer = self.er.observer.clone();
        cfg.executor = self.er.executor;

        let mapper = BasicMapper {
            families: &self.er.families,
        };
        let reducer = BasicReducer {
            families: &self.er.families,
            rule: &self.er.rule,
            prepared: self
                .er
                .use_prepared
                .then(|| PreparedRule::new(self.er.rule.clone())),
            mechanism: self.er.mechanism,
            basic: &self.basic,
        };
        let result = run_job(&cfg, &mapper, &reducer, &ds.entities)?;

        let mut duplicates = result.outputs;
        duplicates.sort_unstable();
        duplicates.dedup();

        let truth = &ds.truth;
        let total_truth = truth.total_duplicate_pairs();
        let curve = RecallCurve::from_timeline_where(&result.timeline, total_truth, |v| {
            let (a, b) = crate::unpack_pair(v);
            truth.is_duplicate(a, b)
        });
        let correct = duplicates
            .iter()
            .filter(|&&(a, b)| truth.is_duplicate(a, b))
            .count();
        let precision = if duplicates.is_empty() {
            1.0
        } else {
            correct as f64 / duplicates.len() as f64
        };

        let found_events = result
            .timeline
            .iter()
            .filter(|e| e.kind == EVENT_DUPLICATE)
            .map(|e| {
                let (a, b) = crate::unpack_pair(e.value);
                (e.cost, a, b)
            })
            .collect();

        Ok(ErRunResult {
            curve,
            duplicates,
            found_events,
            total_cost: result.total_virtual_cost,
            overhead_cost: cfg.cost_model.job_startup + result.map_phase.makespan,
            counters: result.counters,
            precision,
            label: format!(
                "basic-{}-w{}-{}",
                self.er.mechanism.name(),
                self.basic.window,
                self.basic
                    .popcorn_threshold
                    .map_or("F".to_string(), |t| t.to_string())
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pper_datagen::PubGen;

    #[test]
    fn basic_full_reaches_high_recall() {
        let ds = PubGen::new(2_000, 81).generate();
        let runner = BasicApproach::new(ErConfig::citeseer(2), BasicConfig::full(15));
        let r = runner.run(&ds).unwrap();
        assert!(
            r.curve.final_recall() > 0.8,
            "Basic F should be thorough, got {:.3}",
            r.curve.final_recall()
        );
        assert!(r.precision > 0.8, "precision {:.3}", r.precision);
        assert!(r.counters.get("pairs_skipped_redundant") > 0);
    }

    #[test]
    fn aggressive_popcorn_trades_recall_for_cost() {
        let ds = PubGen::new(2_000, 82).generate();
        let er = ErConfig::citeseer(2);
        let full = BasicApproach::new(er.clone(), BasicConfig::full(15))
            .run(&ds)
            .unwrap();
        let aggressive = BasicApproach::new(er, BasicConfig::popcorn(15, 0.2))
            .run(&ds)
            .unwrap();
        assert!(aggressive.total_cost < full.total_cost);
        assert!(aggressive.curve.final_recall() <= full.curve.final_recall() + 1e-9);
        assert!(aggressive.counters.get("blocks_stopped_early") > 0);
    }

    #[test]
    fn each_pair_resolved_once_across_blocks() {
        // The smallest-key rule must prevent double counting: compared pairs
        // across all reduce tasks ≤ distinct pairs sharing a block.
        let ds = PubGen::new(1_000, 83).generate();
        let runner = BasicApproach::new(ErConfig::citeseer(2), BasicConfig::full(1_000));
        let r = runner.run(&ds).unwrap();
        // With an effectively unbounded window every co-blocked pair is
        // compared exactly once, so duplicates are unique by construction —
        // and the run found each true pair at most once.
        let mut d = r.duplicates.clone();
        d.dedup();
        assert_eq!(d.len(), r.duplicates.len());
        let events = r.counters.get("duplicates_found");
        assert_eq!(events as usize, r.duplicates.len());
    }
}
