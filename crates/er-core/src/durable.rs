//! Durable job execution: journal every lifecycle event, checkpoint on a
//! fixed virtual-cost grid, and resume or reprocess in a *fresh process*.
//!
//! The in-process crash/resume of [`crate::checkpoint`] proves the
//! determinism story; this module turns it into the operational model of a
//! real MapReduce deployment. [`run_durable`] drives the pipeline in
//! *stages*: statistics job, schedule generation, then the resolution job
//! executed as a chain of `run-to-crash` steps on a `checkpoint_every`
//! virtual-cost grid, each cutting a [`Checkpoint`] that is appended to the
//! job's [`pper_journal`] log and then *re-read from the journal by byte
//! offset* before the next stage — the journal record, not process memory,
//! is the checkpoint of record. Every task completion (with its attempt
//! history) and every attempt-budget exhaustion is journaled through the
//! runtime's [`TaskObserver`] hook.
//!
//! [`resume_durable`] reconstructs the run in a fresh process from nothing
//! but the journal (plus the dataset file named in the `JobStarted`
//! parameters): it folds the event stream with [`JournalState`], picks up
//! from the latest checkpoint offset (or re-runs the deterministic early
//! stages if the kill landed before the first cut), and continues the grid
//! to the bit-identical final result — same duplicates, curve, timeline,
//! and total virtual cost as the uninterrupted run.
//!
//! Tasks that exhaust their attempt budget are captured into the journal's
//! dead-letter queue with full failure history and a JSON reprocessing
//! context; [`reprocess_dlq`] drains them back into the attempt loop.

use std::sync::Arc;

use parking_lot::Mutex;
use pper_datagen::Dataset;
use pper_journal::{
    read_event_at, recover, AttemptFailure, JobJournal, JournalError, JournalEvent, JournalState,
    JournalStore, TaskClass,
};
use pper_mapreduce::{Counters, MrError, TaskEvent, TaskKind, TaskObserver};
use serde::{Deserialize, Serialize};

use crate::checkpoint::Checkpoint;
use crate::job1::run_job1;
use crate::job2::{run_job2_resume, run_job2_resume_to_crash, run_job2_to_crash};
use crate::pipeline::{ErRunResult, ProgressiveEr};

/// Knobs for a durable run.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Virtual-cost spacing of the checkpoint grid: the resolution job is
    /// crashed-and-checkpointed at `every`, `2·every`, ... until every
    /// scheduled block is done.
    pub checkpoint_every: f64,
    /// Conformance-harness hook: abort the process (as if `kill -9`) right
    /// after the N-th journal event is durably appended. `None` disables.
    pub kill_after_events: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            checkpoint_every: 2_000.0,
            kill_after_events: None,
        }
    }
}

/// Everything a durable run can fail with.
#[derive(Debug)]
pub enum DurableError {
    /// Reading or writing the journal failed.
    Journal(JournalError),
    /// The pipeline itself failed (non-task-exhaustion errors).
    Run(MrError),
    /// One or more tasks exhausted their attempt budget; they were captured
    /// into the journal's dead-letter queue for later reprocessing.
    DeadLettered {
        /// The job whose journal holds the captures.
        job_id: String,
        /// Rendered ids of the captured tasks (e.g. `"reduce-0"`).
        tasks: Vec<String>,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Journal(e) => write!(f, "durable run journal error: {e}"),
            DurableError::Run(e) => write!(f, "durable run failed: {e}"),
            DurableError::DeadLettered { job_id, tasks } => write!(
                f,
                "job '{job_id}': {} task(s) exhausted their attempt budget and were \
                 dead-lettered ({}); reprocess with `pper dlq --reprocess`",
                tasks.len(),
                tasks.join(", ")
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<JournalError> for DurableError {
    fn from(e: JournalError) -> Self {
        DurableError::Journal(e)
    }
}

impl From<MrError> for DurableError {
    fn from(e: MrError) -> Self {
        DurableError::Run(e)
    }
}

/// Bit-exact summary of an [`ErRunResult`] for cross-process comparison:
/// every float is carried as its IEEE-754 bit pattern, so two processes
/// agreeing on the fingerprint agree on duplicates, timeline, curve, and
/// total virtual cost down to the last bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultFingerprint {
    /// All duplicate pairs, normalized and sorted.
    pub duplicates: Vec<(u32, u32)>,
    /// Timeline of found duplicates as `(cost bits, a, b)`.
    pub found_events: Vec<(u64, u32, u32)>,
    /// `total_cost.to_bits()`.
    pub total_cost_bits: u64,
    /// `precision.to_bits()`.
    pub precision_bits: u64,
    /// `curve.final_recall().to_bits()`.
    pub final_recall_bits: u64,
    /// Number of points on the recall curve.
    pub curve_len: u64,
}

impl ResultFingerprint {
    /// Fingerprint a run result.
    pub fn of(result: &ErRunResult) -> Self {
        Self {
            duplicates: result.duplicates.clone(),
            found_events: result
                .found_events
                .iter()
                .map(|&(cost, a, b)| (cost.to_bits(), a, b))
                .collect(),
            total_cost_bits: result.total_cost.to_bits(),
            precision_bits: result.precision.to_bits(),
            final_recall_bits: result.curve.final_recall().to_bits(),
            curve_len: result.curve.len() as u64,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, MrError> {
        serde_json::to_string(self).map_err(|e| MrError::Internal(format!("fingerprint: {e}")))
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, MrError> {
        serde_json::from_str(json).map_err(|e| MrError::Internal(format!("fingerprint: {e}")))
    }
}

/// A task captured by the observer when it exhausted its attempt budget,
/// pending dead-letter capture.
struct ExhaustedTask {
    job: String,
    kind: TaskClass,
    index: u32,
    attempts: u32,
    failures: Vec<AttemptFailure>,
}

/// State shared between the durable driver and the observer closure.
struct Shared {
    journal: Mutex<JobJournal>,
    /// First journal I/O error hit inside the observer (the observer
    /// cannot return errors through the runtime, so it parks them here).
    io_error: Mutex<Option<JournalError>>,
    /// Exhausted tasks seen by the observer, drained on stage failure.
    exhausted: Mutex<Vec<ExhaustedTask>>,
    /// Next dead-letter sequence number.
    next_dlq_seq: Mutex<u32>,
}

impl Shared {
    fn new(journal: JobJournal, next_dlq_seq: u32) -> Arc<Self> {
        Arc::new(Self {
            journal: Mutex::new(journal),
            io_error: Mutex::new(None),
            exhausted: Mutex::new(Vec::new()),
            next_dlq_seq: Mutex::new(next_dlq_seq),
        })
    }

    /// Append one event, surfacing any parked observer I/O error first.
    fn append(&self, event: &JournalEvent) -> Result<u64, DurableError> {
        if let Some(e) = self.io_error.lock().take() {
            return Err(DurableError::Journal(e));
        }
        self.journal
            .lock()
            .append(event)
            .map_err(DurableError::Journal)
    }
}

fn class_of(kind: TaskKind) -> TaskClass {
    match kind {
        TaskKind::Map => TaskClass::Map,
        TaskKind::Reduce => TaskClass::Reduce,
    }
}

fn convert_failures(failures: &[pper_mapreduce::AttemptRecord]) -> Vec<AttemptFailure> {
    failures
        .iter()
        .map(|f| AttemptFailure {
            attempt: f.attempt,
            wasted_cost: f.wasted_cost,
            error: f.error.clone(),
        })
        .collect()
}

/// Build the [`TaskObserver`] that journals task lifecycle events.
fn make_observer(shared: &Arc<Shared>) -> TaskObserver {
    let shared = Arc::clone(shared);
    TaskObserver::new(move |ev| {
        let event = match ev {
            TaskEvent::Finished {
                job,
                id,
                attempts,
                failures,
                cost,
                wasted,
            } => JournalEvent::TaskFinished {
                job: (*job).to_string(),
                kind: class_of(id.kind),
                index: id.index as u32,
                attempts: *attempts,
                cost: *cost,
                wasted: *wasted,
                failures: convert_failures(failures),
            },
            TaskEvent::Exhausted {
                job,
                id,
                attempts,
                failures,
            } => {
                let conv = convert_failures(failures);
                shared.exhausted.lock().push(ExhaustedTask {
                    job: (*job).to_string(),
                    kind: class_of(id.kind),
                    index: id.index as u32,
                    attempts: *attempts,
                    failures: conv.clone(),
                });
                JournalEvent::TaskExhausted {
                    job: (*job).to_string(),
                    kind: class_of(id.kind),
                    index: id.index as u32,
                    attempts: *attempts,
                    failures: conv,
                }
            }
        };
        if let Err(e) = shared.journal.lock().append(&event) {
            let mut slot = shared.io_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    })
}

/// Finish a pipeline stage: surface parked journal errors, and on task
/// exhaustion capture the observed tasks into the dead-letter queue with a
/// JSON reprocessing context before failing.
fn finish_stage<T>(
    shared: &Shared,
    job_id: &str,
    ds: &Dataset,
    stage: &str,
    crash_at: Option<f64>,
    checkpoint_offset: Option<u64>,
    result: Result<T, MrError>,
) -> Result<T, DurableError> {
    if let Some(e) = shared.io_error.lock().take() {
        return Err(DurableError::Journal(e));
    }
    match result {
        Ok(v) => {
            // A successful stage leaves no exhausted tasks behind (a job
            // with one would have errored); clear defensively anyway.
            shared.exhausted.lock().clear();
            Ok(v)
        }
        Err(err) => {
            let captured: Vec<ExhaustedTask> = std::mem::take(&mut *shared.exhausted.lock());
            if captured.is_empty() {
                return Err(DurableError::Run(err));
            }
            let mut task_names = Vec::with_capacity(captured.len());
            for ex in captured {
                let seq = {
                    let mut s = shared.next_dlq_seq.lock();
                    let seq = *s;
                    *s += 1;
                    seq
                };
                task_names.push(format!("{}-{}", ex.kind.name(), ex.index));
                let context_json = format!(
                    "{{\"stage\":\"{stage}\",\"dataset\":\"{}\",\"task\":\"{}-{}\",\
                     \"crash_at\":{},\"checkpoint_offset\":{}}}",
                    ds.name,
                    ex.kind.name(),
                    ex.index,
                    crash_at.map_or_else(|| "null".to_string(), |c| format!("{c}")),
                    checkpoint_offset.map_or_else(|| "null".to_string(), |o| o.to_string()),
                );
                shared.append(&JournalEvent::DeadLettered {
                    seq,
                    job: ex.job,
                    kind: ex.kind,
                    index: ex.index,
                    attempts: ex.attempts,
                    failures: ex.failures,
                    context_json,
                })?;
            }
            Err(DurableError::DeadLettered {
                job_id: job_id.to_string(),
                tasks: task_names,
            })
        }
    }
}

/// Drive the staged pipeline to completion, journaling as it goes.
///
/// `resume_from` carries the journal offset and decoded checkpoint to pick
/// up from; `None` starts from the statistics job. The `er` passed here
/// must already have the journaling observer installed.
#[allow(clippy::too_many_arguments)]
fn drive(
    er: &ProgressiveEr,
    ds: &Dataset,
    store: &Arc<dyn JournalStore>,
    job_id: &str,
    shared: &Arc<Shared>,
    every: f64,
    resume_from: Option<(u64, Checkpoint)>,
) -> Result<ErRunResult, DurableError> {
    let config = &er.config;
    let (job1_counters, mut cp, mut cp_offset) = match resume_from {
        Some((offset, cp)) => (Counters::new(), cp, offset),
        None => {
            // ---- Stage: statistics job --------------------------------
            let job1 = finish_stage(
                shared,
                job_id,
                ds,
                "job1-blocking",
                None,
                None,
                run_job1(ds, config),
            )?;
            shared.append(&JournalEvent::Job1Finished {
                virtual_cost: job1.virtual_cost,
            })?;

            // ---- Stage: schedule generation ---------------------------
            let schedule = er.generate_schedule(ds, &job1.stats);
            let total_blocks: u64 = schedule.block_order.iter().map(|b| b.len() as u64).sum();
            shared.append(&JournalEvent::ScheduleGenerated {
                num_tasks: schedule.num_tasks as u32,
                total_blocks,
            })?;

            // ---- Stage: first crash-and-checkpoint step ---------------
            let schedule = Arc::new(schedule);
            let tasks = finish_stage(
                shared,
                job_id,
                ds,
                "job2-crash",
                Some(every),
                None,
                run_job2_to_crash(ds, config, Arc::clone(&schedule), every),
            )?;
            let cp = Checkpoint {
                schedule: Arc::try_unwrap(schedule).unwrap_or_else(|s| (*s).clone()),
                job1_cost: job1.virtual_cost,
                crash_at: every,
                machines: config.machines,
                tasks,
            };
            let offset = shared.append(&JournalEvent::CheckpointCut {
                checkpoint_json: cp.to_json()?,
            })?;
            (job1.counters, cp, offset)
        }
    };

    // ---- Staged resume-and-checkpoint loop ---------------------------
    while cp.blocks_remaining() > 0 {
        // The journal record — not the in-memory value — is the checkpoint
        // of record: dereference the offset and continue from what a fresh
        // process would see.
        let reloaded = match read_event_at(store, job_id, cp_offset)? {
            JournalEvent::CheckpointCut { checkpoint_json } => {
                Checkpoint::from_json(&checkpoint_json)?
            }
            other => {
                return Err(DurableError::Journal(JournalError::BadState(format!(
                    "offset {cp_offset} holds a {} event, expected checkpoint-cut",
                    other.name()
                ))));
            }
        };
        let crash_at = reloaded.crash_at + every;
        let tasks = finish_stage(
            shared,
            job_id,
            ds,
            "job2-resume-crash",
            Some(crash_at),
            Some(cp_offset),
            run_job2_resume_to_crash(ds, config, &reloaded, crash_at),
        )?;
        cp = Checkpoint {
            schedule: reloaded.schedule,
            job1_cost: reloaded.job1_cost,
            crash_at,
            machines: config.machines,
            tasks,
        };
        cp_offset = shared.append(&JournalEvent::CheckpointCut {
            checkpoint_json: cp.to_json()?,
        })?;
    }

    // ---- Final stage: replay the completed checkpoint into the result -
    let job2 = finish_stage(
        shared,
        job_id,
        ds,
        "job2-final",
        None,
        Some(cp_offset),
        run_job2_resume(ds, config, &cp),
    )?;
    let result = er.assemble(ds, job2, cp.job1_cost, job1_counters);

    let mut entries: Vec<(String, u64)> = result
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    entries.sort();
    shared.append(&JournalEvent::CountersSnapshot { entries })?;
    shared.append(&JournalEvent::JobFinished {
        duplicates: result.duplicates.len() as u64,
        total_cost: result.total_cost,
    })?;
    Ok(result)
}

fn check_every(every: f64) -> Result<(), DurableError> {
    if every.is_finite() && every > 0.0 {
        Ok(())
    } else {
        Err(DurableError::Run(MrError::Checkpoint(format!(
            "checkpoint_every must be finite and positive, got {every}"
        ))))
    }
}

/// Install the journaling observer on a copy of the pipeline.
fn with_observer(er: &ProgressiveEr, shared: &Arc<Shared>) -> ProgressiveEr {
    let mut er = er.clone();
    er.config.observer = Some(make_observer(shared));
    er
}

/// Run the pipeline durably: journal every lifecycle event to `store`
/// under `job_id`, checkpoint the resolution job on the
/// [`DurableOptions::checkpoint_every`] grid, and return the final result —
/// bit-identical (as a [`ResultFingerprint`]) to an uninterrupted
/// [`ProgressiveEr::try_run`].
///
/// `params` is recorded verbatim in the `JobStarted` event (plus a
/// `checkpoint_every` entry if absent), giving a fresh process everything
/// it needs to rebuild the configuration for [`resume_durable`].
///
/// Counters follow the crash/resume convention of
/// [`ProgressiveEr::resume`]: they count work the final stage actually
/// executed, not work replayed from checkpoints, so a staged run reports
/// far fewer comparisons than [`ProgressiveEr::try_run`] even though the
/// result fingerprint is bit-identical.
pub fn run_durable(
    er: &ProgressiveEr,
    ds: &Dataset,
    store: &Arc<dyn JournalStore>,
    job_id: &str,
    params: &[(String, String)],
    opts: &DurableOptions,
) -> Result<ErRunResult, DurableError> {
    check_every(opts.checkpoint_every)?;
    let mut journal = JobJournal::create(Arc::clone(store), job_id)?;
    journal.set_kill_after(opts.kill_after_events);
    let shared = Shared::new(journal, 0);
    let er = with_observer(er, &shared);

    let mut all_params: Vec<(String, String)> = params.to_vec();
    if !all_params.iter().any(|(k, _)| k == "checkpoint_every") {
        // Rust's float Display is shortest-round-trip, so the grid spacing
        // survives the string trip exactly.
        all_params.push((
            "checkpoint_every".into(),
            format!("{}", opts.checkpoint_every),
        ));
    }
    shared.append(&JournalEvent::JobStarted {
        job_id: job_id.to_string(),
        params: all_params,
    })?;
    drive(&er, ds, store, job_id, &shared, opts.checkpoint_every, None)
}

/// Recover a job's journal and fold it to the resume state, truncating any
/// torn tail so new records never land behind garbage.
fn recover_state(
    store: &Arc<dyn JournalStore>,
    job_id: &str,
) -> Result<JournalState, DurableError> {
    let rec = recover(store, job_id)?;
    if !rec.report.clean() {
        store.truncate_log(job_id, rec.report.valid_bytes)?;
    }
    Ok(JournalState::replay(&rec.events))
}

fn grid_spacing(state: &JournalState, opts: &DurableOptions) -> Result<f64, DurableError> {
    let every = match state.param("checkpoint_every") {
        Some(v) => v.parse::<f64>().map_err(|_| {
            DurableError::Journal(JournalError::BadState(format!(
                "journaled checkpoint_every '{v}' is not a number"
            )))
        })?,
        None => opts.checkpoint_every,
    };
    check_every(every)?;
    Ok(every)
}

/// Resume a durable job in a fresh process from nothing but its journal
/// (and the dataset): continue from the latest checkpoint offset, or — if
/// the kill landed before the first cut — re-run the deterministic early
/// stages. The final result is bit-identical to the uninterrupted run.
pub fn resume_durable(
    er: &ProgressiveEr,
    ds: &Dataset,
    store: &Arc<dyn JournalStore>,
    job_id: &str,
    opts: &DurableOptions,
) -> Result<ErRunResult, DurableError> {
    let state = recover_state(store, job_id)?;
    if state.job_id.is_none() {
        return Err(DurableError::Journal(JournalError::BadState(format!(
            "journal for '{job_id}' has no job-started record to resume from"
        ))));
    }
    let every = grid_spacing(&state, opts)?;
    let mut journal = JobJournal::create(Arc::clone(store), job_id)?;
    journal.set_kill_after(opts.kill_after_events);
    let shared = Shared::new(journal, state.next_dlq_seq);
    let er = with_observer(er, &shared);
    let resume_from = match &state.last_checkpoint {
        Some((offset, json)) => Some((*offset, Checkpoint::from_json(json)?)),
        None => None,
    };
    drive(&er, ds, store, job_id, &shared, every, resume_from)
}

/// Drain the job's dead-letter queue back into the attempt loop: append a
/// `DlqDrained` record per captured task, clear the fault injection from
/// the configuration, and re-drive the job to completion. With the fault
/// gone the result equals the fault-free run bit for bit.
pub fn reprocess_dlq(
    er: &ProgressiveEr,
    ds: &Dataset,
    store: &Arc<dyn JournalStore>,
    job_id: &str,
    opts: &DurableOptions,
) -> Result<ErRunResult, DurableError> {
    let state = recover_state(store, job_id)?;
    if state.job_id.is_none() {
        return Err(DurableError::Journal(JournalError::BadState(format!(
            "journal for '{job_id}' has no job-started record"
        ))));
    }
    if state.dlq.is_empty() {
        return Err(DurableError::Journal(JournalError::BadState(format!(
            "job '{job_id}' has no dead-lettered tasks to reprocess"
        ))));
    }
    let every = grid_spacing(&state, opts)?;
    let mut journal = JobJournal::create(Arc::clone(store), job_id)?;
    journal.set_kill_after(opts.kill_after_events);
    let shared = Shared::new(journal, state.next_dlq_seq);
    let mut er = with_observer(er, &shared);
    // The captured tasks re-enter the attempt loop without the fault that
    // killed them (the operational fix a DLQ exists for).
    er.config.faults = None;
    for entry in &state.dlq {
        shared.append(&JournalEvent::DlqDrained { seq: entry.seq })?;
    }
    let resume_from = match &state.last_checkpoint {
        Some((offset, json)) => Some((*offset, Checkpoint::from_json(json)?)),
        None => None,
    };
    drive(&er, ds, store, job_id, &shared, every, resume_from)
}
