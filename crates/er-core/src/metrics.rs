//! Quality metrics: duplicate recall curves, the `Qty` measure (Eq. 1), and
//! recall speedup (§VI-B4).

use pper_mapreduce::ProgressEvent;
use serde::{Deserialize, Serialize};

use crate::EVENT_DUPLICATE;

/// Cumulative duplicate recall as a function of (virtual) resolution cost.
///
/// `PartialEq` compares breakpoints exactly (bitwise on costs) — used by the
/// checkpoint/resume tests to prove a resumed run reproduces the
/// uninterrupted curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecallCurve {
    /// `(cost, cumulative correct duplicates)` breakpoints, ascending cost.
    points: Vec<(f64, u64)>,
    /// Ground-truth duplicate pair count `N` (Eq. 1's normalizer).
    total_truth: u64,
}

impl RecallCurve {
    /// Build from a job timeline: every [`EVENT_DUPLICATE`] event counts one
    /// found pair at its cost.
    pub fn from_timeline(timeline: &[ProgressEvent], total_truth: u64) -> Self {
        Self::from_timeline_where(timeline, total_truth, |_| true)
    }

    /// Build from a timeline counting only the [`EVENT_DUPLICATE`] events
    /// whose packed pair payload satisfies `keep` — used to count *correct*
    /// duplicates against ground truth (see [`crate::pack_pair`]).
    pub fn from_timeline_where(
        timeline: &[ProgressEvent],
        total_truth: u64,
        keep: impl Fn(u64) -> bool,
    ) -> Self {
        let mut points = Vec::new();
        let mut cum = 0u64;
        for e in timeline {
            if e.kind == EVENT_DUPLICATE && keep(e.value) {
                cum += 1;
                points.push((e.cost, cum));
            }
        }
        Self {
            points,
            total_truth,
        }
    }

    /// Build directly from `(cost, found)` increments (already ascending).
    pub fn from_increments(increments: &[(f64, u64)], total_truth: u64) -> Self {
        let mut points = Vec::new();
        let mut cum = 0;
        for &(cost, n) in increments {
            cum += n;
            points.push((cost, cum));
        }
        Self {
            points,
            total_truth,
        }
    }

    /// Ground-truth duplicate pair count.
    pub fn total_truth(&self) -> u64 {
        self.total_truth
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no duplicates were ever found.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Correct duplicates found by `cost`.
    pub fn found_at(&self, cost: f64) -> u64 {
        match self.points.binary_search_by(|p| p.0.total_cmp(&cost)) {
            Ok(mut i) => {
                // Step to the last point with the same cost.
                while i + 1 < self.points.len() && self.points[i + 1].0 <= cost {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Recall at `cost`.
    pub fn recall_at(&self, cost: f64) -> f64 {
        if self.total_truth == 0 {
            return 0.0;
        }
        self.found_at(cost) as f64 / self.total_truth as f64
    }

    /// Final recall (at infinite cost).
    pub fn final_recall(&self) -> f64 {
        if self.total_truth == 0 {
            return 0.0;
        }
        self.points.last().map_or(0, |p| p.1) as f64 / self.total_truth as f64
    }

    /// Earliest cost at which `recall` is reached, if ever.
    pub fn time_to_recall(&self, recall: f64) -> Option<f64> {
        if self.total_truth == 0 {
            return None;
        }
        let needed = (recall * self.total_truth as f64).ceil() as u64;
        self.points
            .iter()
            .find(|&&(_, cum)| cum >= needed)
            .map(|&(cost, _)| cost)
    }

    /// Cost of the last breakpoint (time of the final duplicate).
    pub fn last_cost(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.0)
    }

    /// Sample the recall at evenly spaced costs up to `max_cost` — the
    /// series the paper's figures plot.
    pub fn sample(&self, max_cost: f64, steps: usize) -> Vec<(f64, f64)> {
        (1..=steps)
            .map(|i| {
                let c = max_cost * i as f64 / steps as f64;
                (c, self.recall_at(c))
            })
            .collect()
    }
}

/// The `Qty` quality measure (Eq. 1): weighted, normalized count of correct
/// duplicates found per sampled cost interval.
///
/// `cost_vector` is `C = {c₁ < c₂ < …}`; `weights[i]` is `W(c_{i+1})` and
/// must be non-increasing in `[0, 1]`.
///
/// # Panics
/// Panics if the vectors differ in length, are empty, are not sorted, or
/// weights increase.
pub fn quality(curve: &RecallCurve, cost_vector: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(cost_vector.len(), weights.len(), "|C| must match |W|");
    assert!(!cost_vector.is_empty(), "need at least one sampled cost");
    assert!(
        cost_vector.windows(2).all(|w| w[0] < w[1]),
        "cost vector must be ascending"
    );
    assert!(
        weights.windows(2).all(|w| w[0] >= w[1]),
        "weights must be non-increasing"
    );
    assert!(
        weights.iter().all(|&w| (0.0..=1.0).contains(&w)),
        "weights must lie in [0,1]"
    );
    if curve.total_truth == 0 {
        return 0.0;
    }
    let mut q = 0.0;
    let mut prev_cost = 0.0;
    for (&c, &w) in cost_vector.iter().zip(weights) {
        let found_in_interval = curve.found_at(c) - curve.found_at(prev_cost);
        q += w * found_in_interval as f64;
        prev_cost = c;
    }
    q / curve.total_truth as f64
}

/// Recall speedup of `fast` relative to `base` at a recall level (§VI-B4):
/// `time_base(recall) / time_fast(recall)`. `None` if either curve never
/// reaches the recall.
pub fn speedup_at(base: &RecallCurve, fast: &RecallCurve, recall: f64) -> Option<f64> {
    let tb = base.time_to_recall(recall)?;
    let tf = fast.time_to_recall(recall)?;
    (tf > 0.0).then(|| tb / tf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> RecallCurve {
        // 10 true pairs; found at costs 1,2,3 (2 each), then 4 more at 10.
        RecallCurve::from_increments(&[(1.0, 2), (2.0, 2), (3.0, 2), (10.0, 4)], 10)
    }

    #[test]
    fn found_and_recall_lookup() {
        let c = curve();
        assert_eq!(c.found_at(0.5), 0);
        assert_eq!(c.found_at(1.0), 2);
        assert_eq!(c.found_at(2.5), 4);
        assert_eq!(c.found_at(100.0), 10);
        assert!((c.recall_at(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(c.final_recall(), 1.0);
    }

    #[test]
    fn time_to_recall_finds_breakpoints() {
        let c = curve();
        assert_eq!(c.time_to_recall(0.2), Some(1.0));
        assert_eq!(c.time_to_recall(0.6), Some(3.0));
        assert_eq!(c.time_to_recall(1.0), Some(10.0));
        let partial = RecallCurve::from_increments(&[(1.0, 1)], 10);
        assert_eq!(partial.time_to_recall(0.5), None);
    }

    #[test]
    fn duplicate_costs_collapse_to_last() {
        let c = RecallCurve::from_increments(&[(1.0, 1), (1.0, 2), (2.0, 1)], 4);
        assert_eq!(c.found_at(1.0), 3);
    }

    #[test]
    fn quality_weights_early_intervals() {
        let c = curve();
        // Everything found late scores poorly under decaying weights.
        let early_heavy = quality(&c, &[2.0, 5.0, 20.0], &[1.0, 0.5, 0.1]);
        // 4 pairs by c=2 (w 1.0), 2 in (2,5] (w .5), 4 in (5,20] (w .1):
        // (4·1 + 2·.5 + 4·.1)/10 = 0.54.
        assert!((early_heavy - 0.54).abs() < 1e-12);
        let uniform = quality(&c, &[2.0, 5.0, 20.0], &[1.0, 1.0, 1.0]);
        assert!((uniform - 1.0).abs() < 1e-12);
        assert!(early_heavy < uniform);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn quality_rejects_increasing_weights() {
        let _ = quality(&curve(), &[1.0, 2.0], &[0.5, 1.0]);
    }

    #[test]
    fn speedup_basic() {
        let slow = RecallCurve::from_increments(&[(10.0, 5), (20.0, 5)], 10);
        let fast = RecallCurve::from_increments(&[(2.0, 5), (4.0, 5)], 10);
        assert_eq!(speedup_at(&slow, &fast, 0.5), Some(5.0));
        assert_eq!(speedup_at(&slow, &fast, 1.0), Some(5.0));
        let never = RecallCurve::from_increments(&[(1.0, 1)], 10);
        assert_eq!(speedup_at(&slow, &never, 0.5), None);
    }

    #[test]
    fn sample_is_monotone() {
        let c = curve();
        let s = c.sample(12.0, 6);
        assert_eq!(s.len(), 6);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_truth_is_zero_not_nan() {
        let c = RecallCurve::from_increments(&[], 0);
        assert_eq!(c.recall_at(10.0), 0.0);
        assert_eq!(c.final_recall(), 0.0);
        assert_eq!(c.time_to_recall(0.5), None);
    }

    #[test]
    fn from_timeline_filters_kinds_and_predicate() {
        use pper_mapreduce::ProgressEvent;
        let timeline = vec![
            ProgressEvent {
                cost: 1.0,
                kind: crate::EVENT_DUPLICATE,
                value: 7,
            },
            ProgressEvent {
                cost: 2.0,
                kind: crate::EVENT_SEGMENT,
                value: 99,
            },
            ProgressEvent {
                cost: 3.0,
                kind: crate::EVENT_DUPLICATE,
                value: 8,
            },
        ];
        let c = RecallCurve::from_timeline(&timeline, 3);
        assert_eq!(c.found_at(10.0), 2);
        assert_eq!(c.len(), 2);
        let odd_only = RecallCurve::from_timeline_where(&timeline, 3, |v| v % 2 == 1);
        assert_eq!(odd_only.found_at(10.0), 1);
    }
}
