//! The first MR job (§III-B): progressive blocking + statistics gathering.
//!
//! * **Map** — determine each entity's blocking key values (the annotated
//!   entity `e*`) and emit one record per main blocking function, keyed by
//!   `(family, root key)`.
//! * **Reduce** — called per root block: materialize the block's tree by
//!   applying the family's sub-blocking functions, and compute the per-node
//!   statistics (sizes, child keys, overlap information for the
//!   covered-pair computation of §IV-A).
//!
//! The map output doubles as the "annotated dataset": signatures are cheap
//! to recompute from attribute values, so the second job re-derives them
//! instead of materializing an intermediate file (a pure representation
//! choice — the information content matches the paper's annotated dataset).

use std::collections::HashMap;

use pper_blocking::{BlockingFamily, DatasetStats, Signature, Tree, TreeStats};
use pper_datagen::{Dataset, Entity, EntityId};
use pper_mapreduce::prelude::*;

use crate::config::ErConfig;

/// Intermediate key of job 1: `(family, root key)`. The family index plays
/// the paper's "function ID in the key" role, keeping same-valued keys of
/// different functions apart.
pub type BlockKey = (u8, String);

/// [`Entity`] wrapped for the spilling shuffle path. Both `Entity` and
/// `SpillCodec` are foreign to this crate, so the orphan rule requires a
/// local newtype to give the map-output value a binary encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillEntity(pub Entity);

impl SpillCodec for SpillEntity {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.0.id.encode(buf);
        self.0.attrs.encode(buf);
    }
    fn decode(buf: &mut bytes::Bytes) -> Result<Self, MrError> {
        let id = EntityId::decode(buf)?;
        let attrs = Vec::<String>::decode(buf)?;
        Ok(SpillEntity(Entity::new(id, attrs)))
    }
}

struct AnnotateMapper<'a> {
    families: &'a [BlockingFamily],
}

/// Shared map logic: emit one `(family, root key)` record per main blocking
/// function. `wrap` adapts the emitted value for the in-memory (`Entity`)
/// and spilling (`SpillEntity`) shuffles without duplicating the charges.
fn annotate<V>(
    families: &[BlockingFamily],
    entity: &Entity,
    ctx: &mut TaskContext,
    out: &mut Emitter<BlockKey, V>,
    wrap: impl Fn(Entity) -> V,
) {
    for (f, family) in families.iter().enumerate() {
        // Key extraction is a char-scan: charge it like an entity read.
        ctx.charge(ctx.cost_model.read_per_entity * 0.25);
        out.emit((f as u8, family.root_key(entity)), wrap(entity.clone()));
    }
    ctx.counters.incr("job1_entities_annotated");
}

impl Mapper for AnnotateMapper<'_> {
    type Input = Entity;
    type Key = BlockKey;
    type Value = Entity;

    fn map(&self, entity: &Entity, ctx: &mut TaskContext, out: &mut Emitter<BlockKey, Entity>) {
        annotate(self.families, entity, ctx, out, |e| e);
    }
}

struct AnnotateSpillMapper<'a> {
    families: &'a [BlockingFamily],
}

impl Mapper for AnnotateSpillMapper<'_> {
    type Input = Entity;
    type Key = BlockKey;
    type Value = SpillEntity;

    fn map(
        &self,
        entity: &Entity,
        ctx: &mut TaskContext,
        out: &mut Emitter<BlockKey, SpillEntity>,
    ) {
        annotate(self.families, entity, ctx, out, SpillEntity);
    }
}

struct StatsReducer<'a> {
    families: &'a [BlockingFamily],
}

/// Shared reduce logic for one root block, generic over how the values are
/// borrowed so the in-memory (`&[Entity]`) and spilling (`&[SpillEntity]`)
/// paths produce identical trees, statistics, charges, and counters.
fn reduce_root_block<'v>(
    families: &[BlockingFamily],
    key: &BlockKey,
    values: impl ExactSizeIterator<Item = &'v Entity>,
    ctx: &mut TaskContext,
    out: &mut Vec<TreeStats>,
) {
    if values.len() < 2 {
        ctx.counters.incr("job1_singleton_blocks_dropped");
        return;
    }
    let family_index = key.0 as usize;
    let family = &families[family_index];

    let n = values.len();
    let mut entities: HashMap<EntityId, &Entity> = HashMap::with_capacity(n);
    let mut signatures: HashMap<EntityId, Signature> = HashMap::with_capacity(n);
    let mut members = Vec::with_capacity(n);
    for e in values {
        members.push(e.id);
        signatures.insert(e.id, families.iter().map(|f| f.root_key(e)).collect());
        entities.insert(e.id, e);
    }

    // Tree construction: one key extraction per member per level.
    ctx.charge(ctx.cost_model.read_per_entity * (members.len() * family.depth()) as f64);
    let tree = Tree::build(family_index, family, key.1.clone(), members, &entities);

    // Overlap statistics: signature grouping per block per subset —
    // charge one pass per block.
    let stat_cost: f64 = tree
        .blocks
        .iter()
        .map(|b| ctx.cost_model.read_per_entity * b.size() as f64)
        .sum();
    ctx.charge(stat_cost);

    let stats = TreeStats::from_tree(&tree, &signatures);
    ctx.counters.incr("job1_trees_built");
    ctx.counters.add("job1_blocks", tree.len() as u64);
    out.push(stats);
}

impl Reducer for StatsReducer<'_> {
    type Key = BlockKey;
    type Value = Entity;
    type Output = TreeStats;

    fn reduce(
        &self,
        key: &BlockKey,
        values: &[Entity],
        ctx: &mut TaskContext,
        out: &mut Vec<TreeStats>,
    ) {
        reduce_root_block(self.families, key, values.iter(), ctx, out);
    }
}

struct StatsSpillReducer<'a> {
    families: &'a [BlockingFamily],
}

impl Reducer for StatsSpillReducer<'_> {
    type Key = BlockKey;
    type Value = SpillEntity;
    type Output = TreeStats;

    fn reduce(
        &self,
        key: &BlockKey,
        values: &[SpillEntity],
        ctx: &mut TaskContext,
        out: &mut Vec<TreeStats>,
    ) {
        reduce_root_block(self.families, key, values.iter().map(|s| &s.0), ctx, out);
    }
}

/// Result of the first job.
#[derive(Debug)]
pub struct Job1Result {
    /// Per-tree statistics across all families.
    pub stats: DatasetStats,
    /// Virtual completion time of the job on the simulated cluster.
    pub virtual_cost: f64,
    /// Merged counters.
    pub counters: Counters,
}

/// Run the first job on the simulated cluster.
pub fn run_job1(ds: &Dataset, config: &ErConfig) -> Result<Job1Result, MrError> {
    let mut cfg = JobConfig::new("pper-job1-blocking", config.cluster());
    cfg.cost_model = config.cost_model.clone();
    cfg.worker_threads = config.worker_threads;
    cfg.shuffle_balance = config.shuffle_balance;
    cfg.speculation = config.speculation;
    cfg.observer = config.observer.clone();
    cfg.executor = config.executor;

    // The spilling path re-routes oversized shuffle partitions through a
    // disk-backed external sort; the grouped output is bit-identical to the
    // in-memory tag sort (see `pper_mapreduce::shuffle`), so both branches
    // feed the same reduce logic and yield the same trees and costs.
    let result = if let Some(spill) = &config.shuffle_spill {
        let mapper = AnnotateSpillMapper {
            families: &config.families,
        };
        let reducer = GroupReducer::new(StatsSpillReducer {
            families: &config.families,
        });
        run_job_spilling(&cfg, &mapper, &reducer, spill, &ds.entities)?
    } else {
        let mapper = AnnotateMapper {
            families: &config.families,
        };
        let reducer = GroupReducer::new(StatsReducer {
            families: &config.families,
        });
        run_job(&cfg, &mapper, &reducer, &ds.entities)?
    };

    let mut trees = result.outputs;
    // Deterministic order regardless of reduce partitioning.
    trees.sort_by(|a, b| a.family.cmp(&b.family).then(a.root_key.cmp(&b.root_key)));
    Ok(Job1Result {
        stats: DatasetStats {
            num_entities: ds.len(),
            trees,
        },
        virtual_cost: result.total_virtual_cost,
        counters: result.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pper_blocking::{build_forests, presets};
    use pper_datagen::{toy_people, PubGen};

    #[test]
    fn job1_matches_local_forest_construction() {
        let ds = PubGen::new(1_500, 61).generate();
        let config = ErConfig::citeseer(2);
        let job = run_job1(&ds, &config).unwrap();

        let forests = build_forests(&ds, &config.families);
        let local = DatasetStats::from_forests(&ds, &config.families, &forests);

        assert_eq!(job.stats.trees.len(), local.trees.len());
        for (a, b) in job.stats.trees.iter().zip(&local.trees) {
            assert_eq!(a.family, b.family);
            assert_eq!(a.root_key, b.root_key);
            assert_eq!(a.nodes, b.nodes, "tree {}/{}", a.family, a.root_key);
        }
    }

    #[test]
    fn job1_toy_dataset() {
        let ds = toy_people();
        let mut config = ErConfig::citeseer(1);
        config.families = presets::toy_families();
        let job = run_job1(&ds, &config).unwrap();
        // X-forest: "jo" and "ch"; Y-forest: "az", "hi", "la".
        assert_eq!(job.stats.trees.len(), 5);
        assert!(job.virtual_cost > 0.0);
        assert_eq!(job.counters.get("job1_entities_annotated"), 9);
        assert!(job.counters.get("job1_singleton_blocks_dropped") >= 3);
    }

    #[test]
    fn job1_spilled_shuffle_matches_in_memory() {
        let ds = PubGen::new(900, 63).generate();
        let baseline = run_job1(&ds, &ErConfig::citeseer(3)).unwrap();
        // Budget of 40 records per partition forces nearly every partition
        // of a 900×3-record shuffle to spill; run at several worker-thread
        // counts to cover the parallel spill dispatch too.
        for threads in [1usize, 2, 8] {
            let mut config = ErConfig::citeseer(3).with_shuffle_spill(ShuffleSpillConfig::new(40));
            config.worker_threads = Some(threads);
            let spilled = run_job1(&ds, &config).unwrap();
            assert_eq!(
                spilled.stats.trees, baseline.stats.trees,
                "threads={threads}"
            );
            assert_eq!(
                spilled.virtual_cost.to_bits(),
                baseline.virtual_cost.to_bits(),
                "threads={threads}"
            );
            assert!(
                spilled.counters.get("shuffle_spilled_partitions") > 0,
                "threads={threads}: spill never engaged"
            );
            assert!(spilled.counters.get("shuffle_spill_bytes") > 0);
        }
        assert_eq!(baseline.counters.get("shuffle_spilled_partitions"), 0);
    }

    #[test]
    fn spill_entity_round_trips() {
        let e = Entity::new(7, vec!["Title".into(), String::new(), "ünïcode ✓".into()]);
        let mut buf = bytes::BytesMut::new();
        SpillEntity(e.clone()).encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(SpillEntity::decode(&mut bytes).unwrap().0, e);
    }

    #[test]
    fn job1_deterministic_across_cluster_sizes() {
        let ds = PubGen::new(800, 62).generate();
        let a = run_job1(&ds, &ErConfig::citeseer(1)).unwrap();
        let b = run_job1(&ds, &ErConfig::citeseer(7)).unwrap();
        assert_eq!(a.stats.trees.len(), b.stats.trees.len());
        for (x, y) in a.stats.trees.iter().zip(&b.stats.trees) {
            assert_eq!(x, y);
        }
    }
}
