//! Budget-constrained resolution.
//!
//! The paper's extended report describes configuring the approach "to
//! optimize for the case where the goal is to generate the highest possible
//! quality result given a resolution cost budget" (footnote 6). Two pieces
//! implement that here:
//!
//! 1. the schedule's cost vector is laid over the budget
//!    ([`pper_schedule::CostVectorSpec::BudgetPerTask`]), so bucket balancing
//!    and the weighting function optimize exactly the within-budget
//!    interval — work past the budget collapses into the last bucket and
//!    can be weighted down hard;
//! 2. the run is *truncated* at the budget: progressive ER's premature-
//!    termination guarantee means the result at budget `B` is whatever
//!    incremental segments completed by `B` — [`run_with_budget`] reports
//!    both the truncated view and (for calibration) the run's full curve.

use pper_datagen::Dataset;
use pper_mapreduce::MrError;
use pper_schedule::CostVectorSpec;

use crate::config::ErConfig;
use crate::pipeline::{ErRunResult, ProgressiveEr};

/// What a budget-capped run delivered.
#[derive(Debug)]
pub struct BudgetReport {
    /// The cost budget the run was optimized for and truncated at.
    pub budget: f64,
    /// Correct-duplicate recall delivered within the budget.
    pub recall_at_budget: f64,
    /// Duplicate pairs discovered within the budget (correct and not).
    pub delivered: Vec<(u32, u32)>,
    /// Fraction of the budget consumed by preprocessing (job 1 + schedule
    /// generation + routing) rather than resolution.
    pub overhead_fraction: f64,
    /// The complete underlying run (curve beyond the budget included), for
    /// calibration plots.
    pub full_run: ErRunResult,
}

/// Run the pipeline optimized for, and truncated at, a total virtual-cost
/// budget.
///
/// The budget is a *cluster* budget in the same units as
/// [`ErRunResult::total_cost`]; the per-task share handed to the scheduler
/// divides it by the reduce task count.
pub fn run_with_budget(
    config: &ErConfig,
    ds: &Dataset,
    budget: f64,
) -> Result<BudgetReport, MrError> {
    assert!(budget > 0.0, "budget must be positive");
    let mut config = config.clone();
    let per_task = budget / config.reduce_tasks() as f64;
    config.schedule.cost_vector = CostVectorSpec::BudgetPerTask(per_task);
    // With a budget, result mass past the horizon is worthless: use a
    // weighting that de-emphasizes late buckets hard.
    config.schedule.weighting = pper_schedule::Weighting::Exponential { decay: 0.7 };

    let full_run = ProgressiveEr::new(config).try_run(ds)?;

    let recall_at_budget = full_run.curve.recall_at(budget);
    let delivered = duplicates_within(&full_run, budget);
    Ok(BudgetReport {
        budget,
        recall_at_budget,
        overhead_fraction: (full_run.overhead_cost / budget).min(1.0),
        delivered,
        full_run,
    })
}

/// Duplicates found at or before `budget` on the run's global timeline.
fn duplicates_within(run: &ErRunResult, budget: f64) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = run
        .found_events
        .iter()
        .filter(|&&(cost, _, _)| cost <= budget)
        .map(|&(_, a, b)| (a.min(b), a.max(b)))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pper_datagen::PubGen;

    #[test]
    fn budget_truncates_and_reports() {
        let ds = PubGen::new(2_000, 111).generate();
        let config = ErConfig::citeseer(2);
        // First measure an unconstrained run to pick a mid-run budget.
        let full = ProgressiveEr::new(config.clone()).run(&ds);
        let budget = full.total_cost * 0.5;

        let report = run_with_budget(&config, &ds, budget).unwrap();
        assert!(report.recall_at_budget > 0.0);
        assert!(report.recall_at_budget <= report.full_run.curve.final_recall());
        assert!(report.overhead_fraction > 0.0 && report.overhead_fraction <= 1.0);
        // Delivered pairs are a subset of the full run's duplicates and at
        // least as many as the correct pairs counted by the curve.
        assert!(report
            .delivered
            .iter()
            .all(|p| report.full_run.duplicates.contains(p)));
        assert!(report.delivered.len() as u64 >= report.full_run.curve.found_at(budget));
    }

    #[test]
    fn larger_budget_never_hurts() {
        let ds = PubGen::new(1_500, 112).generate();
        let config = ErConfig::citeseer(2);
        let full = ProgressiveEr::new(config.clone()).run(&ds);
        let small = run_with_budget(&config, &ds, full.total_cost * 0.3).unwrap();
        let large = run_with_budget(&config, &ds, full.total_cost * 0.9).unwrap();
        assert!(large.recall_at_budget >= small.recall_at_budget);
    }

    #[test]
    fn budget_dominated_by_overhead_yields_nothing() {
        let ds = PubGen::new(1_500, 113).generate();
        let config = ErConfig::citeseer(2);
        let full = ProgressiveEr::new(config.clone()).run(&ds);
        // A budget below the preprocessing cost cannot deliver results.
        let report = run_with_budget(&config, &ds, full.overhead_cost * 0.5).unwrap();
        assert_eq!(report.recall_at_budget, 0.0);
        assert!(report.delivered.is_empty());
        assert_eq!(report.overhead_fraction, 1.0);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn rejects_nonpositive_budget() {
        let ds = PubGen::new(100, 114).generate();
        let _ = run_with_budget(&ErConfig::citeseer(1), &ds, 0.0);
    }
}
