//! Pipeline configuration.

use pper_blocking::{presets, BlockingFamily};
use pper_datagen::Dataset;
use pper_mapreduce::{ClusterSpec, CostModel};
use pper_progressive::{LevelPolicy, Mechanism, PairSource};
use pper_schedule::{
    DupProbability, HeuristicProb, ScheduleConfig, TrainedProb, TreeScheduler, Weighting,
};
use pper_simil::{AttributeSim, MatchRule, WeightedAttr};

/// Which progressive mechanism `M` resolves the blocks (§VI-A3: SN-with-hint
/// for CiteSeerX, PSNM for OL-Books).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismKind {
    /// Sorted Neighbor with the sorted-list hint of ref. [5].
    Sn,
    /// Progressive Sorted Neighborhood Method of ref. [6].
    Psnm,
    /// The hierarchical-partitioning hint of ref. [5] as a mechanism
    /// (§III-A's closing remark).
    Hierarchy,
}

/// Runtime-dispatched pair source over the two mechanisms.
pub enum AnyRun {
    /// An [`pper_progressive::sn::SnRun`].
    Sn(pper_progressive::sn::SnRun),
    /// A [`pper_progressive::psnm::PsnmRun`].
    Psnm(pper_progressive::psnm::PsnmRun),
    /// A [`pper_progressive::hierarchy::HierarchyRun`].
    Hierarchy(pper_progressive::hierarchy::HierarchyRun),
}

impl PairSource for AnyRun {
    fn next_pair(&mut self) -> Option<(u32, u32)> {
        match self {
            AnyRun::Sn(r) => r.next_pair(),
            AnyRun::Psnm(r) => r.next_pair(),
            AnyRun::Hierarchy(r) => r.next_pair(),
        }
    }
    fn feedback(&mut self, is_duplicate: bool) {
        match self {
            AnyRun::Sn(r) => r.feedback(is_duplicate),
            AnyRun::Psnm(r) => r.feedback(is_duplicate),
            AnyRun::Hierarchy(r) => r.feedback(is_duplicate),
        }
    }
    fn remaining_hint(&self) -> u64 {
        match self {
            AnyRun::Sn(r) => r.remaining_hint(),
            AnyRun::Psnm(r) => r.remaining_hint(),
            AnyRun::Hierarchy(r) => r.remaining_hint(),
        }
    }
}

impl MechanismKind {
    /// Start the configured mechanism on a sorted block.
    pub fn start(&self, sorted: Vec<u32>, window: usize) -> AnyRun {
        match self {
            MechanismKind::Sn => AnyRun::Sn(pper_progressive::SnHint.start(sorted, window)),
            MechanismKind::Psnm => {
                AnyRun::Psnm(pper_progressive::Psnm::default().start(sorted, window))
            }
            MechanismKind::Hierarchy => {
                AnyRun::Hierarchy(pper_progressive::HierarchyHint::default().start(sorted, window))
            }
        }
    }

    /// Mechanism name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MechanismKind::Sn => "sn-hint",
            MechanismKind::Psnm => "psnm",
            MechanismKind::Hierarchy => "hierarchy-hint",
        }
    }
}

/// Duplicate-probability model selection (§VI-A4).
#[derive(Debug, Clone)]
pub enum ProbModelKind {
    /// Closed-form heuristic; no training data needed.
    Heuristic(HeuristicProb),
    /// Model trained from a labeled dataset.
    Trained(TrainedProb),
}

impl ProbModelKind {
    /// Train from a dataset under the given blocking configuration.
    pub fn train(train: &Dataset, families: &[BlockingFamily]) -> Self {
        ProbModelKind::Trained(TrainedProb::train(train, families))
    }

    /// View as the estimation trait object.
    pub fn as_model(&self) -> &dyn DupProbability {
        match self {
            ProbModelKind::Heuristic(h) => h,
            ProbModelKind::Trained(t) => t,
        }
    }
}

/// Full configuration of the progressive pipeline.
#[derive(Clone)]
pub struct ErConfig {
    /// Blocking families in dominance order (`X¹ ⊵ Y¹ ⊵ Z¹`).
    pub families: Vec<BlockingFamily>,
    /// The resolve/match function.
    pub rule: MatchRule,
    /// Window/Frac/Th policy per level.
    pub policy: LevelPolicy,
    /// Simulated cluster size μ (2 map + 2 reduce slots per machine).
    pub machines: usize,
    /// Cost calibration.
    pub cost_model: CostModel,
    /// Scheduler selection and knobs (reduce task count is overridden from
    /// `machines`).
    pub schedule: ScheduleConfig,
    /// Progressive mechanism.
    pub mechanism: MechanismKind,
    /// Duplicate-probability model.
    pub prob: ProbModelKind,
    /// Incremental output granularity α (cost units between result files).
    pub alpha: f64,
    /// OS threads for executing simulated tasks (`None` = all cores).
    pub worker_threads: Option<usize>,
    /// Task-failure injection applied to the resolution (second) job.
    pub faults: Option<pper_mapreduce::FaultPlan>,
    /// Speculative execution (LATE-style backup attempts for straggler
    /// tasks) for both jobs. `None` disables speculation, like
    /// `mapred.map.tasks.speculative.execution=false`.
    pub speculation: Option<pper_mapreduce::SpeculationConfig>,
    /// Opt-in skew-aware shuffle balancing for the hash-partitioned jobs
    /// (Basic's single job, the pipeline's statistics job). `None` keeps
    /// Hadoop's default hash routing; `Some(ShuffleBalance::Pairs)` places
    /// blocking keys on reduce tasks by pair workload instead (see
    /// `pper_mapreduce::loadbalance`). The scheduled resolution job is
    /// unaffected — its range partitioner already encodes a placement.
    pub shuffle_balance: Option<pper_mapreduce::ShuffleBalance>,
    /// Resolve pairs through the prepared-signature fast path
    /// (`pper_simil::prepared`): entities are prepared once per reduce task
    /// and compared with zero per-pair allocation and threshold-aware early
    /// exit. Decisions are identical to the string path (see the parity
    /// contract in `pper_simil::prepared`); `false` forces the original
    /// string path, kept for A/B regression tests.
    pub use_prepared: bool,
    /// Task lifecycle observer threaded into every MR job this config
    /// launches (statistics, resolution, and Basic). The durable runner
    /// (`crate::durable`) uses it to journal task completions, attempt
    /// histories, and exhaustion for the dead-letter queue. `None` (the
    /// default) observes nothing and costs nothing.
    pub observer: Option<pper_mapreduce::TaskObserver>,
    /// Executor backend dispatching simulated tasks onto worker threads in
    /// every MR job this config launches. Wall-clock scheduling only —
    /// results are bit-identical across backends (see
    /// `pper_mapreduce::exec`).
    pub executor: pper_mapreduce::ExecutorKind,
    /// Memory budget for the statistics job's shuffle. `None` (the default)
    /// groups every partition in memory; `Some(cfg)` spills partitions
    /// larger than `cfg.max_partition_records` through an external sorter
    /// with bounded RAM (see `pper_mapreduce::ShuffleSpillConfig`). The
    /// grouped output — and therefore every downstream statistic — is
    /// bit-identical either way; only the working set changes.
    pub shuffle_spill: Option<pper_mapreduce::ShuffleSpillConfig>,
}

impl std::fmt::Debug for ErConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErConfig")
            .field("families", &self.families.len())
            .field("machines", &self.machines)
            .field("mechanism", &self.mechanism.name())
            .field("scheduler", &self.schedule.scheduler)
            .finish_non_exhaustive()
    }
}

impl ErConfig {
    /// The paper's CiteSeerX setup on μ machines: Table II blocking,
    /// edit-distance weighted rule over title/abstract/venue (abstract
    /// capped at 350 chars), SN mechanism, CiteSeerX level policy.
    pub fn citeseer(machines: usize) -> Self {
        let rule = MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.55, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(
                    1,
                    0.25,
                    AttributeSim::Levenshtein {
                        max_chars: Some(350),
                    },
                ),
                WeightedAttr::new(2, 0.20, AttributeSim::Levenshtein { max_chars: None }),
            ],
            0.82,
        );
        Self {
            families: presets::citeseer_families(),
            rule,
            policy: LevelPolicy::citeseer(),
            machines,
            cost_model: CostModel::default(),
            schedule: ScheduleConfig::new(machines * 2),
            mechanism: MechanismKind::Sn,
            prob: ProbModelKind::Heuristic(HeuristicProb::default()),
            alpha: 2_000.0,
            worker_threads: None,
            faults: None,
            speculation: None,
            shuffle_balance: None,
            use_prepared: true,
            observer: None,
            executor: pper_mapreduce::ExecutorKind::default(),
            shuffle_spill: None,
        }
    }

    /// The paper's OL-Books setup on μ machines: 8-attribute rule (edit
    /// distance on the texty attributes, exact elsewhere), PSNM mechanism,
    /// OL-Books level policy.
    pub fn books(machines: usize) -> Self {
        let rule = MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.35, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(1, 0.20, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(2, 0.10, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(3, 0.05, AttributeSim::Exact),
                WeightedAttr::new(4, 0.15, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(5, 0.05, AttributeSim::Exact),
                WeightedAttr::new(6, 0.05, AttributeSim::Exact),
                WeightedAttr::new(7, 0.05, AttributeSim::Exact),
            ],
            0.80,
        );
        Self {
            families: presets::books_families(),
            rule,
            policy: LevelPolicy::books(),
            machines,
            cost_model: CostModel::default(),
            schedule: ScheduleConfig::new(machines * 2),
            mechanism: MechanismKind::Psnm,
            prob: ProbModelKind::Heuristic(HeuristicProb::default()),
            alpha: 2_000.0,
            worker_threads: None,
            faults: None,
            speculation: None,
            shuffle_balance: None,
            use_prepared: true,
            observer: None,
            executor: pper_mapreduce::ExecutorKind::default(),
            shuffle_spill: None,
        }
    }

    /// Replace the tree scheduler (for the §VI-B2 comparison).
    pub fn with_scheduler(mut self, scheduler: TreeScheduler) -> Self {
        self.schedule.scheduler = scheduler;
        self
    }

    /// Replace the weighting function.
    pub fn with_weighting(mut self, weighting: Weighting) -> Self {
        self.schedule.weighting = weighting;
        self
    }

    /// Enable skew-aware shuffle balancing on the hash-partitioned jobs.
    pub fn with_shuffle_balance(mut self, balance: pper_mapreduce::ShuffleBalance) -> Self {
        self.shuffle_balance = Some(balance);
        self
    }

    /// Enable LATE-style speculative execution for straggler tasks.
    pub fn with_speculation(mut self, spec: pper_mapreduce::SpeculationConfig) -> Self {
        self.speculation = Some(spec);
        self
    }

    /// Bound the statistics job's shuffle memory: partitions above the
    /// configured record budget group through a disk-backed external sort.
    pub fn with_shuffle_spill(mut self, spill: pper_mapreduce::ShuffleSpillConfig) -> Self {
        self.shuffle_spill = Some(spill);
        self
    }

    /// Select the executor backend for every MR job this config launches.
    pub fn with_executor(mut self, executor: pper_mapreduce::ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Force the original string-path pair resolution (disable the prepared
    /// fast path). Used by regression tests to A/B the two paths.
    pub fn with_string_path(mut self) -> Self {
        self.use_prepared = false;
        self
    }

    /// Set the machine count, keeping reduce tasks = 2·μ.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self.schedule.reduce_tasks = machines * 2;
        self
    }

    /// The simulated cluster (paper config: 2+2 slots per machine).
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::paper(self.machines)
    }

    /// Number of reduce tasks `r`.
    pub fn reduce_tasks(&self) -> usize {
        self.cluster().reduce_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let c = ErConfig::citeseer(10);
        assert_eq!(c.reduce_tasks(), 20);
        assert_eq!(c.families.len(), 3);
        assert_eq!(c.mechanism.name(), "sn-hint");
        let b = ErConfig::books(5);
        assert_eq!(b.mechanism.name(), "psnm");
        assert_eq!(b.rule.attrs.len(), 8);
    }

    #[test]
    fn with_machines_updates_reduce_tasks() {
        let c = ErConfig::citeseer(10).with_machines(25);
        assert_eq!(c.machines, 25);
        assert_eq!(c.schedule.reduce_tasks, 50);
    }

    #[test]
    fn mechanism_dispatch_yields_pairs() {
        for kind in [
            MechanismKind::Sn,
            MechanismKind::Psnm,
            MechanismKind::Hierarchy,
        ] {
            let mut run = kind.start(vec![0, 1, 2], 2);
            let mut pairs = Vec::new();
            while let Some(p) = run.next_pair() {
                run.feedback(false);
                pairs.push(p);
            }
            assert_eq!(pairs.len(), 3, "{}", kind.name());
        }
    }
}
