//! Cross-backend fingerprint parity for the full ER pipeline.
//!
//! The executor backend (`pper_mapreduce::ExecutorKind`) decides only which
//! OS thread runs which simulated task; every virtual-time observable of an
//! ER run — the duplicate stream, recall curve, counters, total cost — must
//! be bit-identical across backends and thread counts. These tests sweep
//! the progressive pipeline, the basic approach, and the durable runner
//! (including a kill-point journal prefix resumed under a *different*
//! backend) over the cursor, chunked, and work-stealing executors at 1/2/8
//! worker threads.

use std::sync::Arc;

use pper_datagen::PubGen;
use pper_er::prelude::*;
use pper_journal::{recover, JournalStore, MemStore};
use pper_mapreduce::{ExecutorKind, FaultPlan, ShuffleSpillConfig};

const BACKENDS: &[ExecutorKind] = &[
    ExecutorKind::Cursor,
    ExecutorKind::Chunked(1),
    ExecutorKind::WorkStealing,
];

const THREADS: &[usize] = &[1, 2, 8];

fn dataset() -> pper_datagen::Dataset {
    PubGen::new(1_200, 417).generate()
}

fn config(backend: ExecutorKind, threads: usize) -> ErConfig {
    let mut config = ErConfig::citeseer(2).with_executor(backend);
    config.worker_threads = Some(threads);
    config
}

#[test]
fn pipeline_fingerprint_identical_across_backends() {
    let ds = dataset();
    let golden = ResultFingerprint::of(
        &ProgressiveEr::new(config(ExecutorKind::Cursor, 1))
            .try_run(&ds)
            .unwrap(),
    );
    for &backend in BACKENDS {
        for &threads in THREADS {
            let run = ProgressiveEr::new(config(backend, threads))
                .try_run(&ds)
                .unwrap();
            assert_eq!(
                ResultFingerprint::of(&run),
                golden,
                "backend={} threads={threads}",
                backend.name()
            );
        }
    }
}

#[test]
fn basic_fingerprint_identical_across_backends() {
    let ds = dataset();
    let run = |backend, threads| {
        BasicApproach::new(config(backend, threads), BasicConfig::popcorn(15, 0.01))
            .run(&ds)
            .unwrap()
    };
    let golden = ResultFingerprint::of(&run(ExecutorKind::Cursor, 1));
    for &backend in BACKENDS {
        for &threads in THREADS {
            assert_eq!(
                ResultFingerprint::of(&run(backend, threads)),
                golden,
                "backend={} threads={threads}",
                backend.name()
            );
        }
    }
}

#[test]
fn faulted_and_spilling_pipeline_identical_across_backends() {
    let ds = dataset();
    let clean_golden = ResultFingerprint::of(
        &ProgressiveEr::new(config(ExecutorKind::Cursor, 1))
            .try_run(&ds)
            .unwrap(),
    );
    // A retried reduce task wastes virtual time on its own clock, so
    // faulted runs have their own golden — identical across backends, but
    // deliberately not compared against the clean one.
    let faulted_run = |backend| {
        let mut config = config(backend, 8);
        config.faults = Some(FaultPlan::fail_reduce(0, 2));
        let run = ProgressiveEr::new(config).try_run(&ds).unwrap();
        assert!(run.counters.get("task_retries") >= 2);
        ResultFingerprint::of(&run)
    };
    let faulted_golden = faulted_run(ExecutorKind::Cursor);
    for &backend in BACKENDS {
        assert_eq!(
            faulted_run(backend),
            faulted_golden,
            "faulted backend={}",
            backend.name()
        );

        // Spilling only trades memory for disk: its virtual time is
        // bit-identical to the in-memory shuffle, under every backend.
        let spilling = config(backend, 8).with_shuffle_spill(ShuffleSpillConfig::new(50));
        let run = ProgressiveEr::new(spilling).try_run(&ds).unwrap();
        assert!(run.counters.get("shuffle_spilled_partitions") > 0);
        assert_eq!(
            ResultFingerprint::of(&run),
            clean_golden,
            "spilling backend={}",
            backend.name()
        );
    }
}

#[test]
fn durable_run_and_cross_backend_resume_identical() {
    let ds = dataset();
    let opts = DurableOptions {
        checkpoint_every: 1_500.0,
        kill_after_events: None,
    };
    let golden = ResultFingerprint::of(
        &ProgressiveEr::new(config(ExecutorKind::Cursor, 1))
            .try_run(&ds)
            .unwrap(),
    );

    for &backend in BACKENDS {
        let er = ProgressiveEr::new(config(backend, 2));
        let store = MemStore::shared();
        let result = run_durable(&er, &ds, &store, "job-exec", &[], &opts).unwrap();
        assert_eq!(
            ResultFingerprint::of(&result),
            golden,
            "durable backend={}",
            backend.name()
        );
    }

    // Truncate a finished cursor-backend journal to a mid-run prefix —
    // exactly the bytes a kill -9 would have left — then resume it under
    // the work-stealing backend at a different thread count: the journal
    // replays task-by-task, so the backend of the resuming process must
    // not matter.
    let store = MemStore::shared();
    let er = ProgressiveEr::new(config(ExecutorKind::Cursor, 2));
    run_durable(&er, &ds, &store, "job-exec-kill", &[], &opts).unwrap();
    let rec = recover(&store, "job-exec-kill").unwrap();
    assert!(rec.report.clean());
    let bytes = store.read("job-exec-kill").unwrap();
    let cut = rec.events[rec.events.len() / 2].0 as usize;

    let replay: Arc<dyn JournalStore> = MemStore::shared();
    replay.append("job-exec-kill", &bytes[..cut]).unwrap();
    let thief = ProgressiveEr::new(config(ExecutorKind::WorkStealing, 8));
    let resumed = resume_durable(&thief, &ds, &replay, "job-exec-kill", &opts).unwrap();
    assert_eq!(ResultFingerprint::of(&resumed), golden);
}
