//! The progressive-resume contract (ISSUE 3 acceptance criterion): a run of
//! the resolution job killed mid-resolution and resumed from its checkpoint
//! must yield the bit-identical final duplicate set and recall curve of an
//! uninterrupted run — at every kill point, including kills that land in
//! the middle of a block (rolled back to the last block boundary) and kills
//! before/after all resolution work.

use pper_datagen::PubGen;
use pper_er::checkpoint::Checkpoint;
use pper_er::{ErConfig, ErRunResult, ProgressiveEr};

fn assert_same_run(resumed: &ErRunResult, clean: &ErRunResult, what: &str) {
    assert_eq!(
        resumed.duplicates, clean.duplicates,
        "{what}: duplicate sets must be identical"
    );
    assert_eq!(
        resumed.curve, clean.curve,
        "{what}: recall curves must be bit-identical"
    );
    assert_eq!(
        resumed.found_events.len(),
        clean.found_events.len(),
        "{what}: discovery timelines must have equal length"
    );
    for (r, c) in resumed.found_events.iter().zip(&clean.found_events) {
        assert_eq!(
            (r.0.to_bits(), r.1, r.2),
            (c.0.to_bits(), c.1, c.2),
            "{what}: discovery events must be identical"
        );
    }
    assert_eq!(
        resumed.total_cost.to_bits(),
        clean.total_cost.to_bits(),
        "{what}: total virtual cost must be bit-identical ({} vs {})",
        resumed.total_cost,
        clean.total_cost
    );
    assert_eq!(
        resumed.precision.to_bits(),
        clean.precision.to_bits(),
        "{what}: precision must be bit-identical"
    );
}

#[test]
fn crash_and_resume_is_bit_identical_at_every_kill_point() {
    let ds = PubGen::new(1_500, 733).generate();
    let er = ProgressiveEr::new(ErConfig::citeseer(2));
    let clean = er.run(&ds);
    assert!(
        !clean.duplicates.is_empty(),
        "clean run must find duplicates for the test to mean anything"
    );

    // Sweep kill thresholds across the task-local reduce clock. Odd
    // fractional values make mid-block kills (exercising the partial-block
    // rollback) overwhelmingly likely.
    let mut saw_mid_flight = false;
    for crash_at in [333.3, 777.7, 1_555.5, 3_111.1, 6_222.2, 12_444.4] {
        let cp = er.run_to_crash(&ds, crash_at).unwrap();
        if cp.blocks_done() > 0 && cp.blocks_remaining() > 0 {
            saw_mid_flight = true;
        }
        let resumed = er.resume(&ds, &cp).unwrap();
        assert_same_run(&resumed, &clean, &format!("crash_at={crash_at}"));
    }
    assert!(
        saw_mid_flight,
        "at least one kill point must land genuinely mid-resolution"
    );
}

#[test]
fn checkpoint_survives_json_persistence() {
    let ds = PubGen::new(1_200, 734).generate();
    let er = ProgressiveEr::new(ErConfig::citeseer(2));
    let clean = er.run(&ds);

    let cp = er.run_to_crash(&ds, 2_000.0).unwrap();
    let json = cp.to_json().unwrap();
    let restored = Checkpoint::from_json(&json).unwrap();
    assert_eq!(restored.tasks.len(), cp.tasks.len());
    assert_eq!(restored.duplicates_found(), cp.duplicates_found());
    assert_eq!(restored.job1_cost.to_bits(), cp.job1_cost.to_bits());

    let resumed = er.resume(&ds, &restored).unwrap();
    assert_same_run(&resumed, &clean, "resume from persisted JSON");
}

#[test]
fn resume_counters_account_for_replayed_work() {
    let ds = PubGen::new(1_200, 735).generate();
    let er = ProgressiveEr::new(ErConfig::citeseer(2));
    let clean = er.run(&ds);

    let cp = er.run_to_crash(&ds, 2_500.0).unwrap();
    let resumed = er.resume(&ds, &cp).unwrap();

    // Every checkpointed duplicate is replayed, and every checkpointed
    // block is skipped rather than re-resolved.
    assert_eq!(
        resumed.counters.get("resume_replayed_duplicates"),
        cp.duplicates_found() as u64
    );
    assert_eq!(
        resumed.counters.get("job2_blocks_skipped_resumed"),
        cp.blocks_done() as u64
    );
    // The duplicate-event invariant holds across replay + live discovery.
    assert_eq!(
        resumed.counters.get("duplicates_found"),
        clean.counters.get("duplicates_found")
    );
    // Resumed comparisons are only the remaining blocks' share.
    assert!(
        resumed.counters.get("pairs_compared") <= clean.counters.get("pairs_compared"),
        "resume must not compare more pairs than the uninterrupted run"
    );
}

#[test]
fn extreme_kill_points_still_round_trip() {
    let ds = PubGen::new(1_000, 736).generate();
    let er = ProgressiveEr::new(ErConfig::citeseer(2));
    let clean = er.run(&ds);

    // Killed before any block completed: the checkpoint is empty and
    // resume re-runs everything.
    let early = er.run_to_crash(&ds, 0.0).unwrap();
    assert_eq!(early.blocks_done(), 0);
    assert_eq!(early.duplicates_found(), 0);
    assert_same_run(&er.resume(&ds, &early).unwrap(), &clean, "crash_at=0");

    // Killed after all blocks completed: the checkpoint holds the full
    // run and resume only replays it.
    let late = er.run_to_crash(&ds, 1e15).unwrap();
    assert_eq!(late.blocks_remaining(), 0);
    let resumed = er.resume(&ds, &late).unwrap();
    assert_same_run(&resumed, &clean, "crash_at=max");
    assert_eq!(
        resumed.counters.get("resume_replayed_duplicates"),
        late.duplicates_found() as u64
    );
}

#[test]
fn invalid_checkpoints_and_thresholds_are_rejected() {
    let ds = PubGen::new(800, 737).generate();
    let er = ProgressiveEr::new(ErConfig::citeseer(2));

    assert!(er.run_to_crash(&ds, f64::NAN).is_err());
    assert!(er.run_to_crash(&ds, -1.0).is_err());

    let cp = er.run_to_crash(&ds, 1_000.0).unwrap();

    // Machine-count mismatch: the wave layout would differ.
    let other = ProgressiveEr::new(ErConfig::citeseer(3));
    assert!(other.resume(&ds, &cp).is_err());

    // Corrupted watermark.
    let mut bad = cp.clone();
    bad.tasks[0].blocks_done = usize::MAX;
    assert!(er.resume(&ds, &bad).is_err());

    // Task entries out of order.
    let mut swapped = cp.clone();
    swapped.tasks.swap(0, 1);
    assert!(er.resume(&ds, &swapped).is_err());
}
