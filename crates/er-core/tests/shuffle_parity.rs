//! Virtual-time parity regression for the shuffle layer.
//!
//! The shuffle is pure plumbing: however records are gathered, sorted,
//! grouped, or balanced, the *virtual-time* results of a job — duplicates,
//! recall curve, counters, total cost — must be bit-identical. These tests
//! pin the quick CiteSeerX-shaped configuration to fingerprints captured
//! from the original driver-thread nested-`Vec` shuffle, across worker
//! thread counts and with shuffle-balance and fault plans enabled, so any
//! shuffle rewrite that shifts a single bit of virtual time fails here.

use pper_datagen::PubGen;
use pper_er::prelude::*;
use pper_mapreduce::prelude::*;

/// Order-sensitive FNV-1a over the duplicate pairs.
fn hash_pairs(pairs: &[(u32, u32)]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u32| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for &(a, b) in pairs {
        mix(a);
        mix(b);
    }
    h
}

/// Everything the parity contract covers, collapsed to exact integers.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    duplicates: usize,
    dup_hash: u64,
    total_cost_bits: u64,
    final_recall_bits: u64,
    curve_len: usize,
    pairs_compared: u64,
    duplicates_found: u64,
}

fn fingerprint(r: &ErRunResult) -> Fingerprint {
    Fingerprint {
        duplicates: r.duplicates.len(),
        dup_hash: hash_pairs(&r.duplicates),
        total_cost_bits: r.total_cost.to_bits(),
        final_recall_bits: r.curve.final_recall().to_bits(),
        curve_len: r.curve.len(),
        pairs_compared: r.counters.get("pairs_compared"),
        duplicates_found: r.counters.get("duplicates_found"),
    }
}

fn quick_dataset() -> pper_datagen::Dataset {
    PubGen::new(1_500, 4242).generate()
}

fn pipeline_run(threads: usize, faults: Option<FaultPlan>) -> ErRunResult {
    let mut config = ErConfig::citeseer(2);
    config.worker_threads = Some(threads);
    config.faults = faults;
    ProgressiveEr::new(config).run(&quick_dataset())
}

fn basic_run(
    threads: usize,
    balance: Option<ShuffleBalance>,
    faults: Option<FaultPlan>,
) -> ErRunResult {
    let mut config = ErConfig::citeseer(2);
    config.worker_threads = Some(threads);
    config.shuffle_balance = balance;
    config.faults = faults;
    BasicApproach::new(config, BasicConfig::popcorn(15, 0.01))
        .run(&quick_dataset())
        .unwrap()
}

/// Golden fingerprints captured from the pre-rewrite shuffle (driver-thread
/// nested-Vec gather/sort/group) on the quick CiteSeerX config. The shuffle
/// implementation may change; these numbers may not.
const GOLDEN_PIPELINE: Fingerprint = Fingerprint {
    duplicates: 983,
    dup_hash: 3116250115301211597,
    total_cost_bits: 4670706234760973053,
    final_recall_bits: 4606656136084941545,
    curve_len: 983,
    pairs_compared: 50528,
    duplicates_found: 983,
};

const GOLDEN_BASIC: Fingerprint = Fingerprint {
    duplicates: 882,
    dup_hash: 8954180582413152973,
    total_cost_bits: 4663414531338078116,
    final_recall_bits: 4605784749950143806,
    curve_len: 882,
    pairs_compared: 17160,
    duplicates_found: 882,
};

#[test]
#[ignore = "golden capture helper: prints fingerprints to embed above"]
fn print_golden_fingerprints() {
    println!("pipeline t1: {:?}", fingerprint(&pipeline_run(1, None)));
    println!("basic t1:    {:?}", fingerprint(&basic_run(1, None, None)));
}

#[test]
fn pipeline_parity_across_worker_threads() {
    for threads in [1usize, 2, 8] {
        let fp = fingerprint(&pipeline_run(threads, None));
        assert_eq!(fp, GOLDEN_PIPELINE, "worker_threads={threads}");
    }
}

#[test]
fn pipeline_parity_with_fault_plan() {
    // A retried reduce task wastes virtual time on its own clock but must
    // not change what the job produces.
    let clean = pipeline_run(1, None);
    let faulty = pipeline_run(8, Some(FaultPlan::fail_reduce(0, 2)));
    assert_eq!(clean.duplicates, faulty.duplicates);
    assert_eq!(
        clean.counters.get("pairs_compared"),
        faulty.counters.get("pairs_compared")
    );
    assert!(faulty.counters.get("task_retries") >= 2);
}

#[test]
fn basic_parity_across_worker_threads() {
    for threads in [1usize, 2, 8] {
        let fp = fingerprint(&basic_run(threads, None, None));
        assert_eq!(fp, GOLDEN_BASIC, "worker_threads={threads}");
    }
}

#[test]
fn basic_balanced_shuffle_keeps_duplicates_and_counters() {
    // LPT whole-key balancing moves keys between reduce tasks, so per-task
    // costs shift; the duplicate set and global work counters must not.
    let plain = basic_run(1, None, None);
    for threads in [1usize, 8] {
        let balanced = basic_run(threads, Some(ShuffleBalance::Pairs), None);
        assert_eq!(plain.duplicates, balanced.duplicates, "threads={threads}");
        assert_eq!(
            plain.counters.get("pairs_compared"),
            balanced.counters.get("pairs_compared")
        );
        assert_eq!(
            plain.counters.get("duplicates_found"),
            balanced.counters.get("duplicates_found")
        );
    }
}

#[test]
fn basic_parity_with_fault_plan() {
    let clean = basic_run(1, None, None);
    let faulty = basic_run(8, None, Some(FaultPlan::fail_reduce(0, 2)));
    assert_eq!(clean.duplicates, faulty.duplicates);
    assert_eq!(
        clean.counters.get("duplicates_found"),
        faulty.counters.get("duplicates_found")
    );
    assert!(faulty.counters.get("task_retries") >= 2);
}
