//! Storage-fault conformance sweep: the full progressive pipeline, run
//! with its shuffle spilling to disk through a fault-injecting VFS, must
//! either recover to a **bit-identical** [`ResultFingerprint`] or fail
//! with a clean typed [`MrError::Io`] — never panic, never silently
//! produce different results.
//!
//! One scenario per fault site of the degradation ladder:
//!
//! | fault                         | expected recovery                      |
//! |-------------------------------|----------------------------------------|
//! | transient spill write (EINTR) | in-place retry, identical fingerprint  |
//! | short write (partial flush)   | cleanup + retry, identical fingerprint |
//! | ENOSPC, `Error` policy        | typed disk-full error, no panic        |
//! | ENOSPC, `InMemory` policy     | degraded partition, identical result   |
//! | corrupted spill run (CRC)     | quarantine + stage re-run, identical   |
//!
//! Every recovery scenario also asserts the injected fault actually fired
//! (`FaultVfs::faults_fired`), so a silently-skipped fault site cannot
//! masquerade as a passing conformance run.

use std::path::PathBuf;
use std::sync::Arc;

use pper_datagen::{Dataset, PubGen};
use pper_er::prelude::*;
use pper_mapreduce::{
    FaultKind, FaultVfs, IoFaultPlan, IoOp, MrError, ShuffleSpillConfig, SpillFullPolicy, Vfs,
};

fn dataset() -> Dataset {
    PubGen::new(900, 63).generate()
}

fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pper-io-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the pipeline with the given spill config (threshold low enough that
/// the big blocking-key partitions really spill).
fn run_with(spill: ShuffleSpillConfig) -> Result<ErRunResult, MrError> {
    let config = ErConfig::citeseer(2).with_shuffle_spill(spill);
    ProgressiveEr::new(config).try_run(&dataset())
}

/// Clean spilled baseline: the fingerprint every fault-recovery run must
/// reproduce bit-for-bit.
fn golden(tag: &str) -> ResultFingerprint {
    let result = run_with(ShuffleSpillConfig::new(40).with_dir(spill_dir(tag))).unwrap();
    assert!(
        result.counters.get("shuffle_spilled_partitions") > 0,
        "baseline must actually spill for the sweep to mean anything"
    );
    ResultFingerprint::of(&result)
}

/// A spill config writing through a `FaultVfs` armed with `plan`.
fn faulty_spill(tag: &str, plan: IoFaultPlan) -> (ShuffleSpillConfig, FaultVfs) {
    let fvfs = FaultVfs::new(plan).unwrap();
    let vfs: Arc<dyn Vfs> = Arc::new(fvfs.clone());
    let spill = ShuffleSpillConfig::new(40)
        .with_dir(spill_dir(tag))
        .with_vfs(vfs);
    (spill, fvfs)
}

#[test]
fn transient_spill_write_recovers_bit_identical() {
    let golden = golden("transient-base");
    let plan = IoFaultPlan::new().with_at(
        IoOp::Write,
        "pper-extsort",
        0,
        FaultKind::Transient { times: 2 },
    );
    let (spill, fvfs) = faulty_spill("transient", plan);
    let result = run_with(spill).unwrap();
    assert!(fvfs.faults_fired() >= 1, "injected fault never fired");
    assert!(
        result.counters.get("shuffle_spill_io_retries") > 0,
        "retry counter must record the recovery"
    );
    assert_eq!(ResultFingerprint::of(&result), golden);
}

#[test]
fn short_write_is_cleaned_up_and_recovers_bit_identical() {
    let golden = golden("short-base");
    let plan = IoFaultPlan::new().with_at(
        IoOp::Write,
        "pper-extsort",
        0,
        FaultKind::ShortWrite { keep: 7 },
    );
    let (spill, fvfs) = faulty_spill("short", plan);
    let result = run_with(spill).unwrap();
    assert!(fvfs.faults_fired() >= 1, "injected fault never fired");
    assert_eq!(ResultFingerprint::of(&result), golden);
}

#[test]
fn enospc_with_error_policy_is_a_typed_failure() {
    let plan = IoFaultPlan::new().with_at(IoOp::Write, "pper-extsort", 0, FaultKind::Enospc);
    let (spill, fvfs) = faulty_spill("enospc-err", plan);
    let err = run_with(spill).unwrap_err();
    assert!(fvfs.faults_fired() >= 1, "injected fault never fired");
    match err {
        MrError::Io(fault) => {
            assert!(fault.is_permanent(), "{fault}");
            assert!(fault.is_disk_full(), "{fault}");
        }
        other => panic!("expected typed storage fault, got {other}"),
    }
}

#[test]
fn enospc_with_in_memory_policy_degrades_bit_identical() {
    let golden = golden("enospc-base");
    let plan = IoFaultPlan::new().with_at(IoOp::Write, "pper-extsort", 0, FaultKind::Enospc);
    let (spill, fvfs) = faulty_spill("enospc-mem", plan);
    let spill = spill.with_full_policy(SpillFullPolicy::InMemory);
    let result = run_with(spill).unwrap();
    assert!(fvfs.faults_fired() >= 1, "injected fault never fired");
    assert!(
        result.counters.get("shuffle_spill_degraded_partitions") > 0,
        "degradation counter must record the fallback"
    );
    assert_eq!(ResultFingerprint::of(&result), golden);
}

#[test]
fn corrupt_spill_run_is_quarantined_and_rerun_bit_identical() {
    let golden = golden("corrupt-base");
    let plan = IoFaultPlan::new().with_at(IoOp::Read, "pper-extsort", 0, FaultKind::CorruptRead);
    let (spill, fvfs) = faulty_spill("corrupt", plan);
    let result = run_with(spill).unwrap();
    assert!(fvfs.faults_fired() >= 1, "injected fault never fired");
    assert!(
        result.counters.get("shuffle_spill_reruns") > 0,
        "re-run counter must record the recovery"
    );
    assert_eq!(ResultFingerprint::of(&result), golden);
}
