//! Durable runner conformance: journaled runs fingerprint-identical to
//! plain runs, an in-process kill-point sweep over journal prefixes, and
//! the dead-letter round trip.
//!
//! The *process-level* kill sweep (child `pper` processes aborted at every
//! event boundary) lives in the root package's `tests/resume_process.rs`;
//! here the same boundary sweep is driven in-process by replaying every
//! durable byte prefix of a finished journal into a fresh store — exactly
//! the bytes a `kill -9` after the N-th synced append would have left.

use std::sync::Arc;

use pper_datagen::PubGen;
use pper_er::prelude::*;
use pper_journal::{recover, JournalState, JournalStore, MemStore};
use pper_mapreduce::FaultPlan;

fn small_pipeline() -> ProgressiveEr {
    ProgressiveEr::new(ErConfig::citeseer(2))
}

fn dataset() -> pper_datagen::Dataset {
    PubGen::new(1_200, 417).generate()
}

fn opts(every: f64) -> DurableOptions {
    DurableOptions {
        checkpoint_every: every,
        kill_after_events: None,
    }
}

#[test]
fn durable_run_matches_plain_run() {
    let er = small_pipeline();
    let ds = dataset();
    let golden = ResultFingerprint::of(&er.try_run(&ds).unwrap());

    let store = MemStore::shared();
    let result = run_durable(&er, &ds, &store, "job-plain", &[], &opts(1_500.0)).unwrap();
    assert_eq!(ResultFingerprint::of(&result), golden);

    // The journal tells the whole story: started, finished, every task.
    let rec = recover(&store, "job-plain").unwrap();
    assert!(rec.report.clean());
    let state = JournalState::replay(&rec.events);
    assert_eq!(state.job_id.as_deref(), Some("job-plain"));
    assert_eq!(state.param("checkpoint_every"), Some("1500"));
    assert!(state.job1_cost.is_some());
    assert!(state.schedule.is_some());
    assert!(state.last_checkpoint.is_some());
    assert!(state.tasks_finished > 0);
    assert!(state.dlq.is_empty());
    let (dups, total_cost) = state.finished.expect("job-finished event");
    assert_eq!(dups, golden.duplicates.len() as u64);
    assert_eq!(total_cost.to_bits(), golden.total_cost_bits);
    assert!(!state.counters.is_empty());
}

#[test]
fn staged_resume_to_crash_equals_direct_run_to_crash() {
    let er = small_pipeline();
    let ds = dataset();
    let staged = er
        .resume_to_crash(&ds, &er.run_to_crash(&ds, 1_000.0).unwrap(), 2_200.0)
        .unwrap();
    let direct = er.run_to_crash(&ds, 2_200.0).unwrap();
    assert_eq!(staged.to_json().unwrap(), direct.to_json().unwrap());
}

#[test]
fn fingerprint_json_round_trips() {
    let er = small_pipeline();
    let ds = dataset();
    let fp = ResultFingerprint::of(&er.try_run(&ds).unwrap());
    let back = ResultFingerprint::from_json(&fp.to_json().unwrap()).unwrap();
    assert_eq!(back, fp);
}

/// In-process kill-point sweep: every durable byte prefix of a finished
/// journal — exactly what a `kill -9` right after the N-th synced append
/// leaves on disk — resumes in a fresh store to the bit-identical result.
#[test]
fn every_journal_prefix_resumes_bit_identically() {
    let er = small_pipeline();
    let ds = dataset();
    let golden = ResultFingerprint::of(&er.try_run(&ds).unwrap());

    let store = MemStore::shared();
    run_durable(&er, &ds, &store, "job-sweep", &[], &opts(1_500.0)).unwrap();
    let rec = recover(&store, "job-sweep").unwrap();
    assert!(rec.report.clean());
    let bytes = store.read("job-sweep").unwrap();

    // Event boundaries: each event's start offset (skipping the first —
    // a prefix with zero events has nothing to resume) plus the full log.
    let mut boundaries: Vec<usize> = rec.events[1..]
        .iter()
        .map(|&(off, _)| off as usize)
        .collect();
    boundaries.push(bytes.len());
    assert!(
        boundaries.len() >= 6,
        "want a meaningful sweep, got {} boundaries",
        boundaries.len()
    );

    for (i, &cut) in boundaries.iter().enumerate() {
        let replay: Arc<dyn JournalStore> = MemStore::shared();
        replay.append("job-sweep", &bytes[..cut]).unwrap();
        let resumed = resume_durable(&er, &ds, &replay, "job-sweep", &opts(1_500.0))
            .unwrap_or_else(|e| panic!("resume at boundary {i} (byte {cut}) failed: {e}"));
        assert_eq!(
            ResultFingerprint::of(&resumed),
            golden,
            "boundary {i} (byte {cut}) diverged"
        );
    }
}

/// A kill mid-append leaves a torn tail behind the last boundary; resume
/// must drop it (and truncate, so new records stay reachable) and still
/// reach the identical result.
#[test]
fn resume_recovers_from_torn_tail() {
    let er = small_pipeline();
    let ds = dataset();
    let golden = ResultFingerprint::of(&er.try_run(&ds).unwrap());

    let store = MemStore::shared();
    run_durable(&er, &ds, &store, "job-torn", &[], &opts(1_500.0)).unwrap();
    let bytes = store.read("job-torn").unwrap();
    let rec = recover(&store, "job-torn").unwrap();
    // Cut mid-record: half-way into the final event's frame.
    let last_off = rec.events.last().unwrap().0 as usize;
    let cut = last_off + (bytes.len() - last_off) / 2;
    assert!(cut > last_off && cut < bytes.len());

    let replay: Arc<dyn JournalStore> = MemStore::shared();
    replay.append("job-torn", &bytes[..cut]).unwrap();
    let pre = recover(&replay, "job-torn").unwrap();
    assert!(pre.report.torn_tail);

    let resumed = resume_durable(&er, &ds, &replay, "job-torn", &opts(1_500.0)).unwrap();
    assert_eq!(ResultFingerprint::of(&resumed), golden);
    // The torn bytes were truncated away before new appends, so the whole
    // log is valid again.
    let post = recover(&replay, "job-torn").unwrap();
    assert!(post.report.clean());
}

#[test]
fn resume_of_empty_journal_is_an_error() {
    let er = small_pipeline();
    let ds = dataset();
    let store = MemStore::shared();
    let err = resume_durable(&er, &ds, &store, "job-none", &opts(1_500.0));
    assert!(err.is_err(), "no journal should not resume");
}

/// The dead-letter round trip: a task exhausting its attempt budget lands
/// in the DLQ with full failure history and context; reprocessing with the
/// fault removed equals the fault-free run bit for bit.
#[test]
fn dlq_captures_exhausted_task_and_reprocesses() {
    let ds = dataset();
    let golden_er = small_pipeline();
    let golden = ResultFingerprint::of(&golden_er.try_run(&ds).unwrap());

    let mut faulty = small_pipeline();
    // Default attempt budget is 4; 4 failing attempts exhaust it.
    faulty.config.faults = Some(FaultPlan::fail_reduce(0, 4));

    let store = MemStore::shared();
    let err = run_durable(&faulty, &ds, &store, "job-dlq", &[], &opts(1_500.0))
        .expect_err("exhausted task must fail the durable run");
    match &err {
        DurableError::DeadLettered { job_id, tasks } => {
            assert_eq!(job_id, "job-dlq");
            assert_eq!(tasks, &["reduce-0".to_string()]);
        }
        other => panic!("expected DeadLettered, got {other}"),
    }

    // The capture carries everything an operator needs.
    let rec = recover(&store, "job-dlq").unwrap();
    let state = JournalState::replay(&rec.events);
    assert_eq!(state.dlq.len(), 1);
    let entry = &state.dlq[0];
    assert_eq!(entry.index, 0);
    assert_eq!(entry.attempts, 4);
    assert_eq!(entry.failures.len(), 4);
    assert!(entry.failures.iter().all(|f| !f.error.is_empty()));
    assert!(entry.context_json.contains("\"task\":\"reduce-0\""));
    assert!(entry.context_json.contains("\"stage\":"));

    // Drain the queue with the fault gone: bit-identical to fault-free.
    let reprocessed = reprocess_dlq(&faulty, &ds, &store, "job-dlq", &opts(1_500.0)).unwrap();
    assert_eq!(ResultFingerprint::of(&reprocessed), golden);

    // The journal now records the drain; the DLQ folds back to empty.
    let state = JournalState::replay(&recover(&store, "job-dlq").unwrap().events);
    assert!(state.dlq.is_empty(), "drained entries must leave the DLQ");
    assert!(state.finished.is_some());

    // A second reprocess has nothing to drain.
    assert!(reprocess_dlq(&faulty, &ds, &store, "job-dlq", &opts(1_500.0)).is_err());
}
