//! End-to-end regression: the prepared-signature fast path must leave the
//! pipeline's observable behaviour untouched. For both the Basic baseline
//! and the full progressive pipeline on seeded generated data, the prepared
//! and string paths must produce the identical duplicate set, identical
//! virtual-cost accounting (total and overhead, bit-for-bit), identical
//! comparison counters, and identical discovery timelines.

use pper_datagen::PubGen;
use pper_er::{BasicApproach, BasicConfig, ErConfig, ErRunResult, ProgressiveEr};

/// Assert every observable of two runs is identical.
fn assert_runs_identical(prepared: &ErRunResult, string: &ErRunResult, what: &str) {
    assert_eq!(
        prepared.duplicates, string.duplicates,
        "{what}: duplicate sets must be identical"
    );
    assert_eq!(
        prepared.total_cost.to_bits(),
        string.total_cost.to_bits(),
        "{what}: total virtual cost must be bit-identical ({} vs {})",
        prepared.total_cost,
        string.total_cost
    );
    assert_eq!(
        prepared.overhead_cost.to_bits(),
        string.overhead_cost.to_bits(),
        "{what}: overhead cost must be bit-identical"
    );
    assert_eq!(
        prepared.counters.get("pairs_compared"),
        string.counters.get("pairs_compared"),
        "{what}: comparison counts must agree"
    );
    assert_eq!(
        prepared.counters.get("duplicates_found"),
        string.counters.get("duplicates_found"),
        "{what}: duplicate event counts must agree"
    );
    assert_eq!(
        prepared.found_events.len(),
        string.found_events.len(),
        "{what}: discovery timelines must have equal length"
    );
    for (p, s) in prepared.found_events.iter().zip(&string.found_events) {
        assert_eq!(
            (p.0.to_bits(), p.1, p.2),
            (s.0.to_bits(), s.1, s.2),
            "{what}: discovery events must be identical"
        );
    }
    assert_eq!(
        prepared.precision.to_bits(),
        string.precision.to_bits(),
        "{what}: precision must be bit-identical"
    );
}

#[test]
fn basic_baseline_identical_across_paths() {
    let ds = PubGen::new(2_000, 421).generate();
    let basic = BasicConfig::full(15);
    let with_prepared = BasicApproach::new(ErConfig::citeseer(2), basic.clone())
        .run(&ds)
        .unwrap();
    let with_strings = BasicApproach::new(ErConfig::citeseer(2).with_string_path(), basic)
        .run(&ds)
        .unwrap();
    assert!(
        !with_prepared.duplicates.is_empty(),
        "run must find duplicates for the comparison to mean anything"
    );
    assert_runs_identical(&with_prepared, &with_strings, "basic/citeseer");
}

#[test]
fn basic_popcorn_identical_across_paths() {
    // Early stopping depends on per-pair decisions *in order*, so any
    // decision divergence would cascade into different stopping points.
    let ds = PubGen::new(2_000, 422).generate();
    let basic = BasicConfig::popcorn(15, 0.05);
    let with_prepared = BasicApproach::new(ErConfig::citeseer(2), basic.clone())
        .run(&ds)
        .unwrap();
    let with_strings = BasicApproach::new(ErConfig::citeseer(2).with_string_path(), basic)
        .run(&ds)
        .unwrap();
    assert_runs_identical(&with_prepared, &with_strings, "basic-popcorn/citeseer");
}

#[test]
fn progressive_pipeline_identical_across_paths() {
    let ds = PubGen::new(2_500, 423).generate();
    let with_prepared = ProgressiveEr::new(ErConfig::citeseer(2)).run(&ds);
    let with_strings = ProgressiveEr::new(ErConfig::citeseer(2).with_string_path()).run(&ds);
    assert!(
        !with_prepared.duplicates.is_empty(),
        "pipeline must find duplicates for the comparison to mean anything"
    );
    assert_runs_identical(&with_prepared, &with_strings, "progressive/citeseer");
}

#[test]
fn incremental_identical_across_paths() {
    use pper_er::IncrementalEr;
    let ds = PubGen::new(1_200, 424).generate();
    let batches: Vec<Vec<(Vec<String>, u32)>> = ds
        .entities
        .chunks(300)
        .map(|chunk| {
            chunk
                .iter()
                .map(|e| (e.attrs.clone(), ds.truth.cluster(e.id)))
                .collect()
        })
        .collect();

    let cfg = ErConfig::citeseer(2);
    let mut with_prepared = IncrementalEr::new(
        cfg.families.clone(),
        cfg.rule.clone(),
        cfg.policy.clone(),
        cfg.mechanism,
    );
    let mut with_strings = IncrementalEr::new(
        cfg.families.clone(),
        cfg.rule.clone(),
        cfg.policy.clone(),
        cfg.mechanism,
    )
    .with_string_path();

    for batch in batches {
        let p = with_prepared.ingest(batch.clone());
        let s = with_strings.ingest(batch);
        assert_eq!(p.new_duplicates, s.new_duplicates, "batch {}", p.batch);
        assert_eq!(p.comparisons, s.comparisons, "batch {}", p.batch);
    }
    assert_eq!(with_prepared.duplicates(), with_strings.duplicates());
    assert!(
        !with_prepared.duplicates().is_empty(),
        "incremental run must find duplicates"
    );
}
