//! Chaos invariance: injected task failures below the attempt budget —
//! legacy discarded attempts, attempts killed at their start, and attempts
//! that really panic mid-flight once their virtual clock crosses a
//! threshold — must never change *what* the pipeline computes. Re-executed
//! attempts only add wasted virtual cost; the duplicate set, the comparison
//! counts, and the final recall are invariant. Exhausting the budget must
//! fail the job loudly instead of silently corrupting results.

use std::sync::OnceLock;

use pper_datagen::{Dataset, PubGen};
use pper_er::{BasicApproach, BasicConfig, ErConfig, ErRunResult, ProgressiveEr};
use pper_mapreduce::{FaultPlan, MrError, ShuffleBalance, TaskKind};
use proptest::prelude::*;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| PubGen::new(900, 811).generate())
}

fn run_pipeline(faults: Option<FaultPlan>) -> Result<ErRunResult, MrError> {
    let mut config = ErConfig::citeseer(2);
    config.faults = faults;
    ProgressiveEr::new(config).try_run(dataset())
}

/// Chaos must not change results — only add wasted cost.
fn assert_chaos_invariant(faulty: &ErRunResult, clean: &ErRunResult, what: &str) {
    assert_eq!(
        faulty.duplicates, clean.duplicates,
        "{what}: duplicate set must be fault-invariant"
    );
    assert_eq!(
        faulty.counters.get("pairs_compared"),
        clean.counters.get("pairs_compared"),
        "{what}: comparison counts must be fault-invariant"
    );
    assert_eq!(
        faulty.counters.get("duplicates_found"),
        clean.counters.get("duplicates_found"),
        "{what}: duplicate events must be fault-invariant"
    );
    assert_eq!(
        faulty.curve.final_recall().to_bits(),
        clean.curve.final_recall().to_bits(),
        "{what}: final recall must be fault-invariant"
    );
    assert!(
        faulty.total_cost >= clean.total_cost,
        "{what}: failures can only add virtual cost ({} < {})",
        faulty.total_cost,
        clean.total_cost
    );
    // Re-execution delays a retried task's events on the global timeline,
    // so the cross-task interleaving may shift — but exactly the same
    // discoveries must be made.
    let mut faulty_pairs: Vec<(u32, u32)> =
        faulty.found_events.iter().map(|e| (e.1, e.2)).collect();
    let mut clean_pairs: Vec<(u32, u32)> = clean.found_events.iter().map(|e| (e.1, e.2)).collect();
    faulty_pairs.sort_unstable();
    clean_pairs.sort_unstable();
    assert_eq!(
        faulty_pairs, clean_pairs,
        "{what}: the discovered pairs must be fault-invariant"
    );
    assert!(
        faulty.found_events.windows(2).all(|w| w[0].0 <= w[1].0),
        "{what}: faulty timeline must stay monotone"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    // Random fault plans mixing all three failure flavours, always below
    // the 4-attempt budget (at most 2 deaths per task; attempts 1-2 die,
    // so a later attempt always survives).
    #[test]
    fn prop_random_fault_plans_below_exhaustion_are_invisible(
        legacy in proptest::collection::vec((0usize..4, 1u32..3), 0..3),
        crashes in proptest::collection::vec((0usize..4, 0usize..2), 0..3),
        aborts in proptest::collection::vec((0usize..4, 100u32..5_000), 0..3),
    ) {
        let mut plan = FaultPlan::default();
        for &(idx, n) in &legacy {
            if plan.deaths_for(TaskKind::Reduce, idx) + n < plan.max_attempts {
                plan.reduce_failures.push((idx, n));
            }
        }
        for &(idx, kind) in &crashes {
            let kind = if kind == 0 { TaskKind::Map } else { TaskKind::Reduce };
            if plan.deaths_for(kind, idx) + 1 < plan.max_attempts {
                plan = plan.with_crash(kind, idx, 1);
            }
        }
        for &(idx, at) in &aborts {
            if plan.deaths_for(TaskKind::Reduce, idx) + 1 < plan.max_attempts {
                plan = plan.with_abort(TaskKind::Reduce, idx, 2, f64::from(at));
            }
        }

        let clean = run_pipeline(None).unwrap();
        let faulty = run_pipeline(Some(plan.clone())).unwrap();
        assert_chaos_invariant(&faulty, &clean, &format!("{plan:?}"));
    }
}

#[test]
fn real_panics_below_exhaustion_do_not_fail_the_job() {
    // The headline fix: an attempt that really dies (panic at its start,
    // panic mid-flight once its clock crosses a threshold) is re-executed
    // instead of failing the job.
    let plan = FaultPlan::default()
        .with_crash(TaskKind::Reduce, 0, 1)
        .with_abort(TaskKind::Reduce, 1, 1, 50.0)
        .with_abort(TaskKind::Map, 2, 1, 10.0);
    let clean = run_pipeline(None).unwrap();
    let faulty = run_pipeline(Some(plan)).unwrap();
    assert_chaos_invariant(&faulty, &clean, "real panics");
    assert!(
        faulty.counters.get("task_retries") >= 3,
        "all three injected deaths must be retried, got {}",
        faulty.counters.get("task_retries")
    );
    assert!(
        faulty.counters.get("wasted_virtual_cost") > 0,
        "re-execution must account wasted cost"
    );
}

#[test]
fn exhausting_the_attempt_budget_fails_the_job() {
    let mut plan = FaultPlan::fail_reduce(1, 3);
    plan = plan.with_crash(TaskKind::Reduce, 1, 4);
    assert!(plan.exhausts_attempts(TaskKind::Reduce, 1));
    match run_pipeline(Some(plan)) {
        Err(MrError::TaskFailed { attempts, .. }) => assert_eq!(attempts, 4),
        other => panic!("expected TaskFailed, got {other:?}"),
    }
}

#[test]
fn out_of_range_fault_plans_are_rejected_upfront() {
    match run_pipeline(Some(FaultPlan::fail_reduce(99, 1))) {
        Err(MrError::InvalidFaultPlan(msg)) => {
            assert!(msg.contains("99"), "message should name the index: {msg}")
        }
        other => panic!("expected InvalidFaultPlan, got {other:?}"),
    }
}

#[test]
fn basic_baseline_is_chaos_invariant() {
    let ds = dataset();
    let clean_er = ErConfig::citeseer(2);
    let clean = BasicApproach::new(clean_er.clone(), BasicConfig::full(15))
        .run(ds)
        .unwrap();

    let mut faulty_er = clean_er;
    faulty_er.faults = Some(
        FaultPlan::fail_reduce(0, 2)
            .with_crash(TaskKind::Map, 1, 1)
            .with_abort(TaskKind::Reduce, 2, 1, 200.0),
    );
    let faulty = BasicApproach::new(faulty_er, BasicConfig::full(15))
        .run(ds)
        .unwrap();
    assert_chaos_invariant(&faulty, &clean, "basic baseline");
}

#[test]
fn balanced_shuffle_is_chaos_invariant() {
    let ds = dataset();
    let clean_er = ErConfig::citeseer(2).with_shuffle_balance(ShuffleBalance::Pairs);
    let clean = BasicApproach::new(clean_er.clone(), BasicConfig::full(15))
        .run(ds)
        .unwrap();

    let mut faulty_er = clean_er;
    faulty_er.faults = Some(FaultPlan::fail_reduce(3, 1).with_abort(TaskKind::Reduce, 0, 1, 500.0));
    let faulty = BasicApproach::new(faulty_er, BasicConfig::full(15))
        .run(ds)
        .unwrap();
    assert_chaos_invariant(&faulty, &clean, "balanced shuffle");
}
