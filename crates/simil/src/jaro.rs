//! Jaro and Jaro-Winkler similarity — the classic record-linkage kernels for
//! short name-like strings (Hernández & Stolfo's merge/purge line of work,
//! the paper's reference [3], popularized these for person names).

/// Reusable buffers for [`jaro_chars_scratch`], so the prepared hot path
/// performs no heap allocation per pair (buffers grow to a high-water mark
/// and are reused).
#[derive(Debug, Default)]
pub(crate) struct JaroScratch {
    b_used: Vec<bool>,
    matches_a: Vec<char>,
    matches_b: Vec<char>,
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_chars_scratch(&a, &b, &mut JaroScratch::default())
}

/// Jaro over pre-collected char slices with caller-provided scratch. This
/// is the *only* implementation — the string entry point delegates here —
/// so the prepared path is bit-identical to the string path by
/// construction.
pub(crate) fn jaro_chars_scratch(a: &[char], b: &[char], s: &mut JaroScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    s.b_used.clear();
    s.b_used.resize(b.len(), false);
    s.matches_a.clear();

    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (j, &cb) in b.iter().enumerate().take(hi).skip(lo) {
            if !s.b_used[j] && cb == ca {
                s.b_used[j] = true;
                s.matches_a.push(ca);
                break;
            }
        }
    }
    let m = s.matches_a.len();
    if m == 0 {
        return 0.0;
    }
    s.matches_b.clear();
    s.matches_b.extend(
        b.iter()
            .zip(s.b_used.iter())
            .filter(|(_, &used)| used)
            .map(|(&c, _)| c),
    );
    let transpositions = s
        .matches_a
        .iter()
        .zip(s.matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by common-prefix length (up to 4)
/// with the standard scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Jaro-Winkler over pre-collected char slices with caller scratch (same
/// arithmetic as [`jaro_winkler`], on prepared buffers).
pub(crate) fn jaro_winkler_chars_scratch(a: &[char], b: &[char], s: &mut JaroScratch) -> f64 {
    let j = jaro_chars_scratch(a, b, s);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn textbook_values() {
        // Standard worked examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944_444_444_444_444_4));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.766_666_666_666_666_7));
        assert!(close(
            jaro_winkler("MARTHA", "MARHTA"),
            0.961_111_111_111_111_1
        ));
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
    }

    #[test]
    fn winkler_boosts_prefix_matches() {
        // Same Jaro ingredients, but only one pair shares a prefix.
        let plain = jaro("charles", "gharles");
        assert!(jaro_winkler("charles", "charlez") > plain);
    }

    proptest! {
        #[test]
        fn prop_jaro_unit_interval(a in ".{0,16}", b in ".{0,16}") {
            let s = jaro(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        }

        #[test]
        fn prop_jaro_symmetric(a in "[a-f]{0,12}", b in "[a-f]{0,12}") {
            prop_assert!(close(jaro(&a, &b), jaro(&b, &a)));
        }

        #[test]
        fn prop_winkler_dominates_jaro(a in "[a-f]{0,12}", b in "[a-f]{0,12}") {
            prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
        }

        #[test]
        fn prop_identity_is_one(a in ".{1,16}") {
            prop_assert!(close(jaro(&a, &a), 1.0));
            prop_assert!(close(jaro_winkler(&a, &a), 1.0));
        }
    }
}
