//! Phonetic encodings — Soundex, the classic merge/purge-era key (the
//! paper's ref. [3] lineage uses phonetic keys both for blocking and as a
//! similarity signal on person names).

/// American Soundex code of `s`: first letter + three digits (zero-padded).
/// Non-ASCII-alphabetic characters are ignored; an empty or letterless
/// input encodes as `"0000"`.
pub fn soundex(s: &str) -> String {
    fn digit(c: u8) -> u8 {
        match c {
            b'b' | b'f' | b'p' | b'v' => b'1',
            b'c' | b'g' | b'j' | b'k' | b'q' | b's' | b'x' | b'z' => b'2',
            b'd' | b't' => b'3',
            b'l' => b'4',
            b'm' | b'n' => b'5',
            b'r' => b'6',
            _ => b'0', // vowels + h/w/y
        }
    }
    let letters: Vec<u8> = s
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase() as u8)
        .collect();
    let Some((&first, rest)) = letters.split_first() else {
        return "0000".into();
    };
    let mut code = vec![first.to_ascii_uppercase()];
    let mut last = digit(first);
    for &c in rest {
        let d = digit(c);
        // h and w are transparent: they do not reset the run of equal codes.
        if c == b'h' || c == b'w' {
            continue;
        }
        if d != b'0' && d != last {
            code.push(d);
            if code.len() == 4 {
                break;
            }
        }
        last = d;
    }
    while code.len() < 4 {
        code.push(b'0');
    }
    // The code bytes are ASCII by construction (letters and digit pushes
    // above), so the lossy conversion never actually substitutes.
    String::from_utf8_lossy(&code).into_owned()
}

/// 1.0 if the Soundex codes agree, else 0.0 — a cheap phonetic-equality
/// kernel for name attributes.
pub fn soundex_similarity(a: &str, b: &str) -> f64 {
    f64::from(soundex(a) == soundex(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_codes() {
        // Canonical examples from the Soundex specification.
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Ashcroft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Honeyman"), "H555");
    }

    #[test]
    fn phonetic_matches_survive_typos() {
        assert_eq!(soundex("Charles"), soundex("Charlz"));
        assert_eq!(soundex_similarity("Smith", "Smyth"), 1.0);
        assert_eq!(soundex_similarity("Smith", "Jones"), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(soundex(""), "0000");
        assert_eq!(soundex("123"), "0000");
        assert_eq!(soundex("a"), "A000");
    }

    proptest! {
        #[test]
        fn prop_code_shape(s in ".{0,20}") {
            let code = soundex(&s);
            prop_assert_eq!(code.len(), 4);
            let bytes = code.as_bytes();
            prop_assert!(bytes[0].is_ascii_uppercase() || bytes[0] == b'0');
            prop_assert!(bytes[1..].iter().all(|b| b.is_ascii_digit()));
        }

        #[test]
        fn prop_case_insensitive(s in "[a-zA-Z]{1,12}") {
            prop_assert_eq!(soundex(&s), soundex(&s.to_uppercase()));
        }
    }
}
