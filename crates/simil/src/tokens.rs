//! Token- and q-gram-based set similarities, used for long free-text
//! attributes where character-level edit distance is too strict (e.g.
//! author lists with reordered names).

use std::collections::HashSet;

/// Jaccard similarity over lowercase whitespace tokens: `|A∩B| / |A∪B|`.
/// Two strings with no tokens at all are identical (1.0).
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let ta: HashSet<String> = a.split_whitespace().map(str::to_lowercase).collect();
    let tb: HashSet<String> = b.split_whitespace().map(str::to_lowercase).collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.len() + tb.len() - inter;
    inter as f64 / union as f64
}

/// Positional q-grams of `s` (as owned char windows). A string shorter than
/// `q` yields itself as its single gram.
pub(crate) fn qgrams(s: &str, q: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return vec![chars.iter().collect()];
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Dice coefficient over bag-of-q-grams: `2·|A∩B| / (|A|+|B|)` with multiset
/// intersection. Robust to small local edits in long strings.
///
/// # Panics
/// Panics if `q == 0`.
pub fn qgram_similarity(a: &str, b: &str, q: usize) -> f64 {
    assert!(q > 0, "q must be positive");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ga = qgrams(a, q);
    let gb = qgrams(b, q);
    let mut counts: std::collections::HashMap<&str, isize> = std::collections::HashMap::new();
    for g in &ga {
        *counts.entry(g.as_str()).or_insert(0) += 1;
    }
    let mut inter = 0usize;
    for g in &gb {
        if let Some(c) = counts.get_mut(g.as_str()) {
            if *c > 0 {
                *c -= 1;
                inter += 1;
            }
        }
    }
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jaccard_basic() {
        assert_eq!(jaccard_tokens("a b c", "a b c"), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        assert_eq!(jaccard_tokens("a b c d", "a b"), 0.5);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a", ""), 0.0);
    }

    #[test]
    fn jaccard_case_insensitive_and_order_free() {
        assert_eq!(jaccard_tokens("John Smith", "smith JOHN"), 1.0);
    }

    #[test]
    fn qgram_basic() {
        assert_eq!(qgram_similarity("abcd", "abcd", 2), 1.0);
        assert_eq!(qgram_similarity("", "", 2), 1.0);
        assert!(qgram_similarity("night", "nacht", 2) > 0.0);
        assert!(qgram_similarity("night", "nacht", 2) < 1.0);
    }

    #[test]
    fn qgram_short_strings() {
        // Strings shorter than q degrade to whole-string comparison.
        assert_eq!(qgram_similarity("a", "a", 3), 1.0);
        assert_eq!(qgram_similarity("a", "b", 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn qgram_rejects_zero_q() {
        let _ = qgram_similarity("a", "b", 0);
    }

    proptest! {
        #[test]
        fn prop_jaccard_unit_and_symmetric(a in "[a-c ]{0,20}", b in "[a-c ]{0,20}") {
            let s = jaccard_tokens(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert_eq!(s, jaccard_tokens(&b, &a));
        }

        #[test]
        fn prop_qgram_unit_and_symmetric(a in "[a-c]{0,20}", b in "[a-c]{0,20}", q in 1usize..4) {
            let s = qgram_similarity(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - qgram_similarity(&b, &a, q)).abs() < 1e-12);
        }

        #[test]
        fn prop_identity(a in "[a-z ]{0,20}", q in 1usize..4) {
            prop_assert_eq!(jaccard_tokens(&a, &a), 1.0);
            prop_assert_eq!(qgram_similarity(&a, &a, q), 1.0);
        }
    }
}
