//! Weighted-sum match rules over entity attribute vectors (§VI-A2).
//!
//! A [`MatchRule`] scores a pair of entities as the weighted sum of
//! per-attribute similarities and declares them co-referent when the score
//! reaches a threshold. [`AttributeSim`] selects the kernel per attribute,
//! including the paper's cap of comparing "only the first ≤ 350 characters"
//! of the abstract attribute (footnote 8).

use serde::{Deserialize, Serialize};

use crate::jaro::jaro_winkler;
use crate::levenshtein::levenshtein_similarity;
use crate::tokens::{jaccard_tokens, qgram_similarity};

/// Similarity kernel applied to one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeSim {
    /// Normalized Levenshtein similarity; `max_chars` truncates both inputs
    /// first (the paper compares only the first 350 chars of abstracts).
    Levenshtein { max_chars: Option<usize> },
    /// Jaro-Winkler similarity (good for short names).
    JaroWinkler,
    /// Token-set Jaccard (good for author lists).
    JaccardTokens,
    /// Dice over q-grams.
    QGram { q: usize },
    /// 1.0 on byte equality, else 0.0 (categorical attributes).
    Exact,
    /// 1.0 when the Soundex codes agree (phonetic name matching).
    Soundex,
}

impl AttributeSim {
    /// Score two attribute values in `[0, 1]`.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        match self {
            AttributeSim::Levenshtein { max_chars } => match max_chars {
                Some(cap) => levenshtein_similarity(truncate(a, *cap), truncate(b, *cap)),
                None => levenshtein_similarity(a, b),
            },
            AttributeSim::JaroWinkler => jaro_winkler(a, b),
            AttributeSim::JaccardTokens => jaccard_tokens(a, b),
            AttributeSim::QGram { q } => qgram_similarity(a, b, *q),
            AttributeSim::Exact => f64::from(a == b),
            AttributeSim::Soundex => crate::phonetic::soundex_similarity(a, b),
        }
    }
}

pub(crate) fn truncate(s: &str, max_chars: usize) -> &str {
    match s.char_indices().nth(max_chars) {
        Some((byte_idx, _)) => &s[..byte_idx],
        None => s,
    }
}

/// One attribute's contribution to a match rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedAttr {
    /// Index into the entity's attribute vector.
    pub attr: usize,
    /// Non-negative weight; weights are normalized at evaluation time.
    pub weight: f64,
    /// Similarity kernel.
    pub sim: AttributeSim,
}

impl WeightedAttr {
    /// Construct a weighted attribute term.
    pub fn new(attr: usize, weight: f64, sim: AttributeSim) -> Self {
        Self { attr, weight, sim }
    }
}

/// Weighted-summation match rule with a decision threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchRule {
    /// The weighted attribute terms.
    pub attrs: Vec<WeightedAttr>,
    /// Decision threshold in `[0, 1]` on the normalized weighted score.
    pub threshold: f64,
}

impl MatchRule {
    /// Build a rule from terms and a threshold.
    ///
    /// # Panics
    /// Panics if `attrs` is empty, any weight is negative, all weights are
    /// zero, or the threshold is outside `[0, 1]`.
    pub fn new(attrs: Vec<WeightedAttr>, threshold: f64) -> Self {
        assert!(!attrs.is_empty(), "match rule needs at least one attribute");
        assert!(
            attrs.iter().all(|a| a.weight >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            attrs.iter().map(|a| a.weight).sum::<f64>() > 0.0,
            "at least one weight must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        Self { attrs, threshold }
    }

    /// Normalized weighted similarity score of two attribute vectors.
    ///
    /// Missing values (empty strings or indices beyond either vector) carry
    /// no evidence either way, so their terms are *dropped* and the score is
    /// renormalized over the attributes both entities actually have — the
    /// standard treatment for dirty data, and what keeps a duplicate pair
    /// with one lost abstract from being rejected on that absence alone.
    /// A pair with no comparable attribute at all scores 0.
    pub fn score(&self, a: &[String], b: &[String]) -> f64 {
        let mut used_weight = 0.0;
        let mut score = 0.0;
        for term in &self.attrs {
            let (Some(va), Some(vb)) = (a.get(term.attr), b.get(term.attr)) else {
                continue;
            };
            if va.is_empty() || vb.is_empty() {
                continue;
            }
            used_weight += term.weight;
            score += term.weight * term.sim.score(va, vb);
        }
        if used_weight == 0.0 {
            0.0
        } else {
            score / used_weight
        }
    }

    /// The co-reference decision: `score >= threshold`.
    pub fn matches(&self, a: &[String], b: &[String]) -> bool {
        self.score(a, b) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rule() -> MatchRule {
        MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.6, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(1, 0.4, AttributeSim::Exact),
            ],
            0.85,
        )
    }

    fn ent(a: &str, b: &str) -> Vec<String> {
        vec![a.to_string(), b.to_string()]
    }

    #[test]
    fn identical_entities_match() {
        let r = rule();
        let e = ent("progressive entity resolution", "ICDE");
        assert_eq!(r.score(&e, &e), 1.0);
        assert!(r.matches(&e, &e));
    }

    #[test]
    fn near_duplicates_match_distinct_dont() {
        let r = rule();
        let a = ent("progressive entity resolution", "ICDE");
        let b = ent("progresive entity resolution", "ICDE"); // one typo
        let c = ent("stream processing at scale", "VLDB");
        assert!(r.matches(&a, &b));
        assert!(!r.matches(&a, &c));
    }

    #[test]
    fn missing_attributes_renormalize() {
        let r = rule();
        let a = ent("title", "ICDE");
        let b = vec!["title".to_string()]; // venue missing
                                           // Only the title term is comparable: identical titles ⇒ score 1.
        assert!((r.score(&a, &b) - 1.0).abs() < 1e-12);
        // Nothing comparable at all ⇒ 0.
        let empty = vec![String::new(), String::new()];
        assert_eq!(r.score(&a, &empty), 0.0);
    }

    #[test]
    fn truncation_cap_applies() {
        let long_a = "x".repeat(500);
        let mut long_b = "x".repeat(350);
        long_b.push_str(&"y".repeat(150)); // differs only after 350 chars
        let sim = AttributeSim::Levenshtein {
            max_chars: Some(350),
        };
        assert_eq!(sim.score(&long_a, &long_b), 1.0);
        let uncapped = AttributeSim::Levenshtein { max_chars: None };
        assert!(uncapped.score(&long_a, &long_b) < 1.0);
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate("αβγδ", 2), "αβ");
        assert_eq!(truncate("ab", 10), "ab");
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn rejects_empty_rule() {
        let _ = MatchRule::new(vec![], 0.5);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = MatchRule::new(vec![WeightedAttr::new(0, 1.0, AttributeSim::Exact)], 1.5);
    }

    #[test]
    fn serde_round_trip() {
        let r = rule();
        let json = serde_json::to_string(&r).unwrap();
        let back: MatchRule = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    proptest! {
        #[test]
        fn prop_score_in_unit_interval(a in "[a-d]{0,10}", b in "[a-d]{0,10}", c in "[a-d]{0,6}", d in "[a-d]{0,6}") {
            let r = rule();
            let s = r.score(&ent(&a, &c), &ent(&b, &d));
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_score_symmetric(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            let r = rule();
            let ea = ent(&a, "v");
            let eb = ent(&b, "v");
            prop_assert!((r.score(&ea, &eb) - r.score(&eb, &ea)).abs() < 1e-12);
        }
    }
}
