//! # pper-simil
//!
//! String-similarity kernels and weighted match rules for entity resolution.
//!
//! The paper resolves a pair of entities by applying "similarity functions on
//! multiple individual attributes and then [using] the weighted summation of
//! the attribute similarities to decide whether the two entities co-refer"
//! (§VI-A2): edit distance for free-text attributes (with the abstract
//! attribute capped at its first 350 characters) and exact matching for
//! categorical ones. This crate implements those kernels plus Jaro/
//! Jaro-Winkler and token Jaccard alternatives, and the [`MatchRule`]
//! combinator that turns per-attribute scores into a co-reference decision.
//!
//! All similarity functions return scores in `[0, 1]` where `1.0` means
//! identical.
//!
//! ## Prepared evaluation (the hot path)
//!
//! [`MatchRule::score`] re-derives char buffers, token sets and q-gram
//! multisets on every pair. The [`prepared`] module amortizes that work per
//! *entity*: [`PreparedRule::prepare`] builds a [`PreparedEntity`] once
//! (per reduce task, via [`PreparedCache`]), and
//! [`PreparedRule::score`]/[`PreparedRule::matches`] compare two prepared
//! entities through a reusable [`SimScratch`] with **zero per-pair heap
//! allocation**. `score` is bit-identical to the string path; `matches`
//! additionally early-exits in descending weight order once the decision
//! is forced, while still returning identical decisions. Levenshtein terms
//! use a Myers bit-parallel fast path for ASCII inputs whose shorter side
//! fits one 64-bit word.
//!
//! ```
//! use pper_simil::{AttributeSim, MatchRule, WeightedAttr};
//!
//! let rule = MatchRule::new(
//!     vec![
//!         WeightedAttr::new(0, 0.7, AttributeSim::Levenshtein { max_chars: None }),
//!         WeightedAttr::new(1, 0.3, AttributeSim::Exact),
//!     ],
//!     0.8,
//! );
//! let a = vec!["John Lopez".to_string(), "HI".to_string()];
//! let b = vec!["John Lopes".to_string(), "HI".to_string()];
//! assert!(rule.matches(&a, &b));
//! ```

pub mod batch;
pub mod jaro;
pub mod levenshtein;
mod myers;
pub mod phonetic;
pub mod prepared;
pub mod rule;
pub mod tokens;

pub use batch::BlockScorer;
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{levenshtein, levenshtein_bounded, levenshtein_similarity};
pub use phonetic::{soundex, soundex_similarity};
pub use prepared::{PreparedCache, PreparedEntity, PreparedRule, SimScratch, TokenInterner};
pub use rule::{AttributeSim, MatchRule, WeightedAttr};
pub use tokens::{jaccard_tokens, qgram_similarity};
