//! Zero-allocation prepared similarity signatures and threshold-aware
//! early-exit matching.
//!
//! The string-path [`MatchRule::score`] re-collects `Vec<char>` buffers,
//! rebuilds token hash sets (with per-token lowercasing) and reconstructs
//! q-gram multisets on *every* pair — yet an entity in a block of `n`
//! participates in ~`n` comparisons and recurs across overlapping blocks.
//! This module amortizes all of that per *entity* instead of per *pair*:
//!
//! * [`PreparedEntity`] — per rule term, the signature that term's kernel
//!   consumes: the char buffer (with any `max_chars` cap pre-applied, plus
//!   an is-ASCII flag), sorted interned token ids, a sorted q-gram id
//!   multiset, the raw value for `Exact`, or the Soundex code.
//! * [`PreparedRule`] — scores/matches two [`PreparedEntity`]s using a
//!   reusable [`SimScratch`] (DP rows, Myers character-class table, Jaro
//!   match buffers), so the per-pair path performs **zero heap
//!   allocation** after scratch buffers reach their high-water mark.
//! * [`TokenInterner`] — per-task string→id table shared by every entity a
//!   task prepares; token/q-gram comparisons become sorted-id merges.
//! * [`PreparedCache`] — a keyed memo (entity id → [`PreparedEntity`])
//!   bundling the interner, for the "prepare once per reduce task" wiring.
//!
//! # Parity contract
//!
//! For the same rule and attribute vectors:
//!
//! * [`PreparedRule::score`] returns **bit-identical** `f64` values to
//!   [`MatchRule::score`] — it evaluates terms in the original declaration
//!   order with the same floating-point operation sequence, and every
//!   kernel reproduces the string kernel's exact arithmetic (integer
//!   distance/overlap counts feeding the same normalization expression).
//! * [`PreparedRule::matches`] returns **identical decisions** to
//!   [`MatchRule::matches`]. It evaluates terms in descending weight order
//!   and stops as soon as the accept/reject decision is forced: accept once
//!   the pessimistic bound (remaining terms scoring 0) clears the
//!   threshold, reject once the optimistic bound (remaining terms
//!   scoring 1) cannot reach it. Both bounds carry a `1e-9` guard band
//!   — orders of
//!   magnitude above the worst-case float-summation error for any
//!   realistic term count — and when neither bound forces a decision the
//!   full score is re-accumulated in declaration order, making the
//!   boundary comparison bit-identical to the string path.
//!
//! Levenshtein terms additionally take a Myers bit-parallel fast path
//! (single `u64` block) when both capped buffers are ASCII and the shorter
//! one fits in 64 characters, falling back to the existing two-row DP
//! otherwise; both produce the same exact integer distance.

use std::collections::HashMap;
use std::hash::Hash;

use crate::jaro::{jaro_winkler_chars_scratch, JaroScratch};
use crate::levenshtein::levenshtein_chars_scratch;
use crate::myers::myers_distance_ascii;
use crate::phonetic::soundex;
use crate::rule::{truncate, AttributeSim, MatchRule};
use crate::tokens::qgrams;

/// Decision guard band for early exit: bounds must clear the threshold by
/// this relative margin before a decision is taken early. Worst-case float
/// summation error for a rule of `k` terms is ~`k · 2.2e-16` of the used
/// weight, so `1e-9` is conservatively safe for any rule with fewer than
/// ~10^6 terms while still firing on every non-borderline pair.
const DECISION_MARGIN: f64 = 1e-9;

/// Per-task string→id interner. Entities prepared against the same
/// interner can compare token/q-gram signatures by id; ids are meaningless
/// across interners.
#[derive(Debug, Default)]
pub struct TokenInterner {
    ids: HashMap<String, u32>,
}

impl TokenInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn intern(&mut self, s: String) -> u32 {
        if let Some(&id) = self.ids.get(s.as_str()) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(s, id);
        id
    }
}

/// One rule term's precomputed signature for one entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PreparedAttr {
    /// Attribute index out of range or value empty — the term is dropped
    /// for any pair involving this entity (mirroring the string path's
    /// missing-value renormalization).
    Missing,
    /// Char buffer for Levenshtein (cap pre-applied) and Jaro-Winkler.
    Chars { chars: Vec<char>, ascii: bool },
    /// Sorted, deduplicated interned lowercase-token ids (Jaccard).
    Tokens(Vec<u32>),
    /// Sorted interned q-gram id multiset (q-gram Dice).
    Grams(Vec<u32>),
    /// The raw value (byte-equality kernels).
    Raw(String),
    /// Four-byte Soundex code.
    Phonetic([u8; 4]),
}

/// All of one entity's per-term signatures for one [`PreparedRule`]
/// (`terms[i]` pairs with `rule.attrs[i]`).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedEntity {
    pub(crate) terms: Vec<PreparedAttr>,
}

impl PreparedEntity {
    /// Number of rule terms this entity was prepared for.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }
}

/// Reusable kernel buffers: everything the per-pair path needs beyond the
/// two [`PreparedEntity`]s. Buffers grow to a high-water mark and are
/// reused, so a warm scratch makes pair comparison allocation-free.
#[derive(Debug)]
pub(crate) struct KernelScratch {
    /// Two-row DP buffer for the Levenshtein fallback.
    row: Vec<usize>,
    /// Myers character-class table (filled and re-cleared per call by
    /// touching only the pattern's characters).
    peq: Box<[u64; 128]>,
    /// Jaro match/transposition buffers.
    jaro: JaroScratch,
}

impl Default for KernelScratch {
    fn default() -> Self {
        Self {
            row: Vec::new(),
            peq: Box::new([0u64; 128]),
            jaro: JaroScratch::default(),
        }
    }
}

/// Reusable per-task scratch for [`PreparedRule::score`] /
/// [`PreparedRule::matches`]. Create one per reduce task (or worker) and
/// pass it to every pair comparison.
#[derive(Debug, Default)]
pub struct SimScratch {
    pub(crate) kernels: KernelScratch,
    /// Per-term usability of the current pair (both sides present).
    usable: Vec<bool>,
    /// Per-term similarity cache for the early-exit fallback recompute.
    sims: Vec<f64>,
}

impl SimScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A [`MatchRule`] compiled for prepared evaluation: signatures are built
/// per entity via [`PreparedRule::prepare`], pairs are scored via
/// [`PreparedRule::score`] / [`PreparedRule::matches`].
#[derive(Debug, Clone)]
pub struct PreparedRule {
    rule: MatchRule,
    /// Term indices in descending weight order (stable on ties) — the
    /// evaluation order that forces early-exit decisions soonest.
    order: Vec<u32>,
}

impl PreparedRule {
    /// Compile a rule for prepared evaluation.
    pub fn new(rule: MatchRule) -> Self {
        let mut order: Vec<u32> = (0..rule.attrs.len() as u32).collect();
        order.sort_by(|&x, &y| {
            let (wx, wy) = (rule.attrs[x as usize].weight, rule.attrs[y as usize].weight);
            wy.partial_cmp(&wx)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.cmp(&y))
        });
        Self { rule, order }
    }

    /// The underlying rule.
    pub fn rule(&self) -> &MatchRule {
        &self.rule
    }

    /// Build the per-term signatures of one entity. All allocation of the
    /// prepared path happens here (and in the interner), once per entity
    /// per task — never per pair.
    pub fn prepare(&self, attrs: &[String], interner: &mut TokenInterner) -> PreparedEntity {
        self.prepare_impl(attrs, interner)
    }

    /// [`PreparedRule::prepare`] over borrowed attribute values — the
    /// zero-copy entry point for rows served straight out of an on-disk
    /// store (no intermediate `Vec<String>` row). Produces an identical
    /// [`PreparedEntity`] to `prepare` on the same values.
    pub fn prepare_refs(&self, attrs: &[&str], interner: &mut TokenInterner) -> PreparedEntity {
        self.prepare_impl(attrs, interner)
    }

    fn prepare_impl<S: AsRef<str>>(
        &self,
        attrs: &[S],
        interner: &mut TokenInterner,
    ) -> PreparedEntity {
        let terms = self
            .rule
            .attrs
            .iter()
            .map(|term| {
                let Some(v) = attrs.get(term.attr).map(|s| s.as_ref()) else {
                    return PreparedAttr::Missing;
                };
                if v.is_empty() {
                    return PreparedAttr::Missing;
                }
                match &term.sim {
                    AttributeSim::Levenshtein { max_chars } => {
                        let capped = match max_chars {
                            Some(cap) => truncate(v, *cap),
                            None => v,
                        };
                        PreparedAttr::Chars {
                            chars: capped.chars().collect(),
                            ascii: capped.is_ascii(),
                        }
                    }
                    AttributeSim::JaroWinkler => PreparedAttr::Chars {
                        chars: v.chars().collect(),
                        ascii: v.is_ascii(),
                    },
                    AttributeSim::JaccardTokens => {
                        let mut ids: Vec<u32> = v
                            .split_whitespace()
                            .map(|t| interner.intern(t.to_lowercase()))
                            .collect();
                        ids.sort_unstable();
                        ids.dedup();
                        PreparedAttr::Tokens(ids)
                    }
                    AttributeSim::QGram { q } => {
                        let mut ids: Vec<u32> = qgrams(v, *q)
                            .into_iter()
                            .map(|g| interner.intern(g))
                            .collect();
                        ids.sort_unstable();
                        PreparedAttr::Grams(ids)
                    }
                    AttributeSim::Exact => PreparedAttr::Raw(v.to_string()),
                    AttributeSim::Soundex => {
                        let code = soundex(v);
                        let b = code.as_bytes();
                        PreparedAttr::Phonetic([b[0], b[1], b[2], b[3]])
                    }
                }
            })
            .collect();
        PreparedEntity { terms }
    }

    /// Normalized weighted similarity — **bit-identical** to
    /// [`MatchRule::score`] on the same attribute vectors: terms are
    /// accumulated in declaration order with the same operation sequence.
    pub fn score(&self, a: &PreparedEntity, b: &PreparedEntity, s: &mut SimScratch) -> f64 {
        debug_assert_eq!(a.terms.len(), self.rule.attrs.len());
        debug_assert_eq!(b.terms.len(), self.rule.attrs.len());
        let mut used_weight = 0.0;
        let mut score = 0.0;
        for (i, term) in self.rule.attrs.iter().enumerate() {
            let (ta, tb) = (&a.terms[i], &b.terms[i]);
            if matches!(ta, PreparedAttr::Missing) || matches!(tb, PreparedAttr::Missing) {
                continue;
            }
            used_weight += term.weight;
            score += term.weight * term_score(&term.sim, ta, tb, &mut s.kernels);
        }
        if used_weight == 0.0 {
            0.0
        } else {
            score / used_weight
        }
    }

    /// The co-reference decision — **identical** to [`MatchRule::matches`]
    /// but threshold-aware: terms are evaluated in descending weight order
    /// and evaluation stops as soon as the accept/reject decision is
    /// forced (see the module docs for the exactness argument).
    pub fn matches(&self, a: &PreparedEntity, b: &PreparedEntity, s: &mut SimScratch) -> bool {
        let n = self.rule.attrs.len();
        debug_assert_eq!(a.terms.len(), n);
        debug_assert_eq!(b.terms.len(), n);
        let threshold = self.rule.threshold;

        s.usable.clear();
        let mut used_weight = 0.0;
        for i in 0..n {
            let usable = !matches!(a.terms[i], PreparedAttr::Missing)
                && !matches!(b.terms[i], PreparedAttr::Missing);
            s.usable.push(usable);
            if usable {
                used_weight += self.rule.attrs[i].weight;
            }
        }
        if used_weight == 0.0 {
            return 0.0 >= threshold;
        }

        s.sims.clear();
        s.sims.resize(n, 0.0);
        let mut acc = 0.0f64;
        for (pos, &oi) in self.order.iter().enumerate() {
            let i = oi as usize;
            if !s.usable[i] {
                continue;
            }
            let term = &self.rule.attrs[i];
            let sim = term_score(&term.sim, &a.terms[i], &b.terms[i], &mut s.kernels);
            s.sims[i] = sim;
            acc += term.weight * sim;

            // Pessimistic bound: every remaining term scores 0. Monotone
            // float rounding makes the full accumulation at least `acc`,
            // so clearing the threshold now forces ACCEPT.
            if acc / used_weight >= threshold + DECISION_MARGIN {
                return true;
            }
            // Optimistic bound: every remaining term scores 1, added in
            // the same order the real accumulation would add them.
            let mut optimistic = acc;
            for &oj in &self.order[pos + 1..] {
                if s.usable[oj as usize] {
                    optimistic += self.rule.attrs[oj as usize].weight;
                }
            }
            if optimistic / used_weight < threshold - DECISION_MARGIN {
                return false;
            }
        }

        // Neither bound fired: borderline pair. Re-accumulate the cached
        // similarities in declaration order — the string path's exact
        // float sequence — so the final comparison is bit-identical.
        let mut uw = 0.0;
        let mut sc = 0.0;
        for (i, term) in self.rule.attrs.iter().enumerate() {
            if s.usable[i] {
                uw += term.weight;
                sc += term.weight * s.sims[i];
            }
        }
        sc / uw >= threshold
    }
}

/// Count of common elements between two ascending id sequences; on
/// multisets (duplicates allowed) this is the multiset-intersection size.
fn sorted_intersection(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// One term's kernel over prepared signatures — each arm reproduces the
/// corresponding string kernel's exact arithmetic.
pub(crate) fn term_score(
    sim: &AttributeSim,
    a: &PreparedAttr,
    b: &PreparedAttr,
    s: &mut KernelScratch,
) -> f64 {
    match (sim, a, b) {
        (
            AttributeSim::Levenshtein { .. },
            PreparedAttr::Chars {
                chars: ca,
                ascii: aa,
            },
            PreparedAttr::Chars {
                chars: cb,
                ascii: ab,
            },
        ) => {
            let max_len = ca.len().max(cb.len());
            if max_len == 0 {
                return 1.0;
            }
            let (short, long) = if ca.len() <= cb.len() {
                (ca, cb)
            } else {
                (cb, ca)
            };
            let d = if short.is_empty() {
                long.len()
            } else if *aa && *ab && short.len() <= 64 {
                myers_distance_ascii(short, long, &mut s.peq)
            } else {
                levenshtein_chars_scratch(ca, cb, &mut s.row)
            };
            1.0 - d as f64 / max_len as f64
        }
        (
            AttributeSim::JaroWinkler,
            PreparedAttr::Chars { chars: ca, .. },
            PreparedAttr::Chars { chars: cb, .. },
        ) => jaro_winkler_chars_scratch(ca, cb, &mut s.jaro),
        (AttributeSim::JaccardTokens, PreparedAttr::Tokens(ta), PreparedAttr::Tokens(tb)) => {
            if ta.is_empty() && tb.is_empty() {
                return 1.0;
            }
            let inter = sorted_intersection(ta, tb);
            let union = ta.len() + tb.len() - inter;
            inter as f64 / union as f64
        }
        (AttributeSim::QGram { .. }, PreparedAttr::Grams(ga), PreparedAttr::Grams(gb)) => {
            let inter = sorted_intersection(ga, gb);
            2.0 * inter as f64 / (ga.len() + gb.len()) as f64
        }
        (AttributeSim::Exact, PreparedAttr::Raw(va), PreparedAttr::Raw(vb)) => f64::from(va == vb),
        (AttributeSim::Soundex, PreparedAttr::Phonetic(pa), PreparedAttr::Phonetic(pb)) => {
            f64::from(pa == pb)
        }
        _ => unreachable!("entity prepared for a different rule"),
    }
}

/// Per-task memo of prepared entities keyed by an entity id, bundling the
/// task's [`TokenInterner`]. The "prepare once per reduce task" wiring:
/// `ensure` each side of a pair (a no-op after the first block containing
/// the entity), then score through `get`.
#[derive(Debug, Default)]
pub struct PreparedCache<K> {
    interner: TokenInterner,
    map: HashMap<K, PreparedEntity>,
}

impl<K: Eq + Hash + Clone> PreparedCache<K> {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            interner: TokenInterner::new(),
            map: HashMap::new(),
        }
    }

    /// Number of entities prepared so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entity has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Prepare `attrs` under `key` unless already cached.
    pub fn ensure(&mut self, rule: &PreparedRule, key: K, attrs: &[String]) {
        if !self.map.contains_key(&key) {
            let prepared = rule.prepare(attrs, &mut self.interner);
            self.map.insert(key, prepared);
        }
    }

    /// The prepared signatures of a cached entity.
    ///
    /// # Panics
    /// Panics if `key` was never [`ensure`](Self::ensure)d.
    pub fn get(&self, key: &K) -> &PreparedEntity {
        // lint:allow(panic_path) documented panicking accessor (see # Panics); misuse is a caller bug, not a runtime fault
        self.map.get(key).expect("entity not prepared")
    }

    /// Convenience: ensure both sides and evaluate the match decision.
    pub fn matches_pair(
        &mut self,
        rule: &PreparedRule,
        scratch: &mut SimScratch,
        a: (K, &[String]),
        b: (K, &[String]),
    ) -> bool {
        self.ensure(rule, a.0.clone(), a.1);
        self.ensure(rule, b.0.clone(), b.1);
        // Both keys were just ensured; the unreachable miss arm returns a
        // non-match instead of panicking on an internal bug.
        let (Some(pa), Some(pb)) = (self.map.get(&a.0), self.map.get(&b.0)) else {
            return false;
        };
        rule.matches(pa, pb, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::WeightedAttr;

    fn citeseer_rule() -> MatchRule {
        MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.55, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(
                    1,
                    0.25,
                    AttributeSim::Levenshtein {
                        max_chars: Some(350),
                    },
                ),
                WeightedAttr::new(2, 0.20, AttributeSim::Levenshtein { max_chars: None }),
            ],
            0.82,
        )
    }

    fn prep(rule: &PreparedRule, interner: &mut TokenInterner, attrs: &[&str]) -> PreparedEntity {
        let owned: Vec<String> = attrs.iter().map(|s| s.to_string()).collect();
        rule.prepare(&owned, interner)
    }

    #[test]
    fn order_is_descending_weight_stable() {
        let rule = MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.2, AttributeSim::Exact),
                WeightedAttr::new(1, 0.5, AttributeSim::Exact),
                WeightedAttr::new(2, 0.2, AttributeSim::Exact),
                WeightedAttr::new(3, 0.1, AttributeSim::Exact),
            ],
            0.5,
        );
        let pr = PreparedRule::new(rule);
        assert_eq!(pr.order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn prepared_score_bit_identical_on_citeseer_rule() {
        let rule = citeseer_rule();
        let pr = PreparedRule::new(rule.clone());
        let mut interner = TokenInterner::new();
        let mut scratch = SimScratch::new();
        let cases = [
            (
                vec!["progressive entity resolution", "some abstract", "ICDE"],
                vec!["progresive entity resolution", "some abstract", "ICDE"],
            ),
            (
                vec!["a completely different title", "", "VLDB"],
                vec!["progressive entity resolution", "some abstract", ""],
            ),
            (vec!["", "", ""], vec!["", "", ""]),
        ];
        for (a, b) in cases {
            let sa: Vec<String> = a.iter().map(|s| s.to_string()).collect();
            let sb: Vec<String> = b.iter().map(|s| s.to_string()).collect();
            let pa = pr.prepare(&sa, &mut interner);
            let pb = pr.prepare(&sb, &mut interner);
            assert_eq!(
                pr.score(&pa, &pb, &mut scratch).to_bits(),
                rule.score(&sa, &sb).to_bits()
            );
            assert_eq!(pr.matches(&pa, &pb, &mut scratch), rule.matches(&sa, &sb));
        }
    }

    #[test]
    fn early_exit_decisions_match_string_path() {
        let rule = citeseer_rule();
        let pr = PreparedRule::new(rule.clone());
        let mut interner = TokenInterner::new();
        let mut scratch = SimScratch::new();
        // A pair whose first (heaviest) term alone forces the reject.
        let a = prep(
            &pr,
            &mut interner,
            &["totally unrelated words here", "x", "y"],
        );
        let b = prep(
            &pr,
            &mut interner,
            &["progressive entity resolution", "x", "y"],
        );
        let sa = vec![
            "totally unrelated words here".to_string(),
            "x".to_string(),
            "y".to_string(),
        ];
        let sb = vec![
            "progressive entity resolution".to_string(),
            "x".to_string(),
            "y".to_string(),
        ];
        assert_eq!(pr.matches(&a, &b, &mut scratch), rule.matches(&sa, &sb));
    }

    #[test]
    fn myers_and_fallback_pick_same_distances() {
        // >64-char ASCII strings must hit the DP fallback and still agree.
        let long_a =
            "the quick brown fox jumps over the lazy dog again and again forever".repeat(2);
        let long_b = long_a.replace("quick", "quik");
        let rule = MatchRule::new(
            vec![WeightedAttr::new(
                0,
                1.0,
                AttributeSim::Levenshtein { max_chars: None },
            )],
            0.5,
        );
        let pr = PreparedRule::new(rule.clone());
        let mut interner = TokenInterner::new();
        let mut scratch = SimScratch::new();
        let sa = vec![long_a.clone()];
        let sb = vec![long_b.clone()];
        let pa = pr.prepare(&sa, &mut interner);
        let pb = pr.prepare(&sb, &mut interner);
        assert_eq!(
            pr.score(&pa, &pb, &mut scratch).to_bits(),
            rule.score(&sa, &sb).to_bits()
        );
        // Unicode forces the fallback too.
        let sa = vec!["café au lait".to_string()];
        let sb = vec!["cafe au lait".to_string()];
        let pa = pr.prepare(&sa, &mut interner);
        let pb = pr.prepare(&sb, &mut interner);
        assert_eq!(
            pr.score(&pa, &pb, &mut scratch).to_bits(),
            rule.score(&sa, &sb).to_bits()
        );
    }

    #[test]
    fn cache_prepares_each_entity_once() {
        let pr = PreparedRule::new(citeseer_rule());
        let mut cache: PreparedCache<u32> = PreparedCache::new();
        let mut scratch = SimScratch::new();
        let a = vec!["title one".to_string(), "abs".to_string(), "v".to_string()];
        let b = vec!["title two".to_string(), "abs".to_string(), "v".to_string()];
        for _ in 0..3 {
            cache.matches_pair(&pr, &mut scratch, (1, &a), (2, &b));
        }
        assert_eq!(cache.len(), 2);
    }
}
