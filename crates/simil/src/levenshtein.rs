//! Levenshtein edit distance: classic two-row DP plus a banded variant with
//! an early-exit bound, which is what the hot resolve path uses (pairs whose
//! distance exceeds the decision-relevant bound can be rejected without
//! filling the whole matrix).

/// Unbounded Levenshtein distance between `a` and `b` (Unicode scalar
/// values, two-row dynamic program, O(|a|·|b|) time, O(min) space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

pub(crate) fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    let mut row = Vec::new();
    levenshtein_chars_scratch(a, b, &mut row)
}

/// Two-row DP over pre-collected char slices, reusing `row` as the DP
/// buffer (the prepared hot path calls this with a per-task scratch so a
/// pair comparison performs no heap allocation).
pub(crate) fn levenshtein_chars_scratch(a: &[char], b: &[char], row: &mut Vec<usize>) -> usize {
    // Keep the shorter string in the inner dimension for less memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    row.clear();
    row.extend(0..=short.len());
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[short.len()]
}

/// Levenshtein distance with an inclusive upper bound: returns
/// `Some(distance)` if `distance <= bound`, else `None`, spending only
/// O(bound · min(|a|,|b|)) time by confining the DP to a diagonal band.
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if long.len() - short.len() > bound {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    let n = short.len();
    const INF: usize = usize::MAX / 2;
    let mut row = vec![INF; n + 1];
    for (j, slot) in row.iter_mut().enumerate().take(bound.min(n) + 1) {
        *slot = j;
    }
    for (i, &lc) in long.iter().enumerate() {
        let lo = (i + 1).saturating_sub(bound).max(1);
        let hi = (i + 1 + bound).min(n);
        if lo > hi {
            return None;
        }
        let mut prev_diag = row[lo - 1];
        row[lo - 1] = if i < bound { i + 1 } else { INF };
        let mut best = row[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(lc != short[j - 1]);
            let val = (prev_diag + cost)
                .min(row[j - 1] + 1)
                .min(row[j].saturating_add(1));
            prev_diag = row[j];
            row[j] = val;
            best = best.min(val);
        }
        if hi < n {
            row[hi + 1] = INF; // cells right of the band are unreachable
        }
        if best > bound {
            return None;
        }
    }
    let d = row[n];
    (d <= bound).then_some(d)
}

/// Normalized Levenshtein similarity: `1 - distance / max(len)`, in `[0,1]`.
/// Two empty strings are identical (similarity 1).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    // Collect each string once; the char buffers provide both the length
    // normalizer and the DP input.
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_chars(&a, &b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("αβγ", "αβδ"), 1);
    }

    #[test]
    fn bounded_agrees_when_within_bound() {
        let cases = [("kitten", "sitting"), ("charles", "gharles"), ("a", "b")];
        for (a, b) in cases {
            let full = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, full), Some(full));
            assert_eq!(levenshtein_bounded(a, b, full + 3), Some(full));
            if full > 0 {
                assert_eq!(levenshtein_bounded(a, b, full - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_gap() {
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn bounded_zero_bound() {
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_bounded("abc", "abd", 0), None);
    }

    #[test]
    fn similarity_range_and_extremes() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("x", "x"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("john lopez", "john lopes");
        assert!(s > 0.8 && s < 1.0);
    }

    proptest! {
        #[test]
        fn prop_symmetric(a in ".{0,24}", b in ".{0,24}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn prop_identity(a in ".{0,24}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn prop_triangle_inequality(a in "[a-e]{0,10}", b in "[a-e]{0,10}", c in "[a-e]{0,10}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_bounded_matches_full(a in "[a-d]{0,14}", b in "[a-d]{0,14}", bound in 0usize..8) {
            let full = levenshtein(&a, &b);
            let got = levenshtein_bounded(&a, &b, bound);
            if full <= bound {
                prop_assert_eq!(got, Some(full));
            } else {
                prop_assert_eq!(got, None);
            }
        }

        #[test]
        fn prop_similarity_in_unit_interval(a in ".{0,20}", b in ".{0,20}") {
            let s = levenshtein_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_distance_bounded_by_longer_len(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
