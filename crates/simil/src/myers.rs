//! Myers' bit-parallel Levenshtein distance (single-word variant, after
//! Myers 1999 in Hyyrö's formulation), for ASCII patterns of at most 64
//! characters.
//!
//! The pattern's character-class bitmasks live in a caller-provided 128-slot
//! table that is filled before the scan and cleared afterwards by touching
//! only the pattern's own characters — so repeated calls through a reused
//! scratch table perform no heap allocation and no O(128) wipes.
//!
//! This computes the exact global edit distance (the same integer the
//! two-row DP produces), in O(|text|) word operations instead of
//! O(|pattern|·|text|) cell updates — the prepared hot path's fast path for
//! title/venue-sized attributes.

/// Populate the character-class table for `pattern` (ASCII, length
/// `1..=64`). `peq` must be all-zero on entry; undo with
/// [`myers_clear_peq`] on the same pattern. Splitting fill/scan/clear lets
/// the batch path build one probe's table once and scan a whole block of
/// candidates against it.
pub(crate) fn myers_fill_peq(pattern: &[char], peq: &mut [u64; 128]) {
    let m = pattern.len();
    debug_assert!((1..=64).contains(&m), "pattern length {m} out of range");
    for (i, &c) in pattern.iter().enumerate() {
        debug_assert!(c.is_ascii());
        peq[c as usize] |= 1u64 << i;
    }
}

/// Zero the table entries [`myers_fill_peq`] touched, restoring `peq` to
/// all-zero by visiting only the pattern's own characters.
pub(crate) fn myers_clear_peq(pattern: &[char], peq: &mut [u64; 128]) {
    for &c in pattern {
        peq[c as usize] = 0;
    }
}

/// The Myers scan against a prebuilt table: exact Levenshtein distance
/// between the pattern `peq` was filled from (of length `pattern_len`) and
/// `text`. Does not modify the table, so one fill can serve many scans.
pub(crate) fn myers_scan_prebuilt(pattern_len: usize, text: &[char], peq: &[u64; 128]) -> usize {
    let m = pattern_len;
    debug_assert!((1..=64).contains(&m), "pattern length {m} out of range");
    let mut pv = !0u64; // vertical positive deltas (column 0: D[i][0] = i)
    let mut mv = 0u64; // vertical negative deltas
    let mut score = m;
    let hibit = 1u64 << (m - 1);
    for &c in text {
        let eq = if c.is_ascii() { peq[c as usize] } else { 0 };
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & hibit != 0 {
            score += 1;
        }
        if mh & hibit != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Exact Levenshtein distance between `pattern` and `text`, both ASCII,
/// with `1 <= pattern.len() <= 64`. `peq` is the reusable character-class
/// table; it must be all-zero on entry and is restored to all-zero before
/// returning.
pub(crate) fn myers_distance_ascii(pattern: &[char], text: &[char], peq: &mut [u64; 128]) -> usize {
    myers_fill_peq(pattern, peq);
    let score = myers_scan_prebuilt(pattern.len(), text, peq);
    myers_clear_peq(pattern, peq);
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::levenshtein;
    use proptest::prelude::*;

    fn myers(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut peq = [0u64; 128];
        let d = myers_distance_ascii(&a, &b, &mut peq);
        assert!(peq.iter().all(|&x| x == 0), "peq must be cleared");
        d
    }

    #[test]
    fn agrees_with_dp_on_known_cases() {
        for (a, b) in [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("a", ""),
            ("same", "same"),
            ("abc", "xyzabcxyz"),
        ] {
            assert_eq!(myers(a, b), levenshtein(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn full_64_char_pattern() {
        let a = "x".repeat(64);
        let mut b = "x".repeat(63);
        b.push('y');
        assert_eq!(myers(&a, &b), 1);
        assert_eq!(myers(&a, &a), 0);
        assert_eq!(myers(&a, ""), 64);
    }

    proptest! {
        #[test]
        fn prop_matches_two_row_dp(a in "[a-e]{1,64}", b in "[a-e]{0,90}") {
            prop_assert_eq!(myers(&a, &b), levenshtein(&a, &b));
        }

        #[test]
        fn prop_matches_dp_dense_alphabet(a in "[a-zA-Z0-9 .,']{1,40}", b in "[a-zA-Z0-9 .,']{0,60}") {
            prop_assert_eq!(myers(&a, &b), levenshtein(&a, &b));
        }
    }
}
