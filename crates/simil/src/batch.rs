//! Block-batched scoring: one probe entity against a block of candidates.
//!
//! Blocking hands the resolver a *block* of entities; PSNM-style windows
//! then compare one probe against the `w` entities before it. The scalar
//! prepared path ([`PreparedRule::score`]) is already allocation-free, but
//! it still redoes per-probe work for every candidate:
//!
//! * **Batched Myers** — a Levenshtein term rebuilds the probe's Myers
//!   character-class table for each pair. [`BlockScorer`] fills the table
//!   once per probe per block and runs only the O(|candidate|) bit-parallel
//!   scan per pair ([`crate::myers`]'s fill/scan/clear split).
//! * **Bitset Jaccard** — a token-Jaccard term re-merges sorted id lists
//!   per pair. [`BlockScorer`] maps the block's distinct interned token ids
//!   onto a dense bit universe and compares fixed-width `u64` signatures
//!   with `AND` + popcount.
//!
//! # Parity contract
//!
//! [`BlockScorer::score_block`] is **bit-identical** to calling
//! [`PreparedRule::score`] on each `(probe, candidate)` pair — and hence to
//! the string path [`MatchRule::score`](crate::MatchRule::score):
//!
//! * Per candidate, terms accumulate in declaration order with the exact
//!   scalar operation sequence (`used_weight += w; score += w * sim`,
//!   final `score / used_weight`). The loops here are term-major for
//!   cache-friendliness, but each candidate's accumulator sees the same
//!   additions in the same order as the scalar pair loop.
//! * Batched Myers produces the same integer distance as the scalar path:
//!   it engages exactly when the scalar kernel would pick the probe as the
//!   Myers pattern (both ASCII, probe length in `1..=64`, candidate at
//!   least as long), and otherwise falls back to the scalar kernel itself.
//! * Bitset Jaccard produces the same integer intersection/union counts as
//!   the sorted-merge kernel — both count distinct shared ids — feeding
//!   the identical `inter as f64 / union as f64` division.
//!
//! [`BlockScorer::matches_block`] compares the (bit-identical) scores
//! against the rule threshold, which is the decision
//! [`MatchRule::matches`](crate::MatchRule::matches) and
//! [`PreparedRule::matches`] return.

use crate::myers::{myers_clear_peq, myers_fill_peq, myers_scan_prebuilt};
use crate::prepared::{term_score, PreparedAttr, PreparedEntity, PreparedRule, SimScratch};
use crate::rule::AttributeSim;

/// Reusable state for probe-vs-block scoring. Create one per task/worker;
/// buffers grow to a high-water mark and are reused, so a warm scorer
/// allocates nothing per block.
#[derive(Debug, Default)]
pub struct BlockScorer {
    /// Scalar-kernel scratch for fallback terms (Jaro, q-gram, DP
    /// Levenshtein, ...).
    scratch: SimScratch,
    /// The probe's prebuilt Myers table. Deliberately separate from
    /// `scratch.kernels`' table: a scalar fallback inside a batched
    /// Levenshtein term (candidate shorter than the probe) runs its own
    /// fill/clear cycle, which would corrupt a shared table.
    probe_peq: Option<Box<[u64; 128]>>,
    /// Per-candidate `used_weight` accumulators.
    acc_w: Vec<f64>,
    /// Per-candidate weighted-score accumulators.
    acc_s: Vec<f64>,
    /// Sorted distinct token ids of the current Jaccard term's block.
    universe: Vec<u32>,
    /// Probe bitset signature over `universe`.
    probe_sig: Vec<u64>,
    /// Candidate bitset signature (rebuilt per candidate).
    cand_sig: Vec<u64>,
    /// Score buffer backing `matches_block`.
    scores: Vec<f64>,
}

impl BlockScorer {
    /// Fresh scorer (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Score `probe` against every candidate, writing one score per
    /// candidate into `out` (cleared first). `out[j]` is bit-identical to
    /// `rule.score(probe, &cands[j], scratch)`.
    pub fn score_block(
        &mut self,
        rule: &PreparedRule,
        probe: &PreparedEntity,
        cands: &[PreparedEntity],
        out: &mut Vec<f64>,
    ) {
        let n = cands.len();
        self.acc_w.clear();
        self.acc_w.resize(n, 0.0);
        self.acc_s.clear();
        self.acc_s.resize(n, 0.0);
        let terms = &rule.rule().attrs;
        debug_assert_eq!(probe.terms.len(), terms.len());

        for (i, term) in terms.iter().enumerate() {
            let pt = &probe.terms[i];
            if matches!(pt, PreparedAttr::Missing) {
                // The scalar path drops the term for every pair involving
                // this probe; no accumulator moves.
                continue;
            }
            match (&term.sim, pt) {
                (
                    AttributeSim::Levenshtein { .. },
                    PreparedAttr::Chars {
                        chars: pc,
                        ascii: true,
                    },
                ) if (1..=64).contains(&pc.len()) => {
                    self.batched_levenshtein(term.weight, &term.sim, pt, pc, cands, i);
                }
                (AttributeSim::JaccardTokens, PreparedAttr::Tokens(pids)) => {
                    self.bitset_jaccard(term.weight, pids, cands, i);
                }
                _ => {
                    for (j, cand) in cands.iter().enumerate() {
                        let ct = &cand.terms[i];
                        if matches!(ct, PreparedAttr::Missing) {
                            continue;
                        }
                        let sim = term_score(&term.sim, pt, ct, &mut self.scratch.kernels);
                        self.acc_w[j] += term.weight;
                        self.acc_s[j] += term.weight * sim;
                    }
                }
            }
        }

        out.clear();
        out.extend(self.acc_w.iter().zip(&self.acc_s).map(
            |(&w, &s)| {
                if w == 0.0 {
                    0.0
                } else {
                    s / w
                }
            },
        ));
    }

    /// Match decisions for `probe` against every candidate: identical to
    /// `rule.matches(probe, &cands[j], scratch)` (and to the string path),
    /// via the bit-identical block scores compared to the threshold.
    pub fn matches_block(
        &mut self,
        rule: &PreparedRule,
        probe: &PreparedEntity,
        cands: &[PreparedEntity],
        out: &mut Vec<bool>,
    ) {
        let mut scores = std::mem::take(&mut self.scores);
        self.score_block(rule, probe, cands, &mut scores);
        out.clear();
        out.extend(scores.iter().map(|&s| s >= rule.rule().threshold));
        self.scores = scores;
    }

    /// One Levenshtein term: probe's Myers table built once, one scan per
    /// eligible candidate. A candidate is eligible when the scalar kernel
    /// would use the probe as the Myers pattern — ASCII on both sides and
    /// `cand.len() >= probe.len()` (the scalar kernel patterns on the
    /// shorter buffer, ties going to the `a` side, which is the probe
    /// here). Everything else goes through the scalar kernel unchanged.
    fn batched_levenshtein(
        &mut self,
        weight: f64,
        sim_kind: &AttributeSim,
        pt: &PreparedAttr,
        pc: &[char],
        cands: &[PreparedEntity],
        i: usize,
    ) {
        let mut peq = self
            .probe_peq
            .take()
            .unwrap_or_else(|| Box::new([0u64; 128]));
        myers_fill_peq(pc, &mut peq);
        for (j, cand) in cands.iter().enumerate() {
            let ct = &cand.terms[i];
            if matches!(ct, PreparedAttr::Missing) {
                continue;
            }
            let sim = match ct {
                PreparedAttr::Chars {
                    chars: cc,
                    ascii: true,
                } if cc.len() >= pc.len() => {
                    let d = myers_scan_prebuilt(pc.len(), cc, &peq);
                    // max_len == cc.len() since cc is at least as long.
                    1.0 - d as f64 / cc.len() as f64
                }
                _ => term_score(sim_kind, pt, ct, &mut self.scratch.kernels),
            };
            self.acc_w[j] += weight;
            self.acc_s[j] += weight * sim;
        }
        myers_clear_peq(pc, &mut peq);
        self.probe_peq = Some(peq);
    }

    /// One token-Jaccard term: the block's distinct ids become a dense bit
    /// universe; intersection is `AND` + popcount over fixed-width `u64`
    /// signatures. Counts are identical to the sorted-merge kernel, so the
    /// resulting `f64` is bit-identical.
    fn bitset_jaccard(&mut self, weight: f64, pids: &[u32], cands: &[PreparedEntity], i: usize) {
        self.universe.clear();
        self.universe.extend_from_slice(pids);
        for cand in cands {
            if let PreparedAttr::Tokens(ids) = &cand.terms[i] {
                self.universe.extend_from_slice(ids);
            }
        }
        self.universe.sort_unstable();
        self.universe.dedup();
        let words = self.universe.len().div_ceil(64);

        self.probe_sig.clear();
        self.probe_sig.resize(words, 0);
        for &id in pids {
            set_bit(&mut self.probe_sig, universe_pos(&self.universe, id));
        }

        for (j, cand) in cands.iter().enumerate() {
            let ct = &cand.terms[i];
            let PreparedAttr::Tokens(ids) = ct else {
                debug_assert!(
                    matches!(ct, PreparedAttr::Missing),
                    "entity prepared for a different rule"
                );
                continue;
            };
            let sim = if pids.is_empty() && ids.is_empty() {
                1.0
            } else {
                self.cand_sig.clear();
                self.cand_sig.resize(words, 0);
                for &id in ids {
                    set_bit(&mut self.cand_sig, universe_pos(&self.universe, id));
                }
                let inter: usize = self
                    .probe_sig
                    .iter()
                    .zip(&self.cand_sig)
                    .map(|(a, b)| (a & b).count_ones() as usize)
                    .sum();
                // Prepared token lists are sorted+deduped, so list length
                // equals signature popcount and the union count matches
                // the sorted-merge kernel exactly.
                let union = pids.len() + ids.len() - inter;
                inter as f64 / union as f64
            };
            self.acc_w[j] += weight;
            self.acc_s[j] += weight * sim;
        }
    }
}

fn set_bit(sig: &mut [u64], pos: usize) {
    sig[pos / 64] |= 1u64 << (pos % 64);
}

/// Bit position of `id` in the sorted distinct `universe`. Every id was
/// folded into the universe before signatures are built, so the search
/// always hits.
fn universe_pos(universe: &[u32], id: u32) -> usize {
    match universe.binary_search(&id) {
        Ok(p) => p,
        Err(p) => {
            debug_assert!(false, "token id {id} missing from block universe");
            p.min(universe.len().saturating_sub(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{MatchRule, WeightedAttr};
    use crate::TokenInterner;
    use proptest::prelude::*;

    /// Every kernel family in one rule, books-like weights.
    fn mixed_rule() -> MatchRule {
        MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.30, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(1, 0.20, AttributeSim::JaccardTokens),
                WeightedAttr::new(2, 0.15, AttributeSim::JaroWinkler),
                WeightedAttr::new(3, 0.15, AttributeSim::QGram { q: 2 }),
                WeightedAttr::new(4, 0.10, AttributeSim::Exact),
                WeightedAttr::new(
                    5,
                    0.10,
                    AttributeSim::Levenshtein {
                        max_chars: Some(16),
                    },
                ),
            ],
            0.75,
        )
    }

    fn prepare_all(
        pr: &PreparedRule,
        interner: &mut TokenInterner,
        rows: &[Vec<String>],
    ) -> Vec<PreparedEntity> {
        rows.iter().map(|r| pr.prepare(r, interner)).collect()
    }

    fn assert_block_parity(rule: &MatchRule, rows: &[Vec<String>], probe_idx: usize) {
        let pr = PreparedRule::new(rule.clone());
        let mut interner = TokenInterner::new();
        let prepared = prepare_all(&pr, &mut interner, rows);
        let mut scorer = BlockScorer::new();
        let mut scratch = SimScratch::new();
        let probe = &prepared[probe_idx];

        let mut scores = Vec::new();
        let mut decisions = Vec::new();
        scorer.score_block(&pr, probe, &prepared, &mut scores);
        scorer.matches_block(&pr, probe, &prepared, &mut decisions);
        assert_eq!(scores.len(), rows.len());

        for (j, cand) in prepared.iter().enumerate() {
            let scalar = pr.score(probe, cand, &mut scratch);
            assert_eq!(
                scores[j].to_bits(),
                scalar.to_bits(),
                "score parity vs prepared scalar: probe {probe_idx} cand {j}"
            );
            let string_path = rule.score(&rows[probe_idx], &rows[j]);
            assert_eq!(
                scores[j].to_bits(),
                string_path.to_bits(),
                "score parity vs string path: probe {probe_idx} cand {j}"
            );
            assert_eq!(
                decisions[j],
                pr.matches(probe, cand, &mut scratch),
                "decision parity vs prepared scalar: probe {probe_idx} cand {j}"
            );
            assert_eq!(
                decisions[j],
                rule.matches(&rows[probe_idx], &rows[j]),
                "decision parity vs string path: probe {probe_idx} cand {j}"
            );
        }
    }

    #[test]
    fn handcrafted_edge_cases() {
        let rows: Vec<Vec<String>> = [
            // Near-duplicate of the probe.
            [
                "progressive entity resolution",
                "alice smith bob jones",
                "Jon",
                "icde 2017",
                "EN",
                "hardcover",
            ],
            // Probe row.
            [
                "progresive entity resolution",
                "bob jones alice smith",
                "John",
                "icde 2017",
                "EN",
                "hardcover",
            ],
            // Candidate shorter than the probe (scalar fallback inside the
            // batched Levenshtein term).
            ["pro", "alice", "J", "ic", "EN", "x"],
            // Empty attributes (Missing on the candidate side).
            ["", "", "", "", "", ""],
            // Non-ASCII forces the DP fallback and tests batched-Myers
            // eligibility gating.
            [
                "progrèssive entity resolution",
                "alicé smith",
                "Jöhn",
                "icde 2017",
                "EN",
                "softcovér",
            ],
            // Longer-than-64-chars title (probe-side gate is on probe
            // length, candidate stays eligible for scanning).
            [
                "a very long title that keeps going and going and going and going and going",
                "tok tok tok",
                "Jo",
                "qq",
                "DE",
                "paperback",
            ],
            // Whitespace-only tokens attr (empty token set, not Missing).
            ["probe-ish title", " ", "Jn", "ii", "EN", "h"],
        ]
        .iter()
        .map(|r| r.iter().map(|s| s.to_string()).collect())
        .collect();

        let rule = mixed_rule();
        for probe_idx in 0..rows.len() {
            assert_block_parity(&rule, &rows, probe_idx);
        }
    }

    #[test]
    fn missing_probe_attr_skips_term_for_all_candidates() {
        // Probe with every attr empty: all terms Missing → score 0.0.
        let rows: Vec<Vec<String>> = vec![
            vec![String::new(); 6],
            ["t", "a b", "n", "g", "E", "f"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ];
        assert_block_parity(&mixed_rule(), &rows, 0);
    }

    #[test]
    fn prepare_refs_matches_prepare() {
        let pr = PreparedRule::new(mixed_rule());
        let row = [
            "progressive entity resolution",
            "alice smith",
            "John",
            "icde",
            "EN",
            "hardcover",
        ];
        let owned: Vec<String> = row.iter().map(|s| s.to_string()).collect();
        let refs: Vec<&str> = row.to_vec();
        let mut i1 = TokenInterner::new();
        let mut i2 = TokenInterner::new();
        assert_eq!(pr.prepare(&owned, &mut i1), pr.prepare_refs(&refs, &mut i2));
    }

    #[test]
    fn reusable_scorer_leaves_no_state_behind() {
        // Score two different blocks through one scorer; results must match
        // a fresh scorer's (catches peq/universe leakage between calls).
        let rule = mixed_rule();
        let pr = PreparedRule::new(rule.clone());
        let mut interner = TokenInterner::new();
        let block_a: Vec<Vec<String>> = (0..5)
            .map(|k| (0..6).map(|a| format!("value {k} attr {a} xyz")).collect())
            .collect();
        let block_b: Vec<Vec<String>> = (0..5)
            .map(|k| (0..6).map(|a| format!("other {a} {k}")).collect())
            .collect();
        let pa = prepare_all(&pr, &mut interner, &block_a);
        let pb = prepare_all(&pr, &mut interner, &block_b);

        let mut warm = BlockScorer::new();
        let mut tmp = Vec::new();
        warm.score_block(&pr, &pa[0], &pa, &mut tmp);
        let mut warm_scores = Vec::new();
        warm.score_block(&pr, &pb[0], &pb, &mut warm_scores);

        let mut fresh = BlockScorer::new();
        let mut fresh_scores = Vec::new();
        fresh.score_block(&pr, &pb[0], &pb, &mut fresh_scores);
        let bits = |v: &Vec<f64>| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&warm_scores), bits(&fresh_scores));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn prop_block_parity_random_rows(
            rows in proptest::collection::vec(
                proptest::collection::vec(".{0,70}", 6..7), 1..9),
            probe_sel in 0usize..64,
        ) {
            let rows: Vec<Vec<String>> = rows;
            let probe_idx = probe_sel % rows.len();
            assert_block_parity(&mixed_rule(), &rows, probe_idx);
        }

        #[test]
        fn prop_block_parity_ascii_titles(
            rows in proptest::collection::vec(
                proptest::collection::vec("[a-e ]{0,80}", 6..7), 2..12),
            probe_sel in 0usize..64,
        ) {
            let rows: Vec<Vec<String>> = rows;
            let probe_idx = probe_sel % rows.len();
            assert_block_parity(&mixed_rule(), &rows, probe_idx);
        }
    }
}
