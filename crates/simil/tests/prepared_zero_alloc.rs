//! Proof of the tentpole's zero-allocation contract: once entities are
//! prepared and the scratch buffers are warm, `PreparedRule::score` and
//! `PreparedRule::matches` perform **no heap allocation per pair**.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms the scratch to its high-water mark, snapshots the allocation
//! counter, runs thousands of pair comparisons, and asserts the counter
//! never moved. (This file is its own integration-test binary because a
//! global allocator is process-wide.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pper_simil::{AttributeSim, MatchRule, PreparedRule, SimScratch, TokenInterner, WeightedAttr};

/// System allocator wrapper counting every allocation and reallocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A rule exercising every kernel at once.
fn six_kernel_rule() -> MatchRule {
    MatchRule::new(
        vec![
            WeightedAttr::new(
                0,
                0.30,
                AttributeSim::Levenshtein {
                    max_chars: Some(350),
                },
            ),
            WeightedAttr::new(1, 0.20, AttributeSim::JaroWinkler),
            WeightedAttr::new(2, 0.15, AttributeSim::JaccardTokens),
            WeightedAttr::new(3, 0.15, AttributeSim::QGram { q: 2 }),
            WeightedAttr::new(4, 0.10, AttributeSim::Exact),
            WeightedAttr::new(5, 0.10, AttributeSim::Soundex),
        ],
        0.8,
    )
}

fn entity(i: usize) -> Vec<String> {
    vec![
        format!("progressive entity resolution with mapreduce number {i}"),
        format!("author name {i}"),
        format!("alpha beta gamma token{}", i % 7),
        format!("qgram material {i} with shared substrings"),
        format!("cat{}", i % 3),
        format!("Robertson{i}"),
    ]
}

#[test]
fn prepared_pair_path_allocates_nothing() {
    let rule = six_kernel_rule();
    let prepared = PreparedRule::new(rule);
    let mut interner = TokenInterner::new();
    let mut scratch = SimScratch::new();

    // Preparation allocates (signatures, interner growth) — all up front.
    let entities: Vec<_> = (0..32)
        .map(|i| prepared.prepare(&entity(i), &mut interner))
        .collect();

    // Warm the scratch buffers to their high-water mark.
    let mut sink = 0.0f64;
    for a in &entities {
        for b in &entities {
            sink += prepared.score(a, b, &mut scratch);
            sink += f64::from(prepared.matches(a, b, &mut scratch));
        }
    }

    // From here on: zero heap traffic over thousands of pair comparisons.
    let before = allocations();
    for _ in 0..4 {
        for a in &entities {
            for b in &entities {
                sink += prepared.score(a, b, &mut scratch);
                sink += f64::from(prepared.matches(a, b, &mut scratch));
            }
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "prepared score/matches must not allocate per pair (sink {sink})"
    );
}

#[test]
fn unicode_fallback_path_allocates_nothing() {
    // The DP fallback (non-ASCII chars) must also be allocation-free.
    let rule = MatchRule::new(
        vec![
            WeightedAttr::new(0, 0.7, AttributeSim::Levenshtein { max_chars: None }),
            WeightedAttr::new(1, 0.3, AttributeSim::JaroWinkler),
        ],
        0.8,
    );
    let prepared = PreparedRule::new(rule);
    let mut interner = TokenInterner::new();
    let mut scratch = SimScratch::new();
    let a = prepared.prepare(
        &["café résumé naïve übermäßig".into(), "αβγδε".into()],
        &mut interner,
    );
    let b = prepared.prepare(
        &["cafe resume naive ubermassig".into(), "αβγδζ".into()],
        &mut interner,
    );

    // Warm-up: both entry points, so every scratch buffer reaches its
    // high-water mark before counting starts.
    let mut sink = prepared.score(&a, &b, &mut scratch);
    sink += f64::from(prepared.matches(&a, &b, &mut scratch));
    let before = allocations();
    for _ in 0..1000 {
        sink += prepared.score(&a, &b, &mut scratch);
        sink += f64::from(prepared.matches(&a, &b, &mut scratch));
    }
    assert_eq!(
        allocations() - before,
        0,
        "unicode fallback must not allocate per pair (sink {sink})"
    );
}
