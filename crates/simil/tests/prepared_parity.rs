//! Property-based parity suite: the prepared path must reproduce the
//! string path exactly — bit-identical `score` values and identical
//! `matches` decisions — across all six [`AttributeSim`] kernels,
//! including Unicode inputs and strings past the 64-char Myers limit
//! (which exercise the DP fallback).

use proptest::prelude::*;

use pper_simil::{AttributeSim, MatchRule, PreparedRule, SimScratch, TokenInterner, WeightedAttr};

/// One rule exercising every kernel, with a distinct weight per term and a
/// Levenshtein cap small enough for generated strings to exceed it.
fn six_kernel_rule(threshold: f64) -> MatchRule {
    MatchRule::new(
        vec![
            WeightedAttr::new(
                0,
                0.30,
                AttributeSim::Levenshtein {
                    max_chars: Some(24),
                },
            ),
            WeightedAttr::new(1, 0.20, AttributeSim::JaroWinkler),
            WeightedAttr::new(2, 0.15, AttributeSim::JaccardTokens),
            WeightedAttr::new(3, 0.15, AttributeSim::QGram { q: 2 }),
            WeightedAttr::new(4, 0.10, AttributeSim::Exact),
            WeightedAttr::new(5, 0.10, AttributeSim::Soundex),
        ],
        threshold,
    )
}

/// Assert the full parity contract on one pair of attribute vectors.
fn assert_parity(rule: &MatchRule, a: &[String], b: &[String]) {
    let prepared = PreparedRule::new(rule.clone());
    let mut interner = TokenInterner::new();
    let mut scratch = SimScratch::new();
    let pa = prepared.prepare(a, &mut interner);
    let pb = prepared.prepare(b, &mut interner);

    let string_score = rule.score(a, b);
    let prep_score = prepared.score(&pa, &pb, &mut scratch);
    assert_eq!(
        prep_score.to_bits(),
        string_score.to_bits(),
        "score parity: prepared {prep_score} vs string {string_score} on {a:?} / {b:?}"
    );
    assert_eq!(
        prepared.matches(&pa, &pb, &mut scratch),
        rule.matches(a, b),
        "matches parity on {a:?} / {b:?} (score {string_score}, threshold {})",
        rule.threshold
    );
    // Scratch reuse must not change results: run the same pair again.
    assert_eq!(
        prepared.score(&pa, &pb, &mut scratch).to_bits(),
        string_score.to_bits(),
        "score parity must survive scratch reuse"
    );
}

proptest! {
    // ASCII vectors over all six kernels; token attribute gets spaces,
    // threshold sweeps the full range so both decisions occur.
    #[test]
    fn ascii_vectors_all_kernels(
        a0 in "[a-e ]{0,30}", b0 in "[a-e ]{0,30}",
        a1 in "[a-f]{0,12}", b1 in "[a-f]{0,12}",
        a2 in "[a-c ]{0,20}", b2 in "[a-c ]{0,20}",
        a3 in "[a-d]{0,16}", b3 in "[a-d]{0,16}",
        a4 in "[a-b]{0,3}", b4 in "[a-b]{0,3}",
        a5 in "[a-zA-Z]{0,10}", b5 in "[a-zA-Z]{0,10}",
        threshold in 0.0f64..1.0,
    ) {
        let rule = six_kernel_rule(threshold);
        let a = vec![a0, a1, a2, a3, a4, a5];
        let b = vec![b0, b1, b2, b3, b4, b5];
        assert_parity(&rule, &a, &b);
    }

    // Unicode inputs (the `.` alphabet includes multi-byte scalars) force
    // the Levenshtein DP fallback and exercise char-boundary truncation.
    #[test]
    fn unicode_vectors_all_kernels(
        a0 in ".{0,30}", b0 in ".{0,30}",
        a1 in ".{0,12}", b1 in ".{0,12}",
        a2 in ".{0,16}", b2 in ".{0,16}",
        a3 in ".{0,12}", b3 in ".{0,12}",
        a4 in ".{0,3}", b4 in ".{0,3}",
        a5 in ".{0,8}", b5 in ".{0,8}",
        threshold in 0.0f64..1.0,
    ) {
        let rule = six_kernel_rule(threshold);
        let a = vec![a0, a1, a2, a3, a4, a5];
        let b = vec![b0, b1, b2, b3, b4, b5];
        assert_parity(&rule, &a, &b);
    }

    // Long ASCII strings (> 64 chars) on an uncapped Levenshtein term hit
    // the DP fallback; near the boundary both sides of the 64 limit occur.
    #[test]
    fn myers_fallback_boundary(
        a in "[a-d]{50,90}",
        b in "[a-d]{50,90}",
        threshold in 0.0f64..1.0,
    ) {
        let rule = MatchRule::new(
            vec![WeightedAttr::new(0, 1.0, AttributeSim::Levenshtein { max_chars: None })],
            threshold,
        );
        assert_parity(&rule, &[a], &[b]);
    }

    // Missing-value renormalization: empty strings and short vectors drop
    // terms identically on both paths.
    #[test]
    fn missing_values_renormalize_identically(
        a0 in "[a-c]{0,8}", b0 in "[a-c]{0,8}",
        a1 in "[a-c]{0,8}",
        len_a in 0usize..=6, len_b in 0usize..=6,
        threshold in 0.0f64..1.0,
    ) {
        let rule = six_kernel_rule(threshold);
        let mut a = vec![a0, a1.clone(), String::new(), a1, String::new(), String::new()];
        let mut b = vec![b0.clone(), String::new(), b0.clone(), String::new(), b0, String::new()];
        a.truncate(len_a);
        b.truncate(len_b);
        assert_parity(&rule, &a, &b);
    }

    // The paper's CiteSeerX rule at its real threshold, on strings shaped
    // like near-duplicates — the early-exit hot case.
    #[test]
    fn citeseer_shaped_pairs(
        title in "[a-e ]{5,40}",
        abs in "[a-e ]{0,80}",
        venue in "[a-c]{0,6}",
        typo in "[a-e]{1,3}",
    ) {
        let rule = MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.55, AttributeSim::Levenshtein { max_chars: None }),
                WeightedAttr::new(1, 0.25, AttributeSim::Levenshtein { max_chars: Some(350) }),
                WeightedAttr::new(2, 0.20, AttributeSim::Levenshtein { max_chars: None }),
            ],
            0.82,
        );
        let a = vec![title.clone(), abs.clone(), venue.clone()];
        // A near-duplicate: the title with a small corruption appended.
        let near = vec![format!("{title}{typo}"), abs, venue];
        assert_parity(&rule, &a, &near);
        assert_parity(&rule, &a, &a);
        // And a far pair (reversed title) for the early-reject branch.
        let far = vec![
            title.chars().rev().collect::<String>(),
            String::new(),
            String::new(),
        ];
        assert_parity(&rule, &a, &far);
    }
}

/// Interner sharing across many entities must not perturb results: prepare
/// a batch against one interner and check each pair.
#[test]
fn shared_interner_batch_parity() {
    let rule = six_kernel_rule(0.5);
    let prepared = PreparedRule::new(rule.clone());
    let mut interner = TokenInterner::new();
    let mut scratch = SimScratch::new();
    let vectors: Vec<Vec<String>> = [
        ["john smith", "jon", "a b c", "abcd", "x", "Robert"],
        ["john smyth", "john", "c b a", "abdc", "x", "Rupert"],
        ["completely different", "zzz", "d e f", "qqqq", "y", "Jones"],
        ["", "", "", "", "", ""],
    ]
    .iter()
    .map(|row| row.iter().map(|s| s.to_string()).collect())
    .collect();
    let prepped: Vec<_> = vectors
        .iter()
        .map(|v| prepared.prepare(v, &mut interner))
        .collect();
    for i in 0..vectors.len() {
        for j in 0..vectors.len() {
            assert_eq!(
                prepared
                    .score(&prepped[i], &prepped[j], &mut scratch)
                    .to_bits(),
                rule.score(&vectors[i], &vectors[j]).to_bits(),
                "pair ({i},{j})"
            );
            assert_eq!(
                prepared.matches(&prepped[i], &prepped[j], &mut scratch),
                rule.matches(&vectors[i], &vectors[j]),
                "pair ({i},{j})"
            );
        }
    }
}

/// Thresholds sitting exactly on reachable score values: the borderline
/// recompute path must agree with the string comparison.
#[test]
fn exact_threshold_boundaries() {
    // Two equal-weight Exact terms → reachable scores {0, 0.5, 1}.
    for threshold in [0.0, 0.5, 1.0] {
        let rule = MatchRule::new(
            vec![
                WeightedAttr::new(0, 0.5, AttributeSim::Exact),
                WeightedAttr::new(1, 0.5, AttributeSim::Exact),
            ],
            threshold,
        );
        for (a, b) in [
            (["x", "y"], ["x", "y"]),
            (["x", "y"], ["x", "z"]),
            (["x", "y"], ["w", "z"]),
        ] {
            let a: Vec<String> = a.iter().map(|s| s.to_string()).collect();
            let b: Vec<String> = b.iter().map(|s| s.to_string()).collect();
            assert_parity(&rule, &a, &b);
        }
    }
}
