//! # pper-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI), plus Criterion micro-benchmarks of the substrates.
//!
//! One binary per paper artifact (see `src/bin/`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig8_table3` | Fig. 8 + Table III — ours vs Basic (w ∈ {5,15}, Popcorn sweep) |
//! | `fig9_schedulers` | Fig. 9 — ours vs NoSplit vs LPT at μ ∈ {10,15,20} |
//! | `fig10_scaleup` | Fig. 10 — entities-per-machine sweep on the books dataset |
//! | `fig11_speedup` | Fig. 11 — recall speedup vs machine count |
//!
//! Each binary prints a small table of series points (cost, recall) to
//! stdout and writes machine-readable JSON next to it under `target/experiments/`.
//! Budget knobs are exposed as CLI args: pass `--entities N` to scale the
//! synthetic dataset and `--quick` for a fast smoke run.

use std::io::Write;
use std::path::PathBuf;

use pper_er::metrics::RecallCurve;

/// Parsed common CLI options for experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Synthetic dataset size.
    pub entities: usize,
    /// RNG seed for dataset generation.
    pub seed: u64,
    /// Quick smoke-test mode (tiny dataset, fewer configurations).
    pub quick: bool,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
}

impl ExpOptions {
    /// Parse from `std::env::args`, with the given default entity count.
    pub fn from_args(default_entities: usize) -> Self {
        let mut opts = Self {
            entities: default_entities,
            seed: 42,
            quick: false,
            out_dir: PathBuf::from("target/experiments"),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--entities" => {
                    i += 1;
                    opts.entities = args[i].parse().expect("--entities takes a number");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed takes a number");
                }
                "--quick" => {
                    opts.quick = true;
                    opts.entities = opts.entities.min(2_000);
                }
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(&args[i]);
                }
                other => panic!("unknown argument: {other}"),
            }
            i += 1;
        }
        opts
    }
}

/// One labelled recall-versus-cost series for a figure.
#[derive(Debug, serde::Serialize)]
pub struct Series {
    /// Legend label (e.g. "Basic 0.01" or "Our Approach").
    pub label: String,
    /// `(cost, recall)` samples.
    pub points: Vec<(f64, f64)>,
    /// Final recall of the run.
    pub final_recall: f64,
    /// Total virtual cost of the run.
    pub total_cost: f64,
}

impl Series {
    /// Sample a curve at `steps` points up to `max_cost`.
    pub fn from_curve(
        label: impl Into<String>,
        curve: &RecallCurve,
        max_cost: f64,
        steps: usize,
    ) -> Self {
        Self {
            label: label.into(),
            points: curve.sample(max_cost, steps),
            final_recall: curve.final_recall(),
            total_cost: curve.last_cost(),
        }
    }
}

/// A figure: named collection of series, printed as aligned text and saved
/// as JSON.
#[derive(Debug, serde::Serialize)]
pub struct Figure {
    /// Figure identifier, e.g. "fig8-left".
    pub name: String,
    /// Axis/caption note.
    pub caption: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(name: impl Into<String>, caption: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            caption: caption.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as an aligned text table: one row per sampled cost, one column
    /// per series.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.name, self.caption));
        if self.series.is_empty() {
            out.push_str("(no series)\n");
            return out;
        }
        out.push_str(&format!("{:>12}", "cost"));
        for s in &self.series {
            out.push_str(&format!("  {:>18}", truncate_label(&s.label, 18)));
        }
        out.push('\n');
        let rows = self.series[0].points.len();
        for r in 0..rows {
            out.push_str(&format!("{:>12.0}", self.series[0].points[r].0));
            for s in &self.series {
                match s.points.get(r) {
                    Some(&(_, recall)) => out.push_str(&format!("  {recall:>18.3}")),
                    None => out.push_str(&format!("  {:>18}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>12}", "final"));
        for s in &self.series {
            out.push_str(&format!("  {:>18.3}", s.final_recall));
        }
        out.push('\n');
        out
    }

    /// Print to stdout and persist JSON under `out_dir`.
    pub fn emit(&self, out_dir: &std::path::Path) {
        println!("{}", self.render_text());
        std::fs::create_dir_all(out_dir).expect("create experiment output dir");
        let path = out_dir.join(format!("{}.json", self.name));
        let mut f = std::fs::File::create(&path).expect("create figure json");
        serde_json::to_writer_pretty(&mut f, self).expect("serialize figure");
        writeln!(f).ok();
        eprintln!("wrote {}", path.display());
    }
}

fn truncate_label(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

/// Uniform sampling maximum: the largest total cost across series, so all
/// curves share an x-axis.
pub fn common_max_cost(costs: &[f64]) -> f64 {
    costs.iter().cloned().fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_aligned_rows() {
        let curve = RecallCurve::from_increments(&[(10.0, 5), (20.0, 5)], 10);
        let mut fig = Figure::new("t", "test");
        fig.push(Series::from_curve("a", &curve, 20.0, 4));
        fig.push(Series::from_curve("b", &curve, 20.0, 4));
        let text = fig.render_text();
        assert!(text.contains("== t — test =="));
        assert_eq!(text.lines().count(), 2 + 4 + 1); // header rows + samples + final
    }

    #[test]
    fn series_from_curve_final_values() {
        let curve = RecallCurve::from_increments(&[(5.0, 2), (9.0, 2)], 4);
        let s = Series::from_curve("x", &curve, 10.0, 5);
        assert_eq!(s.final_recall, 1.0);
        assert_eq!(s.total_cost, 9.0);
        assert_eq!(s.points.len(), 5);
    }

    #[test]
    fn max_cost_handles_empty() {
        assert_eq!(common_max_cost(&[]), 1.0);
        assert_eq!(common_max_cost(&[3.0, 7.0, 2.0]), 7.0);
    }
}
