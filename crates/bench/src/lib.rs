//! # pper-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI), plus Criterion micro-benchmarks of the substrates.
//!
//! One binary per paper artifact (see `src/bin/`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig8_table3` | Fig. 8 + Table III — ours vs Basic (w ∈ {5,15}, Popcorn sweep) |
//! | `fig9_schedulers` | Fig. 9 — ours vs NoSplit vs LPT at μ ∈ {10,15,20} |
//! | `fig10_scaleup` | Fig. 10 — entities-per-machine sweep on the books dataset |
//! | `fig11_speedup` | Fig. 11 — recall speedup vs machine count |
//!
//! Each binary prints a small table of series points (cost, recall) to
//! stdout and writes machine-readable JSON next to it under `target/experiments/`.
//! Budget knobs are exposed as CLI args: pass `--entities N` to scale the
//! synthetic dataset and `--quick` for a fast smoke run.

use std::io::Write;
use std::path::PathBuf;

use pper_er::metrics::RecallCurve;

pub mod check;

/// Parsed common CLI options for experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Synthetic dataset size.
    pub entities: usize,
    /// RNG seed for dataset generation.
    pub seed: u64,
    /// Quick smoke-test mode (tiny dataset, fewer configurations).
    pub quick: bool,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
}

impl ExpOptions {
    /// Parse from `std::env::args`, with the given default entity count.
    pub fn from_args(default_entities: usize) -> Self {
        let mut opts = Self {
            entities: default_entities,
            seed: 42,
            quick: false,
            out_dir: PathBuf::from("target/experiments"),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--entities" => {
                    i += 1;
                    opts.entities = args[i].parse().expect("--entities takes a number");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed takes a number");
                }
                "--quick" => {
                    opts.quick = true;
                    opts.entities = opts.entities.min(2_000);
                }
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(&args[i]);
                }
                other => panic!("unknown argument: {other}"),
            }
            i += 1;
        }
        opts
    }
}

/// One labelled recall-versus-cost series for a figure.
#[derive(Debug, serde::Serialize)]
pub struct Series {
    /// Legend label (e.g. "Basic 0.01" or "Our Approach").
    pub label: String,
    /// `(cost, recall)` samples.
    pub points: Vec<(f64, f64)>,
    /// Final recall of the run.
    pub final_recall: f64,
    /// Total virtual cost of the run.
    pub total_cost: f64,
}

impl Series {
    /// Sample a curve at `steps` points up to `max_cost`.
    pub fn from_curve(
        label: impl Into<String>,
        curve: &RecallCurve,
        max_cost: f64,
        steps: usize,
    ) -> Self {
        Self {
            label: label.into(),
            points: curve.sample(max_cost, steps),
            final_recall: curve.final_recall(),
            total_cost: curve.last_cost(),
        }
    }
}

/// A figure: named collection of series, printed as aligned text and saved
/// as JSON.
#[derive(Debug, serde::Serialize)]
pub struct Figure {
    /// Figure identifier, e.g. "fig8-left".
    pub name: String,
    /// Axis/caption note.
    pub caption: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(name: impl Into<String>, caption: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            caption: caption.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as an aligned text table: one row per sampled cost, one column
    /// per series.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.name, self.caption));
        if self.series.is_empty() {
            out.push_str("(no series)\n");
            return out;
        }
        out.push_str(&format!("{:>12}", "cost"));
        for s in &self.series {
            out.push_str(&format!("  {:>18}", truncate_label(&s.label, 18)));
        }
        out.push('\n');
        let rows = self.series[0].points.len();
        for r in 0..rows {
            out.push_str(&format!("{:>12.0}", self.series[0].points[r].0));
            for s in &self.series {
                match s.points.get(r) {
                    Some(&(_, recall)) => out.push_str(&format!("  {recall:>18.3}")),
                    None => out.push_str(&format!("  {:>18}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>12}", "final"));
        for s in &self.series {
            out.push_str(&format!("  {:>18.3}", s.final_recall));
        }
        out.push('\n');
        out
    }

    /// Print to stdout and persist JSON under `out_dir`. An unwritable
    /// output directory surfaces as the error (a long sweep's results
    /// still printed above; the caller decides whether that's fatal).
    pub fn emit(&self, out_dir: &std::path::Path) -> std::io::Result<()> {
        println!("{}", self.render_text());
        // lint:allow(direct_fs) bench result artifact, written outside any job; chaos coverage is not meaningful here
        std::fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{}.json", self.name));
        // lint:allow(direct_fs) bench result artifact, written outside any job; chaos coverage is not meaningful here
        let mut f = std::fs::File::create(&path)?;
        serde_json::to_writer_pretty(&mut f, self).map_err(std::io::Error::other)?;
        writeln!(f)?;
        eprintln!("wrote {}", path.display());
        Ok(())
    }
}

/// One timed measurement inside a [`BenchReport`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BenchRecord {
    /// Measurement identifier, e.g. `"pairs/string"` or `"levenshtein/prepared"`.
    pub name: String,
    /// Number of operations timed.
    pub iterations: u64,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second (`1e9 / ns_per_op`); for pair loops this is
    /// pairs/sec.
    pub ops_per_sec: f64,
}

impl BenchRecord {
    /// Build a record from a total elapsed duration over `iterations` ops.
    pub fn from_total(
        name: impl Into<String>,
        iterations: u64,
        elapsed: std::time::Duration,
    ) -> Self {
        let iters = iterations.max(1);
        let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
        Self {
            name: name.into(),
            iterations: iters,
            ns_per_op,
            ops_per_sec: if ns_per_op > 0.0 {
                1e9 / ns_per_op
            } else {
                0.0
            },
        }
    }

    /// Time `op` for `iterations` calls and build a record.
    pub fn time<O>(name: impl Into<String>, iterations: u64, mut op: impl FnMut() -> O) -> Self {
        let start = std::time::Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(op());
        }
        Self::from_total(name, iterations, start.elapsed())
    }
}

/// A machine-readable micro-benchmark report, persisted as
/// `BENCH_<name>.json` so CI and scripts can track throughput over time.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BenchReport {
    /// Report identifier, e.g. "kernels".
    pub name: String,
    /// What was measured and how.
    pub caption: String,
    /// The measurements.
    pub records: Vec<BenchRecord>,
    /// Free-form derived observations, e.g. "prepared speedup: 4.1x".
    pub notes: Vec<String>,
}

impl BenchReport {
    /// Create an empty report.
    pub fn new(name: impl Into<String>, caption: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            caption: caption.into(),
            records: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a measurement.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// Add a derived observation.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.name, self.caption));
        out.push_str(&format!(
            "{:<32} {:>14} {:>16} {:>12}\n",
            "name", "ns/op", "ops/sec", "iters"
        ));
        for r in &self.records {
            out.push_str(&format!(
                "{:<32} {:>14.1} {:>16.0} {:>12}\n",
                r.name, r.ns_per_op, r.ops_per_sec, r.iterations
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("-- {n}\n"));
        }
        out
    }

    /// Print to stdout and persist as `BENCH_<name>.json` under `out_dir`.
    /// An unwritable output directory surfaces as the error instead of
    /// aborting the process mid-report.
    pub fn emit(&self, out_dir: &std::path::Path) -> std::io::Result<()> {
        println!("{}", self.render_text());
        // lint:allow(direct_fs) bench result artifact, written outside any job; chaos coverage is not meaningful here
        std::fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("BENCH_{}.json", self.name));
        // lint:allow(direct_fs) bench result artifact, written outside any job; chaos coverage is not meaningful here
        let mut f = std::fs::File::create(&path)?;
        serde_json::to_writer_pretty(&mut f, self).map_err(std::io::Error::other)?;
        writeln!(f)?;
        eprintln!("wrote {}", path.display());
        Ok(())
    }
}

fn truncate_label(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

/// Uniform sampling maximum: the largest total cost across series, so all
/// curves share an x-axis.
pub fn common_max_cost(costs: &[f64]) -> f64 {
    costs.iter().cloned().fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_aligned_rows() {
        let curve = RecallCurve::from_increments(&[(10.0, 5), (20.0, 5)], 10);
        let mut fig = Figure::new("t", "test");
        fig.push(Series::from_curve("a", &curve, 20.0, 4));
        fig.push(Series::from_curve("b", &curve, 20.0, 4));
        let text = fig.render_text();
        assert!(text.contains("== t — test =="));
        assert_eq!(text.lines().count(), 2 + 4 + 1); // header rows + samples + final
    }

    #[test]
    fn series_from_curve_final_values() {
        let curve = RecallCurve::from_increments(&[(5.0, 2), (9.0, 2)], 4);
        let s = Series::from_curve("x", &curve, 10.0, 5);
        assert_eq!(s.final_recall, 1.0);
        assert_eq!(s.total_cost, 9.0);
        assert_eq!(s.points.len(), 5);
    }

    #[test]
    fn max_cost_handles_empty() {
        assert_eq!(common_max_cost(&[]), 1.0);
        assert_eq!(common_max_cost(&[3.0, 7.0, 2.0]), 7.0);
    }

    #[test]
    fn bench_record_math() {
        let r = BenchRecord::from_total("x", 4, std::time::Duration::from_nanos(400));
        assert_eq!(r.ns_per_op, 100.0);
        assert_eq!(r.ops_per_sec, 1e7);
        // Zero iterations must not divide by zero.
        let z = BenchRecord::from_total("z", 0, std::time::Duration::from_nanos(10));
        assert_eq!(z.iterations, 1);
    }

    #[test]
    fn bench_record_time_runs_op() {
        let mut calls = 0u64;
        let r = BenchRecord::time("t", 5, || calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(r.iterations, 5);
    }

    #[test]
    fn bench_report_renders_and_emits() {
        let mut rep = BenchReport::new("probe", "unit-test report");
        rep.push(BenchRecord::from_total(
            "a",
            10,
            std::time::Duration::from_micros(1),
        ));
        rep.note("speedup 2.0x");
        let text = rep.render_text();
        assert!(text.contains("== probe — unit-test report =="));
        assert!(text.contains("-- speedup 2.0x"));
        let dir = std::env::temp_dir().join("pper-bench-report-test");
        rep.emit(&dir).unwrap();
        let json = std::fs::read_to_string(dir.join("BENCH_probe.json")).unwrap();
        serde_json::parse_value_str(&json).expect("emitted JSON must parse");
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("speedup 2.0x"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
