//! Perf-regression gate over committed `BENCH_*.json` baselines.
//!
//! CI regenerates the micro-benchmark reports on quick configurations and
//! compares each record's throughput against the committed baseline under
//! `results/`. A record fails when
//! `fresh.ops_per_sec < min_ratio × baseline.ops_per_sec`; a record present
//! in the baseline but missing from the fresh run also fails (renames must
//! update the baseline in the same commit). Records new in the fresh run
//! pass with a note — they gate once committed.
//!
//! The ratio is deliberately loose (CI machines are noisy and shared);
//! the gate exists to catch order-of-magnitude regressions — an
//! accidentally quadratic kernel, a lost fast path — not 10% drift.

use std::path::Path;

use crate::BenchReport;

/// Comparison of one record across baseline and fresh runs.
#[derive(Debug, Clone)]
pub struct RecordCheck {
    /// Record name, e.g. `"pairs/prepared"`.
    pub name: String,
    /// Committed ops/sec.
    pub baseline_ops: f64,
    /// Freshly measured ops/sec.
    pub fresh_ops: f64,
    /// `fresh / baseline` (∞ when the baseline is 0).
    pub ratio: f64,
    /// True when the record clears the gate.
    pub ok: bool,
}

/// Outcome of gating one or more reports.
#[derive(Debug, Default)]
pub struct CheckSummary {
    /// Per-record comparisons across all reports, in report order.
    pub records: Vec<RecordCheck>,
    /// Human-readable failures (regressions, missing records/files).
    pub failures: Vec<String>,
    /// Non-fatal observations (new records not yet in the baseline).
    pub notes: Vec<String>,
}

impl CheckSummary {
    /// True when every gated record passed and nothing was missing.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render an aligned text table of the comparisons.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>8}  {}\n",
            "record", "baseline o/s", "fresh o/s", "ratio", "gate"
        ));
        for r in &self.records {
            out.push_str(&format!(
                "{:<40} {:>14.0} {:>14.0} {:>8.2}  {}\n",
                r.name,
                r.baseline_ops,
                r.fresh_ops,
                r.ratio,
                if r.ok { "ok" } else { "FAIL" }
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("-- note: {n}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("-- FAIL: {f}\n"));
        }
        out
    }
}

/// Compare one fresh report against its baseline, appending to `summary`.
pub fn check_report(
    baseline: &BenchReport,
    fresh: &BenchReport,
    min_ratio: f64,
    summary: &mut CheckSummary,
) {
    for base in &baseline.records {
        let Some(new) = fresh.records.iter().find(|r| r.name == base.name) else {
            summary.failures.push(format!(
                "{}: record \"{}\" is in the baseline but missing from the fresh run",
                baseline.name, base.name
            ));
            continue;
        };
        let ratio = if base.ops_per_sec > 0.0 {
            new.ops_per_sec / base.ops_per_sec
        } else {
            f64::INFINITY
        };
        let ok = ratio >= min_ratio;
        if !ok {
            summary.failures.push(format!(
                "{}: \"{}\" regressed to {:.2}x of baseline ({:.0} → {:.0} ops/sec, floor {min_ratio}x)",
                baseline.name, base.name, ratio, base.ops_per_sec, new.ops_per_sec
            ));
        }
        summary.records.push(RecordCheck {
            name: format!("{}/{}", baseline.name, base.name),
            baseline_ops: base.ops_per_sec,
            fresh_ops: new.ops_per_sec,
            ratio,
            ok,
        });
    }
    for new in &fresh.records {
        if !baseline.records.iter().any(|r| r.name == new.name) {
            summary.notes.push(format!(
                "{}: record \"{}\" is new (not gated until committed to the baseline)",
                fresh.name, new.name
            ));
        }
    }
}

/// Load a `BENCH_<name>.json` report from `dir`.
pub fn load_report(dir: &Path, name: &str) -> Result<BenchReport, String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Gate the named reports: load `BENCH_<name>.json` from both directories
/// and compare record-by-record. A missing file on either side is a
/// failure (the gate must never silently pass because a run was skipped).
pub fn run_check(
    baseline_dir: &Path,
    fresh_dir: &Path,
    reports: &[&str],
    min_ratio: f64,
) -> CheckSummary {
    let mut summary = CheckSummary::default();
    for name in reports {
        match (
            load_report(baseline_dir, name),
            load_report(fresh_dir, name),
        ) {
            (Ok(base), Ok(fresh)) => check_report(&base, &fresh, min_ratio, &mut summary),
            (Err(e), _) => summary.failures.push(format!("baseline {name}: {e}")),
            (_, Err(e)) => summary.failures.push(format!("fresh {name}: {e}")),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchRecord;

    fn report(name: &str, records: &[(&str, f64)]) -> BenchReport {
        let mut rep = BenchReport::new(name, "test");
        for (rec, ops) in records {
            rep.push(BenchRecord {
                name: (*rec).into(),
                iterations: 100,
                ns_per_op: if *ops > 0.0 { 1e9 / ops } else { 0.0 },
                ops_per_sec: *ops,
            });
        }
        rep
    }

    #[test]
    fn passes_within_ratio() {
        let base = report("k", &[("a", 1000.0), ("b", 500.0)]);
        let fresh = report("k", &[("a", 400.0), ("b", 2000.0)]);
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(s.passed(), "{:?}", s.failures);
        assert_eq!(s.records.len(), 2);
        assert!(s.render_text().contains("ok"));
    }

    #[test]
    fn fails_on_injected_regression() {
        let base = report("k", &[("a", 1000.0)]);
        let fresh = report("k", &[("a", 100.0)]); // 0.1x < 0.25x floor
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(!s.passed());
        assert!(s.failures[0].contains("regressed"));
        assert!(s.render_text().contains("FAIL"));
    }

    #[test]
    fn fails_on_missing_record_and_notes_new_ones() {
        let base = report("k", &[("gone", 10.0)]);
        let fresh = report("k", &[("brand-new", 10.0)]);
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(!s.passed());
        assert!(s.failures[0].contains("missing"));
        assert_eq!(s.notes.len(), 1);
    }

    #[test]
    fn zero_baseline_never_divides_by_zero() {
        let base = report("k", &[("z", 0.0)]);
        let fresh = report("k", &[("z", 5.0)]);
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(s.passed());
        assert!(s.records[0].ratio.is_infinite());
    }

    #[test]
    fn end_to_end_over_files() {
        let dir = std::env::temp_dir().join(format!("pper-bench-check-{}", std::process::id()));
        let baseline_dir = dir.join("baseline");
        let fresh_dir = dir.join("fresh");
        std::fs::create_dir_all(&baseline_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();

        report("kernels", &[("pairs", 1000.0)])
            .emit(&baseline_dir)
            .unwrap();
        report("kernels", &[("pairs", 900.0)])
            .emit(&fresh_dir)
            .unwrap();
        let s = run_check(&baseline_dir, &fresh_dir, &["kernels"], 0.25);
        assert!(s.passed(), "{:?}", s.failures);

        // Injected regression must fail the gate.
        report("kernels", &[("pairs", 10.0)])
            .emit(&fresh_dir)
            .unwrap();
        let s = run_check(&baseline_dir, &fresh_dir, &["kernels"], 0.25);
        assert!(!s.passed());

        // A missing fresh file must fail, not pass silently.
        let s = run_check(&baseline_dir, &fresh_dir, &["shuffle"], 0.25);
        assert!(!s.passed());
        std::fs::remove_dir_all(&dir).ok();
    }
}
