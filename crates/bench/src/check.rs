//! Perf-regression gate over committed `BENCH_*.json` baselines.
//!
//! CI regenerates the micro-benchmark reports on quick configurations and
//! compares each record's throughput against the committed baseline under
//! `results/`. A record fails when
//! `fresh.ops_per_sec < min_ratio × baseline.ops_per_sec`; a record present
//! in the baseline but missing from the fresh run also fails (renames must
//! update the baseline in the same commit). Records new in the fresh run
//! pass with a note — they gate once committed.
//!
//! The ratio is deliberately loose (CI machines are noisy and shared);
//! the gate exists to catch order-of-magnitude regressions — an
//! accidentally quadratic kernel, a lost fast path — not 10% drift.

use std::path::Path;

use crate::BenchReport;

/// Comparison of one record across baseline and fresh runs.
#[derive(Debug, Clone)]
pub struct RecordCheck {
    /// Record name, e.g. `"pairs/prepared"`.
    pub name: String,
    /// Committed ops/sec.
    pub baseline_ops: f64,
    /// Freshly measured ops/sec.
    pub fresh_ops: f64,
    /// `fresh / baseline` (∞ when the baseline is 0).
    pub ratio: f64,
    /// True when the record clears the gate.
    pub ok: bool,
}

/// Outcome of gating one or more reports.
#[derive(Debug, Default)]
pub struct CheckSummary {
    /// Per-record comparisons across all reports, in report order.
    pub records: Vec<RecordCheck>,
    /// Human-readable failures (regressions, missing records/files).
    pub failures: Vec<String>,
    /// Non-fatal observations (new records not yet in the baseline).
    pub notes: Vec<String>,
}

impl CheckSummary {
    /// True when every gated record passed and nothing was missing.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render an aligned text table of the comparisons.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>14} {:>14} {:>8}  {}\n",
            "record", "baseline o/s", "fresh o/s", "ratio", "gate"
        ));
        for r in &self.records {
            out.push_str(&format!(
                "{:<40} {:>14.0} {:>14.0} {:>8.2}  {}\n",
                r.name,
                r.baseline_ops,
                r.fresh_ops,
                r.ratio,
                if r.ok { "ok" } else { "FAIL" }
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("-- note: {n}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("-- FAIL: {f}\n"));
        }
        out
    }
}

/// Compare one fresh report against its baseline, appending to `summary`.
pub fn check_report(
    baseline: &BenchReport,
    fresh: &BenchReport,
    min_ratio: f64,
    summary: &mut CheckSummary,
) {
    for base in &baseline.records {
        let Some(new) = fresh.records.iter().find(|r| r.name == base.name) else {
            summary.failures.push(format!(
                "{}: record \"{}\" is in the baseline but missing from the fresh run",
                baseline.name, base.name
            ));
            continue;
        };
        let ratio = if base.ops_per_sec > 0.0 {
            new.ops_per_sec / base.ops_per_sec
        } else {
            f64::INFINITY
        };
        let ok = ratio >= min_ratio;
        if !ok {
            summary.failures.push(format!(
                "{}: \"{}\" regressed to {:.2}x of baseline ({:.0} → {:.0} ops/sec, floor {min_ratio}x)",
                baseline.name, base.name, ratio, base.ops_per_sec, new.ops_per_sec
            ));
        }
        summary.records.push(RecordCheck {
            name: format!("{}/{}", baseline.name, base.name),
            baseline_ops: base.ops_per_sec,
            fresh_ops: new.ops_per_sec,
            ratio,
            ok,
        });
    }
    for new in &fresh.records {
        if !baseline.records.iter().any(|r| r.name == new.name) {
            summary.notes.push(format!(
                "{}: record \"{}\" is new (not gated until committed to the baseline)",
                fresh.name, new.name
            ));
        }
    }
}

/// One intra-report requirement: record `numerator` of report `report`
/// must reach at least `factor ×` the throughput of record `denominator`
/// *in the same fresh run*. Unlike the baseline comparison (which catches
/// drift against a committed snapshot), a requirement pins a relationship
/// that must hold on any machine — e.g. "work-stealing on the skewed
/// workload is at least 0.9× the cursor backend".
///
/// Parsed from `report:numerator>=FACTOR*denominator`, e.g.
/// `exec:skewed/stealing@8>=0.90*skewed/cursor@8`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequireRule {
    /// Report name (`BENCH_<report>.json`).
    pub report: String,
    /// Record whose throughput is being gated.
    pub numerator: String,
    /// Minimum allowed `numerator / denominator` throughput ratio.
    pub factor: f64,
    /// Record the numerator is compared against.
    pub denominator: String,
}

impl RequireRule {
    /// Parse `report:numerator>=FACTOR*denominator`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bad = |why: &str| format!("bad --require rule '{s}': {why}");
        let (report, rest) = s
            .split_once(':')
            .ok_or_else(|| bad("expected 'report:numerator>=FACTOR*denominator'"))?;
        let (numerator, rhs) = rest.split_once(">=").ok_or_else(|| bad("missing '>='"))?;
        let (factor, denominator) = rhs.split_once('*').ok_or_else(|| bad("missing '*'"))?;
        let factor: f64 = factor
            .trim()
            .parse()
            .map_err(|_| bad("factor is not a number"))?;
        if report.trim().is_empty() || numerator.trim().is_empty() || denominator.trim().is_empty()
        {
            return Err(bad("empty report or record name"));
        }
        Ok(Self {
            report: report.trim().to_string(),
            numerator: numerator.trim().to_string(),
            factor,
            denominator: denominator.trim().to_string(),
        })
    }
}

/// Check every requirement that targets `fresh` (by report name),
/// appending to `summary`. A record named by a rule but absent from the
/// report is a failure — a renamed record must not disarm the gate.
pub fn check_requirements(fresh: &BenchReport, rules: &[RequireRule], summary: &mut CheckSummary) {
    let ops = |name: &str| {
        fresh
            .records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.ops_per_sec)
    };
    for rule in rules.iter().filter(|r| r.report == fresh.name) {
        let (num, den) = match (ops(&rule.numerator), ops(&rule.denominator)) {
            (Some(n), Some(d)) => (n, d),
            (n, _) => {
                let missing = if n.is_none() {
                    &rule.numerator
                } else {
                    &rule.denominator
                };
                summary.failures.push(format!(
                    "{}: require rule references record \"{missing}\" missing from the fresh run",
                    fresh.name
                ));
                continue;
            }
        };
        let ratio = if den > 0.0 { num / den } else { f64::INFINITY };
        let ok = ratio >= rule.factor;
        if !ok {
            summary.failures.push(format!(
                "{}: \"{}\" is {:.2}x of \"{}\" ({:.0} vs {:.0} ops/sec), below the required {}x",
                fresh.name, rule.numerator, ratio, rule.denominator, num, den, rule.factor
            ));
        }
        summary.records.push(RecordCheck {
            name: format!(
                "{}: {} >= {}*{}",
                fresh.name, rule.numerator, rule.factor, rule.denominator
            ),
            baseline_ops: den * rule.factor,
            fresh_ops: num,
            ratio,
            ok,
        });
    }
}

/// Load a `BENCH_<name>.json` report from `dir`.
pub fn load_report(dir: &Path, name: &str) -> Result<BenchReport, String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Gate the named reports: load `BENCH_<name>.json` from both directories
/// and compare record-by-record. A missing file on either side is a
/// failure (the gate must never silently pass because a run was skipped).
pub fn run_check(
    baseline_dir: &Path,
    fresh_dir: &Path,
    reports: &[&str],
    min_ratio: f64,
) -> CheckSummary {
    run_check_with_requirements(baseline_dir, fresh_dir, reports, min_ratio, &[])
}

/// [`run_check`] plus intra-report [`RequireRule`]s evaluated against each
/// fresh report. A rule naming a report outside `reports` is a failure —
/// the gate must never silently pass because a run was skipped.
pub fn run_check_with_requirements(
    baseline_dir: &Path,
    fresh_dir: &Path,
    reports: &[&str],
    min_ratio: f64,
    requires: &[RequireRule],
) -> CheckSummary {
    let mut summary = CheckSummary::default();
    for name in reports {
        match (
            load_report(baseline_dir, name),
            load_report(fresh_dir, name),
        ) {
            (Ok(base), Ok(fresh)) => {
                check_report(&base, &fresh, min_ratio, &mut summary);
                check_requirements(&fresh, requires, &mut summary);
            }
            (Err(e), _) => summary.failures.push(format!("baseline {name}: {e}")),
            (_, Err(e)) => summary.failures.push(format!("fresh {name}: {e}")),
        }
    }
    for rule in requires {
        if !reports.contains(&rule.report.as_str()) {
            summary.failures.push(format!(
                "require rule targets report \"{}\" which is not in --reports",
                rule.report
            ));
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchRecord;

    fn report(name: &str, records: &[(&str, f64)]) -> BenchReport {
        let mut rep = BenchReport::new(name, "test");
        for (rec, ops) in records {
            rep.push(BenchRecord {
                name: (*rec).into(),
                iterations: 100,
                ns_per_op: if *ops > 0.0 { 1e9 / ops } else { 0.0 },
                ops_per_sec: *ops,
            });
        }
        rep
    }

    #[test]
    fn passes_within_ratio() {
        let base = report("k", &[("a", 1000.0), ("b", 500.0)]);
        let fresh = report("k", &[("a", 400.0), ("b", 2000.0)]);
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(s.passed(), "{:?}", s.failures);
        assert_eq!(s.records.len(), 2);
        assert!(s.render_text().contains("ok"));
    }

    #[test]
    fn fails_on_injected_regression() {
        let base = report("k", &[("a", 1000.0)]);
        let fresh = report("k", &[("a", 100.0)]); // 0.1x < 0.25x floor
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(!s.passed());
        assert!(s.failures[0].contains("regressed"));
        assert!(s.render_text().contains("FAIL"));
    }

    #[test]
    fn fails_on_missing_record_and_notes_new_ones() {
        let base = report("k", &[("gone", 10.0)]);
        let fresh = report("k", &[("brand-new", 10.0)]);
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(!s.passed());
        assert!(s.failures[0].contains("missing"));
        assert_eq!(s.notes.len(), 1);
    }

    #[test]
    fn zero_baseline_never_divides_by_zero() {
        let base = report("k", &[("z", 0.0)]);
        let fresh = report("k", &[("z", 5.0)]);
        let mut s = CheckSummary::default();
        check_report(&base, &fresh, 0.25, &mut s);
        assert!(s.passed());
        assert!(s.records[0].ratio.is_infinite());
    }

    #[test]
    fn require_rule_parses_and_rejects() {
        let r = RequireRule::parse("exec:skewed/stealing@8>=0.90*skewed/cursor@8").unwrap();
        assert_eq!(r.report, "exec");
        assert_eq!(r.numerator, "skewed/stealing@8");
        assert_eq!(r.factor, 0.90);
        assert_eq!(r.denominator, "skewed/cursor@8");
        for bad in [
            "no-colon>=1*x",
            "exec:no-operator",
            "exec:a>=notanumber*b",
            "exec:a>=1.0",
            ":a>=1*b",
            "exec:>=1*b",
            "exec:a>=1*",
        ] {
            assert!(RequireRule::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn requirements_gate_intra_report_ratios() {
        let fresh = report(
            "exec",
            &[("skewed/stealing@8", 95.0), ("skewed/cursor@8", 100.0)],
        );
        let pass = RequireRule::parse("exec:skewed/stealing@8>=0.90*skewed/cursor@8").unwrap();
        let mut s = CheckSummary::default();
        check_requirements(&fresh, std::slice::from_ref(&pass), &mut s);
        assert!(s.passed(), "{:?}", s.failures);
        assert_eq!(s.records.len(), 1);

        let fail = RequireRule::parse("exec:skewed/stealing@8>=1.20*skewed/cursor@8").unwrap();
        let mut s = CheckSummary::default();
        check_requirements(&fresh, &[fail], &mut s);
        assert!(!s.passed());
        assert!(s.failures[0].contains("below the required"));

        // Rules for other reports are ignored here…
        let other = RequireRule::parse("kernels:a>=1.0*b").unwrap();
        let mut s = CheckSummary::default();
        check_requirements(&fresh, &[other], &mut s);
        assert!(s.passed());

        // …and a missing record must fail, not pass silently.
        let missing = RequireRule::parse("exec:skewed/stealing@8>=0.5*uniform/cursor@8").unwrap();
        let mut s = CheckSummary::default();
        check_requirements(&fresh, &[missing], &mut s);
        assert!(!s.passed());
        assert!(s.failures[0].contains("missing"));
    }

    #[test]
    fn end_to_end_over_files() {
        let dir = std::env::temp_dir().join(format!("pper-bench-check-{}", std::process::id()));
        let baseline_dir = dir.join("baseline");
        let fresh_dir = dir.join("fresh");
        std::fs::create_dir_all(&baseline_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();

        report("kernels", &[("pairs", 1000.0)])
            .emit(&baseline_dir)
            .unwrap();
        report("kernels", &[("pairs", 900.0)])
            .emit(&fresh_dir)
            .unwrap();
        let s = run_check(&baseline_dir, &fresh_dir, &["kernels"], 0.25);
        assert!(s.passed(), "{:?}", s.failures);

        // A require rule naming a report outside --reports must fail.
        let stray = RequireRule::parse("exec:a>=1.0*b").unwrap();
        let s =
            run_check_with_requirements(&baseline_dir, &fresh_dir, &["kernels"], 0.25, &[stray]);
        assert!(!s.passed());
        assert!(s.failures[0].contains("not in --reports"));

        // Injected regression must fail the gate.
        report("kernels", &[("pairs", 10.0)])
            .emit(&fresh_dir)
            .unwrap();
        let s = run_check(&baseline_dir, &fresh_dir, &["kernels"], 0.25);
        assert!(!s.passed());

        // A missing fresh file must fail, not pass silently.
        let s = run_check(&baseline_dir, &fresh_dir, &["shuffle"], 0.25);
        assert!(!s.passed());
        std::fs::remove_dir_all(&dir).ok();
    }
}
