//! Executor-backend benchmark: wall-clock scaling of the three task-dispatch
//! backends (`cursor`, `chunked:K`, `stealing`) across thread counts and
//! workload shapes. Emits `BENCH_exec.json` so `bench_check` can gate
//! scaling regressions in CI.
//!
//! Workloads:
//!
//! * `uniform` — equal-cost tasks; measures raw dispatch overhead and
//!   scaling. No backend should lose here.
//! * `skewed`  — one task dominates (Zipf-ish tail); the shape where
//!   work-stealing rebalances what static chunking cannot.
//! * `tiny`    — thousands of near-empty tasks; the shape where the
//!   historical one-`fetch_add`-per-task cursor (`chunked:1`) pays one
//!   contended RMW per task and the adaptive chunked claim (`cursor`)
//!   amortizes it away.
//! * `spill`   — an end-to-end spilling MapReduce job driven through
//!   `JobConfig::executor`, so the gate also covers the real runtime path.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin bench_exec -- --quick
//! ```

use std::time::Instant;

use pper_bench::{BenchRecord, BenchReport, ExpOptions};
use pper_mapreduce::prelude::*;

const BACKENDS: &[ExecutorKind] = &[
    ExecutorKind::Cursor,
    ExecutorKind::Chunked(1),
    ExecutorKind::Chunked(16),
    ExecutorKind::WorkStealing,
];

const THREADS: &[usize] = &[1, 2, 8];

/// Deterministic integer-mix busy loop (SplitMix64 finalizer); the result
/// feeds `black_box` so the whole loop survives the optimizer.
fn busy(iters: u64) -> u64 {
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..iters {
        x = x.wrapping_add(i).wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
    }
    x
}

/// Time `kind` dispatching `costs.len()` tasks whose per-task busy work is
/// given by `costs`, at `threads` workers.
fn time_dispatch(kind: ExecutorKind, threads: usize, costs: &[u64]) -> std::time::Duration {
    // One warmup keeps thread spawn-up jitter out of the timed run.
    kind.run(costs.len(), threads, &|i| {
        std::hint::black_box(busy(costs[i]));
    });
    let start = Instant::now();
    kind.run(costs.len(), threads, &|i| {
        std::hint::black_box(busy(costs[i]));
    });
    start.elapsed()
}

/// Wordcount-shaped spilling job over a skewed corpus, dispatched through
/// `JobConfig::executor` — the full runtime path (map, spilling shuffle,
/// reduce), not just the raw dispatch loop.
struct WordMapper;
impl Mapper for WordMapper {
    type Input = String;
    type Key = String;
    type Value = u64;
    fn map(&self, line: &String, ctx: &mut TaskContext, out: &mut Emitter<String, u64>) {
        for w in line.split_whitespace() {
            ctx.charge(1.0);
            out.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn reduce(
        &self,
        key: &String,
        values: &[u64],
        ctx: &mut TaskContext,
        out: &mut Vec<(String, u64)>,
    ) {
        ctx.charge(values.len() as f64);
        out.push((key.clone(), values.iter().sum()));
    }
}

fn time_spill_job(kind: ExecutorKind, threads: usize, corpus: &[String]) -> std::time::Duration {
    let mut cfg = JobConfig::new("bench-exec-spill", ClusterSpec::paper(4));
    cfg.worker_threads = Some(threads);
    cfg.executor = kind;
    let spill = ShuffleSpillConfig::new(200);
    let run = || {
        run_job_spilling(&cfg, &WordMapper, &GroupReducer::new(Sum), &spill, corpus)
            .expect("spill job");
    };
    run(); // warmup
    let start = Instant::now();
    run();
    start.elapsed()
}

/// ops_per_sec of the named record, for note-building.
fn ops(report: &BenchReport, name: &str) -> f64 {
    report
        .records
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.ops_per_sec)
        .unwrap_or(0.0)
}

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(0);
    let scale: u64 = if opts.quick { 1 } else { 8 };

    // uniform: 256 equal tasks. skewed: 64 tasks, task 0 carries half the
    // total work. tiny: 4096 near-empty tasks.
    let uniform: Vec<u64> = vec![20_000 * scale; 256];
    let skewed: Vec<u64> = (0..64u64)
        .map(|i| {
            if i == 0 {
                640_000 * scale
            } else {
                10_000 * scale
            }
        })
        .collect();
    let tiny: Vec<u64> = vec![16; 4096];
    let corpus: Vec<String> = (0..400 * scale)
        .map(|i| format!("the of w{} the w{} tail{i}", i % 7, i % 63))
        .collect();

    let mut report = BenchReport::new(
        "exec",
        format!(
            "executor backends × threads {THREADS:?} × workloads \
             (uniform 256 tasks, skewed 64 tasks, tiny 4096 tasks, \
             spilling wordcount {} lines); ops = tasks (lines for spill)",
            corpus.len()
        ),
    );

    for (workload, costs) in [("uniform", &uniform), ("skewed", &skewed), ("tiny", &tiny)] {
        for &kind in BACKENDS {
            for &threads in THREADS {
                let elapsed = time_dispatch(kind, threads, costs);
                let name = format!("{workload}/{}@{threads}", kind.name());
                eprintln!("{name}: {elapsed:?}");
                report.push(BenchRecord::from_total(name, costs.len() as u64, elapsed));
            }
        }
    }
    for &kind in BACKENDS {
        for &threads in THREADS {
            let elapsed = time_spill_job(kind, threads, &corpus);
            let name = format!("spill/{}@{threads}", kind.name());
            eprintln!("{name}: {elapsed:?}");
            report.push(BenchRecord::from_total(name, corpus.len() as u64, elapsed));
        }
    }

    for workload in ["uniform", "skewed", "tiny", "spill"] {
        let cursor = ops(&report, &format!("{workload}/cursor@8"));
        let stealing = ops(&report, &format!("{workload}/stealing@8"));
        let chunked1 = ops(&report, &format!("{workload}/chunked:1@8"));
        if cursor > 0.0 {
            report.note(format!(
                "{workload}@8: stealing/cursor = {:.2}x, chunked:1/cursor = {:.2}x",
                stealing / cursor,
                chunked1 / cursor
            ));
        }
    }
    let s1 = ops(&report, "skewed/stealing@1");
    let s8 = ops(&report, "skewed/stealing@8");
    if s1 > 0.0 {
        report.note(format!("skewed stealing 8-thread scaling: {:.2}x", s8 / s1));
    }

    print!("{}", report.render_text());
    report.emit(&opts.out_dir)?;
    Ok(())
}
