//! Shuffle load balancing: Hash vs BlockSplit vs PairRange on a seeded
//! Zipf-skewed blocking workload (after Kolb, Thor & Rahm, arXiv:1108.1631).
//!
//! The hash baseline routes whole blocks, so the Zipf head block pins one
//! reduce task while the rest idle; the two balancers redistribute the pair
//! workload. All three produce identical matches — the figure reports the
//! per-reduce-task virtual-cost spread (max/mean ratio), the reduce
//! makespan, and the per-task cost histogram for each strategy.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin fig_loadbalance -- --entities 20000
//! ```

use pper_bench::ExpOptions;
use pper_datagen::{SkewedBlocksGen, SkewedRecord};
use pper_mapreduce::{run_pair_job, ClusterSpec, JobConfig, PairStrategy};
use std::io::Write;

#[derive(Debug, serde::Serialize)]
struct StrategyReport {
    strategy: &'static str,
    max_cost: f64,
    mean_cost: f64,
    max_mean_ratio: f64,
    reduce_makespan: f64,
    total_virtual_cost: f64,
    shuffle_records: u64,
    comparisons: u64,
    matches: usize,
    cost_histogram: Vec<usize>,
}

#[derive(Debug, serde::Serialize)]
struct LoadBalanceFigure {
    name: String,
    caption: String,
    entities: usize,
    keys: usize,
    exponent: f64,
    seed: u64,
    machines: usize,
    reduce_tasks: usize,
    strategies: Vec<StrategyReport>,
}

fn matches(a: &SkewedRecord, b: &SkewedRecord) -> bool {
    a.payload % 1000 == b.payload % 1000
}

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(20_000);
    let machines = if opts.quick { 4 } else { 10 };
    let keys = (opts.entities / 40).max(8);
    let exponent = 1.4;

    eprintln!(
        "generating {} records over {} Zipf({exponent}) keys…",
        opts.entities, keys
    );
    let records = SkewedBlocksGen::new(opts.entities, keys, exponent, opts.seed).generate();
    let cfg = JobConfig::new("fig-loadbalance", ClusterSpec::paper(machines));
    let reduce_tasks = cfg.reduce_tasks();

    let mut reports = Vec::new();
    let mut baseline_matches: Option<Vec<(u32, u32)>> = None;
    for strategy in [
        PairStrategy::Hash,
        PairStrategy::BlockSplit,
        PairStrategy::PairRange,
    ] {
        eprintln!("running {}…", strategy.name());
        let report =
            run_pair_job(&cfg, strategy, &records, |r| r.key.clone(), matches).expect("pair job");
        match &baseline_matches {
            None => baseline_matches = Some(report.matches.clone()),
            Some(base) => assert_eq!(
                base,
                &report.matches,
                "{} must find the same matches as the hash baseline",
                strategy.name()
            ),
        }
        let costs = &report.job.reduce_phase.task_costs;
        let max = costs.iter().cloned().fold(0.0_f64, f64::max);
        let mean = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
        reports.push(StrategyReport {
            strategy: strategy.name(),
            max_cost: max,
            mean_cost: mean,
            max_mean_ratio: report.max_mean_ratio(),
            reduce_makespan: report.job.reduce_phase.makespan,
            total_virtual_cost: report.job.total_virtual_cost,
            shuffle_records: report.job.shuffle_records,
            comparisons: report.job.counters.get("pairs_compared"),
            matches: report.matches.len(),
            cost_histogram: report.job.reduce_phase.cost_histogram(10),
        });
    }

    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>14} {:>10}",
        "strategy", "max cost", "mean cost", "max/mean", "makespan", "shuffle"
    );
    for r in &reports {
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>9.2} {:>14.0} {:>10}",
            r.strategy,
            r.max_cost,
            r.mean_cost,
            r.max_mean_ratio,
            r.reduce_makespan,
            r.shuffle_records
        );
    }
    let hash = &reports[0];
    for r in &reports[1..] {
        println!(
            "{} skew improvement over hash: {:.2}x (makespan {:.2}x)",
            r.strategy,
            hash.max_mean_ratio / r.max_mean_ratio,
            hash.reduce_makespan / r.reduce_makespan
        );
    }

    let figure = LoadBalanceFigure {
        name: "fig-loadbalance".into(),
        caption: format!(
            "per-reduce-task cost skew, Hash vs BlockSplit vs PairRange, μ = {machines}"
        ),
        entities: opts.entities,
        keys,
        exponent,
        seed: opts.seed,
        machines,
        reduce_tasks,
        strategies: reports,
    };
    std::fs::create_dir_all(&opts.out_dir)?;
    let path = opts.out_dir.join("fig-loadbalance.json");
    let mut f = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(&mut f, &figure).map_err(std::io::Error::other)?;
    writeln!(f)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
