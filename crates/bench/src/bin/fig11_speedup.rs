//! Fig. 11: recall speedup versus machine count (§VI-B4).
//!
//! For each recall level ρ ∈ {0.1, …, 0.9}, the speedup at μ machines is
//! `t₅(ρ) / t_μ(ρ)` — the cost at which the 5-machine run reaches ρ divided
//! by the cost at which the μ-machine run does. The paper's observations:
//! speedup grows with μ, and is better for *higher* recall values because
//! the fixed preprocessing cost (first job + schedule generation) dominates
//! the early part of the run.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin fig11_speedup -- --entities 30000
//! ```

use pper_bench::{ExpOptions, Figure, Series};
use pper_datagen::BookGen;
use pper_er::{metrics::speedup_at, ErConfig, ProgressiveEr};

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(30_000);
    eprintln!("generating {} book entities…", opts.entities);
    let ds = BookGen::new(opts.entities, opts.seed).generate();

    let machine_counts: &[usize] = if opts.quick {
        &[5, 10]
    } else {
        &[5, 10, 15, 20, 25]
    };
    let recalls: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();

    let mut runs = Vec::new();
    for &machines in machine_counts {
        eprintln!("running with μ = {machines}…");
        let result = ProgressiveEr::new(ErConfig::books(machines)).run(&ds);
        runs.push((machines, result));
    }
    let base = &runs[0].1; // μ = 5 reference

    // One series per recall level: speedup as a function of machine count.
    let mut fig = Figure::new("fig11", "recall speedup relative to 5 machines");
    for &recall in &recalls {
        let points: Vec<(f64, f64)> = runs
            .iter()
            .filter_map(|(machines, result)| {
                speedup_at(&base.curve, &result.curve, recall).map(|s| (*machines as f64, s))
            })
            .collect();
        if points.is_empty() {
            continue;
        }
        let last = points.last().map_or(0.0, |p| p.1);
        fig.push(Series {
            label: format!("Recall = {recall:.1}"),
            points,
            final_recall: recall,
            total_cost: last,
        });
    }
    fig.emit(&opts.out_dir)?;

    println!(
        "{:>10} {:>18} {:>18}",
        "machines", "speedup@0.3", "speedup@0.9"
    );
    for (machines, result) in &runs {
        let s3 = speedup_at(&base.curve, &result.curve, 0.3);
        let s9 = speedup_at(&base.curve, &result.curve, 0.9);
        println!(
            "{:>10} {:>18} {:>18}",
            machines,
            s3.map_or("-".into(), |s| format!("{s:.2}")),
            s9.map_or("-".into(), |s| format!("{s:.2}")),
        );
    }
    Ok(())
}
