//! Fig. 9: tree-scheduler comparison — our GENERATE-SCHEDULE vs NoSplit
//! (ours without tree splitting) vs LPT (longest-processing-time load
//! balancing), at μ ∈ {10, 15, 20} machines (§VI-B2).
//!
//! The block schedule within each task is identical across the three
//! algorithms (utility-sorted, child-before-parent), exactly as in the
//! paper; only the tree schedule differs.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin fig9_schedulers -- --entities 20000
//! ```

use pper_bench::{common_max_cost, ExpOptions, Figure, Series};
use pper_datagen::PubGen;
use pper_er::{ErConfig, ProgressiveEr};
use pper_schedule::TreeScheduler;

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(20_000);
    eprintln!("generating {} publication entities…", opts.entities);
    let ds = PubGen::new(opts.entities, opts.seed).generate();

    let machine_counts: &[usize] = if opts.quick { &[4] } else { &[10, 15, 20] };
    for &machines in machine_counts {
        let mut fig = Figure::new(
            format!("fig9-mu{machines}"),
            format!("duplicate recall vs cost, μ = {machines}"),
        );
        let mut runs = Vec::new();
        for (label, scheduler) in [
            ("LPT", TreeScheduler::Lpt),
            ("NoSplit", TreeScheduler::NoSplit),
            ("Our Algorithm", TreeScheduler::Progressive),
        ] {
            eprintln!("μ={machines}: running {label}…");
            let config = ErConfig::citeseer(machines).with_scheduler(scheduler);
            let result = ProgressiveEr::new(config).run(&ds);
            runs.push((label, result));
        }
        let max_cost =
            common_max_cost(&runs.iter().map(|(_, r)| r.total_cost).collect::<Vec<_>>()) * 0.6;
        for (label, result) in &runs {
            fig.push(Series::from_curve(*label, &result.curve, max_cost, 14));
        }
        fig.emit(&opts.out_dir)?;

        // Quantify the gap like the paper's discussion: cost to reach 0.8.
        for (label, result) in &runs {
            let t = result.curve.time_to_recall(0.8);
            println!(
                "μ={machines} {label:<14} cost-to-0.8 recall: {}",
                t.map_or("never".into(), |c| format!("{c:.0}"))
            );
        }
        println!();
    }
    Ok(())
}
