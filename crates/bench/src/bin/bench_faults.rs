//! Fault-tolerance overhead: what do task re-execution, speculative backup
//! attempts, and checkpointed resume cost on the virtual clock — and what
//! does *disk*-fault recovery cost on the wall clock?
//!
//! Runs the full progressive pipeline clean and under 1 and 3 injected
//! reduce/map failures (mixed flavours: discarded attempts, attempts killed
//! at start, attempts panicking mid-flight), once more with LATE-style
//! speculation enabled, and finally a kill + checkpointed-resume cycle. The
//! duplicate set is asserted invariant in every scenario; the figure
//! reports the recall-vs-cost retardation and the wasted-cost accounting.
//!
//! A second sweep spills the shuffle to disk through a fault-injecting
//! VFS (transient-write retry, corrupt-run quarantine + re-run, ENOSPC
//! degradation to memory) and records the wall-clock overhead of each
//! recovery path as [`BenchRecord`]s, so `bench_check --reports faults`
//! can flag recovery-cost regressions.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin bench_faults -- --entities 12000
//! ```

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use pper_bench::{BenchRecord, ExpOptions};
use pper_datagen::PubGen;
use pper_er::{ErConfig, ErRunResult, ProgressiveEr};
use pper_mapreduce::{
    FaultKind, FaultPlan, FaultVfs, IoFaultPlan, IoOp, ShuffleSpillConfig, SpeculationConfig,
    SpillFullPolicy, TaskKind, Vfs,
};

#[derive(Debug, serde::Serialize)]
struct ScenarioReport {
    scenario: &'static str,
    total_cost: f64,
    cost_overhead_pct: f64,
    final_recall: f64,
    duplicates: usize,
    task_retries: u64,
    wasted_virtual_cost: u64,
    speculative_launched: u64,
    speculative_wins: u64,
    speculative_wasted: u64,
    resume_replay_cost: u64,
    time_to_half_recall: Option<f64>,
}

#[derive(Debug, serde::Serialize)]
struct FaultsFigure {
    name: String,
    caption: String,
    entities: usize,
    seed: u64,
    machines: usize,
    crash_at: f64,
    scenarios: Vec<ScenarioReport>,
    /// Wall-clock cost of the disk-fault recovery paths, in the shape
    /// `bench_check` consumes (the figure doubles as a bench report).
    records: Vec<BenchRecord>,
    /// Derived observations (recovery overhead ratios).
    notes: Vec<String>,
}

fn report(scenario: &'static str, run: &ErRunResult, clean_cost: f64) -> ScenarioReport {
    ScenarioReport {
        scenario,
        total_cost: run.total_cost,
        cost_overhead_pct: (run.total_cost / clean_cost - 1.0) * 100.0,
        final_recall: run.curve.final_recall(),
        duplicates: run.duplicates.len(),
        task_retries: run.counters.get("task_retries"),
        wasted_virtual_cost: run.counters.get("wasted_virtual_cost"),
        speculative_launched: run.counters.get("speculative_launched"),
        speculative_wins: run.counters.get("speculative_wins"),
        speculative_wasted: run.counters.get("speculative_wasted"),
        resume_replay_cost: run.counters.get("resume_replay_cost"),
        time_to_half_recall: run.curve.time_to_recall(0.5),
    }
}

fn fail1() -> FaultPlan {
    FaultPlan::fail_reduce(0, 1)
}

fn fail3() -> FaultPlan {
    FaultPlan::fail_reduce(0, 1)
        .with_crash(TaskKind::Reduce, 1, 1)
        .with_abort(TaskKind::Map, 0, 1, 50.0)
}

/// One reduce task loses its first three attempts nearly at completion —
/// a ~4x straggler, the case LATE speculation exists for.
fn straggler() -> FaultPlan {
    let mut plan = FaultPlan::fail_reduce(0, 3);
    plan.failure_fraction = 0.9;
    plan
}

/// One spilled-shuffle run through a fault-injecting VFS; returns the
/// result and the wall time.
fn spilled_run(
    base: &ErConfig,
    ds: &pper_datagen::Dataset,
    dir: &std::path::Path,
    plan: IoFaultPlan,
    on_full: SpillFullPolicy,
) -> (ErRunResult, std::time::Duration) {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(plan).expect("valid fault plan"));
    let spill = ShuffleSpillConfig::new(40)
        .with_dir(dir)
        .with_vfs(vfs)
        .with_full_policy(on_full);
    let config = base.clone().with_shuffle_spill(spill);
    let start = Instant::now();
    let run = ProgressiveEr::new(config).run(ds);
    (run, start.elapsed())
}

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(12_000);
    let entities = if opts.quick { 1_200 } else { opts.entities };
    let machines = if opts.quick { 2 } else { 5 };

    eprintln!("generating {entities} entities (seed {})…", opts.seed);
    let ds = PubGen::new(entities, opts.seed).generate();
    let base = ErConfig::citeseer(machines);

    eprintln!("clean run…");
    let clean = ProgressiveEr::new(base.clone()).run(&ds);
    let clean_cost = clean.total_cost;

    let mut scenarios = vec![report("clean", &clean, clean_cost)];

    for (name, plan) in [
        ("fail-1", fail1()),
        ("fail-3", fail3()),
        ("straggler-3x", straggler()),
    ] {
        eprintln!("{name}…");
        let mut config = base.clone();
        config.faults = Some(plan);
        let run = ProgressiveEr::new(config).run(&ds);
        assert_eq!(
            run.duplicates, clean.duplicates,
            "{name}: injected failures must not change the duplicate set"
        );
        scenarios.push(report(name, &run, clean_cost));
    }

    eprintln!("straggler-3x + speculation…");
    // Job2's reduce costs are naturally uneven (LPT over whole trees), so
    // use a LATE threshold tight enough to catch the injected straggler.
    let mut config = base.clone().with_speculation(SpeculationConfig {
        slowdown_threshold: 1.2,
    });
    config.faults = Some(straggler());
    let spec_run = ProgressiveEr::new(config).run(&ds);
    assert_eq!(
        spec_run.duplicates, clean.duplicates,
        "speculation must not change the duplicate set"
    );
    scenarios.push(report("straggler+speculation", &spec_run, clean_cost));

    // Kill the resolution mid-flight, resume from the checkpoint.
    let crash_at = if opts.quick { 1_000.0 } else { 4_000.0 };
    eprintln!("crash at {crash_at} + resume…");
    let er = ProgressiveEr::new(base.clone());
    let checkpoint = er.run_to_crash(&ds, crash_at).expect("crash run");
    eprintln!(
        "  checkpoint: {} blocks done, {} remaining, {} duplicates banked",
        checkpoint.blocks_done(),
        checkpoint.blocks_remaining(),
        checkpoint.duplicates_found()
    );
    let resumed = er.resume(&ds, &checkpoint).expect("resume run");
    assert_eq!(
        resumed.duplicates, clean.duplicates,
        "resume must reproduce the duplicate set exactly"
    );
    assert_eq!(
        resumed.total_cost.to_bits(),
        clean.total_cost.to_bits(),
        "resume must land on the identical virtual completion time"
    );
    scenarios.push(report("crash+resume", &resumed, clean_cost));

    println!(
        "{:<20} {:>12} {:>9} {:>7} {:>8} {:>10} {:>8} {:>10}",
        "scenario", "total cost", "ovhd %", "recall", "retries", "wasted", "spec", "replay"
    );
    for s in &scenarios {
        println!(
            "{:<20} {:>12.0} {:>9.2} {:>7.3} {:>8} {:>10} {:>8} {:>10}",
            s.scenario,
            s.total_cost,
            s.cost_overhead_pct,
            s.final_recall,
            s.task_retries,
            s.wasted_virtual_cost,
            s.speculative_wins,
            s.resume_replay_cost
        );
    }

    // ---- Disk-fault recovery sweep: wall-clock overhead ----------------
    let spill_dir = std::env::temp_dir().join(format!("pper-bench-faults-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir)?;
    let disk_cases: [(&str, IoFaultPlan, SpillFullPolicy); 4] = [
        (
            "disk/spill-clean",
            IoFaultPlan::new(),
            SpillFullPolicy::Error,
        ),
        (
            "disk/transient-retry",
            IoFaultPlan::new().with_at(
                IoOp::Write,
                "pper-extsort",
                0,
                FaultKind::Transient { times: 2 },
            ),
            SpillFullPolicy::Error,
        ),
        (
            "disk/corrupt-rerun",
            IoFaultPlan::new().with_at(IoOp::Read, "pper-extsort", 0, FaultKind::CorruptRead),
            SpillFullPolicy::Error,
        ),
        (
            "disk/enospc-degrade",
            IoFaultPlan::new().with_at(IoOp::Write, "pper-extsort", 0, FaultKind::Enospc),
            SpillFullPolicy::InMemory,
        ),
    ];
    let mut records = Vec::new();
    let mut notes = Vec::new();
    let mut clean_wall = None;
    for (name, plan, on_full) in disk_cases {
        eprintln!("{name}…");
        let (run, wall) = spilled_run(&base, &ds, &spill_dir, plan, on_full);
        assert_eq!(
            run.duplicates, clean.duplicates,
            "{name}: disk-fault recovery must not change the duplicate set"
        );
        match name {
            "disk/spill-clean" => clean_wall = Some(wall),
            "disk/transient-retry" => assert!(
                run.counters.get("shuffle_spill_io_retries") > 0,
                "transient fault must be recovered by retry"
            ),
            "disk/corrupt-rerun" => assert!(
                run.counters.get("shuffle_spill_reruns") > 0,
                "corrupt run must trigger a stage re-run"
            ),
            "disk/enospc-degrade" => assert!(
                run.counters.get("shuffle_spill_degraded_partitions") > 0,
                "ENOSPC must degrade a partition to memory"
            ),
            _ => unreachable!(),
        }
        if let Some(base_wall) = clean_wall.filter(|_| name != "disk/spill-clean") {
            notes.push(format!(
                "{name}: {:.2}x wall clock of clean spilled run",
                wall.as_secs_f64() / base_wall.as_secs_f64().max(1e-9)
            ));
        }
        records.push(BenchRecord::from_total(name, 1, wall));
    }
    std::fs::remove_dir_all(&spill_dir).ok();

    let figure = FaultsFigure {
        name: "bench-faults".into(),
        caption: format!(
            "fault-tolerance overhead: retries, speculation, checkpointed resume, μ = {machines}"
        ),
        entities,
        seed: opts.seed,
        machines,
        crash_at,
        scenarios,
        records,
        notes,
    };
    for n in &figure.notes {
        println!("-- {n}");
    }
    std::fs::create_dir_all(&opts.out_dir)?;
    let path = opts.out_dir.join("BENCH_faults.json");
    let mut f = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(&mut f, &figure).map_err(std::io::Error::other)?;
    writeln!(f)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
