//! Kernel benchmark: string-path vs prepared-path pair throughput on the
//! paper's CiteSeerX rule, plus per-kernel ns/op for all six similarity
//! kernels. Emits `BENCH_kernels.json` (pairs/sec, per-kernel ns/op) so CI
//! and scripts can track the prepared fast path over time.
//!
//! The prepared path wins two ways: signatures (char buffers, interned
//! token ids, q-gram multisets, Soundex codes) are built once per entity
//! instead of once per pair, and threshold-aware early exit skips the
//! expensive abstract comparison for pairs whose titles already decide the
//! outcome.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin bench_kernels -- --entities 500
//! ```

use std::time::Instant;

use pper_bench::{BenchRecord, BenchReport, ExpOptions};
use pper_datagen::PubGen;
use pper_er::ErConfig;
use pper_simil::{AttributeSim, MatchRule, PreparedRule, SimScratch, TokenInterner, WeightedAttr};

/// Time one single-term rule on a fixed string pair, both paths.
fn kernel_records(
    label: &str,
    sim: AttributeSim,
    a: &str,
    b: &str,
    iters: u64,
) -> (BenchRecord, BenchRecord) {
    let rule = MatchRule::new(vec![WeightedAttr::new(0, 1.0, sim)], 0.5);
    let va = vec![a.to_string()];
    let vb = vec![b.to_string()];
    let string = BenchRecord::time(format!("{label}/string"), iters, || rule.score(&va, &vb));

    let prepared = PreparedRule::new(rule);
    let mut interner = TokenInterner::new();
    let pa = prepared.prepare(&va, &mut interner);
    let pb = prepared.prepare(&vb, &mut interner);
    let mut scratch = SimScratch::new();
    // Warm the scratch so the timed loop runs at steady state.
    prepared.score(&pa, &pb, &mut scratch);
    let prep = BenchRecord::time(format!("{label}/prepared"), iters, || {
        prepared.score(&pa, &pb, &mut scratch)
    });
    (string, prep)
}

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(400);
    let n = if opts.quick {
        opts.entities.min(150)
    } else {
        opts.entities
    };
    eprintln!("generating {n} publication entities…");
    let ds = PubGen::new(n, opts.seed).generate();
    let rule = ErConfig::citeseer(10).rule;

    let mut report = BenchReport::new(
        "kernels",
        format!("CiteSeerX-rule pair throughput + per-kernel ns/op ({n} entities, all pairs)"),
    );

    // ---- pair throughput: all pairs, string path vs prepared path -------
    let pairs = (n * (n - 1) / 2) as u64;
    eprintln!("timing string path over {pairs} pairs…");
    let start = Instant::now();
    let mut string_matches = 0u64;
    for i in 0..ds.entities.len() {
        for j in (i + 1)..ds.entities.len() {
            if rule.matches(&ds.entities[i].attrs, &ds.entities[j].attrs) {
                string_matches += 1;
            }
        }
    }
    let string_pairs = BenchRecord::from_total("pairs/string", pairs, start.elapsed());

    let prepared = PreparedRule::new(rule.clone());
    let mut interner = TokenInterner::new();
    let start = Instant::now();
    let prepped: Vec<_> = ds
        .entities
        .iter()
        .map(|e| prepared.prepare(&e.attrs, &mut interner))
        .collect();
    let prepare_sigs = BenchRecord::from_total("prepare/entity", n as u64, start.elapsed());

    eprintln!("timing prepared path over {pairs} pairs…");
    let mut scratch = SimScratch::new();
    let start = Instant::now();
    let mut prepared_matches = 0u64;
    for i in 0..prepped.len() {
        for j in (i + 1)..prepped.len() {
            if prepared.matches(&prepped[i], &prepped[j], &mut scratch) {
                prepared_matches += 1;
            }
        }
    }
    let prepared_pairs = BenchRecord::from_total("pairs/prepared", pairs, start.elapsed());

    assert_eq!(
        string_matches, prepared_matches,
        "paths must agree on every match decision"
    );
    let speedup = string_pairs.ns_per_op / prepared_pairs.ns_per_op;
    report.push(string_pairs);
    report.push(prepared_pairs);
    report.push(prepare_sigs);
    report.note(format!(
        "prepared pair speedup: {speedup:.1}x ({pairs} pairs, {string_matches} matches, both paths)"
    ));

    // ---- per-kernel ns/op ------------------------------------------------
    let title_a = &ds.entities[0].attrs[0];
    let title_b = &ds.entities[1].attrs[0];
    let abs_a = &ds.entities[0].attrs[1];
    let abs_b = &ds.entities[1].attrs[1];
    let iters: u64 = if opts.quick { 2_000 } else { 20_000 };
    let cases: [(&str, AttributeSim, &str, &str, u64); 7] = [
        (
            "levenshtein_title",
            AttributeSim::Levenshtein { max_chars: None },
            title_a,
            title_b,
            iters,
        ),
        (
            "levenshtein_abstract350",
            AttributeSim::Levenshtein {
                max_chars: Some(350),
            },
            abs_a,
            abs_b,
            iters / 10,
        ),
        (
            "jaro_winkler",
            AttributeSim::JaroWinkler,
            title_a,
            title_b,
            iters,
        ),
        (
            "jaccard_tokens",
            AttributeSim::JaccardTokens,
            title_a,
            title_b,
            iters,
        ),
        (
            "qgram2",
            AttributeSim::QGram { q: 2 },
            title_a,
            title_b,
            iters,
        ),
        ("exact", AttributeSim::Exact, title_a, title_b, iters),
        ("soundex", AttributeSim::Soundex, title_a, title_b, iters),
    ];
    for (label, sim, a, b, iters) in cases {
        eprintln!("timing kernel {label}…");
        let (s, p) = kernel_records(label, sim, a, b, iters);
        report.push(s);
        report.push(p);
    }

    report.emit(&opts.out_dir)?;
    if speedup < 3.0 && !opts.quick {
        eprintln!("WARNING: prepared speedup {speedup:.1}x below the 3x target");
    }
    Ok(())
}
