//! CI perf-regression gate: compare fresh `BENCH_*.json` reports against
//! the committed baselines.
//!
//! ```text
//! cargo run --release -p pper-bench --bin bench_kernels -- --quick
//! cargo run --release -p pper-bench --bin bench_shuffle -- --quick
//! cargo run --release -p pper-bench --bin bench_check -- \
//!     --baseline-dir results --fresh-dir target/experiments \
//!     --reports kernels,shuffle --min-ratio 0.25
//! ```
//!
//! `--require report:num>=FACTOR*den` (comma-separable) additionally pins
//! intra-report throughput ratios on the fresh run, e.g.
//! `--require exec:skewed/stealing@8>=0.90*skewed/cursor@8`.
//!
//! Exits non-zero when any gated record's fresh throughput falls below
//! `min_ratio ×` its committed baseline, or when an expected report file is
//! missing on either side. See `pper_bench::check` for the comparison
//! rules.

use std::path::PathBuf;
use std::process::ExitCode;

use pper_bench::check::{run_check_with_requirements, RequireRule};

fn main() -> ExitCode {
    let mut baseline_dir = PathBuf::from("results");
    let mut fresh_dir = PathBuf::from("target/experiments");
    let mut min_ratio = 0.25f64;
    let mut reports = String::from("kernels,shuffle");
    let mut requires: Vec<RequireRule> = Vec::new();

    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline-dir" => {
                i += 1;
                baseline_dir = PathBuf::from(&args[i]);
            }
            "--fresh-dir" => {
                i += 1;
                fresh_dir = PathBuf::from(&args[i]);
            }
            "--min-ratio" => {
                i += 1;
                min_ratio = args[i].parse().expect("--min-ratio takes a number");
            }
            "--reports" => {
                i += 1;
                reports = args[i].clone();
            }
            "--require" => {
                i += 1;
                for rule in args[i].split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    requires.push(RequireRule::parse(rule).expect("--require rule"));
                }
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    let names: Vec<&str> = reports
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let summary =
        run_check_with_requirements(&baseline_dir, &fresh_dir, &names, min_ratio, &requires);
    println!(
        "perf gate: {} vs {} (floor {min_ratio}x) over {}",
        fresh_dir.display(),
        baseline_dir.display(),
        reports
    );
    print!("{}", summary.render_text());
    if summary.passed() {
        println!("perf gate passed ({} records)", summary.records.len());
        ExitCode::SUCCESS
    } else {
        println!("perf gate FAILED ({} failures)", summary.failures.len());
        ExitCode::FAILURE
    }
}
