//! Shuffle benchmark: flat grouped partitions vs the original nested-`Vec`
//! driver-thread shuffle, on the pipeline's two shuffle shapes — job 1
//! (String title-prefix blocking keys, Zipf-ish group sizes) and job 2
//! (u64 SQ routing keys). Emits `BENCH_shuffle.json` with records/sec and
//! heap-allocation counts for both paths so CI can track the shuffle over
//! time.
//!
//! The baseline reimplements the pre-rewrite shuffle verbatim — concatenate
//! each partition's buckets, stable `sort_by` on the key, run-length group
//! into `Vec<(K, Vec<V>)>` — so the comparison measures exactly what the
//! rewrite replaced. Timing covers the full lifecycle (build + teardown):
//! the two representations defer different work to drop time, and a job
//! pays both ends either way. A counting `#[global_allocator]`
//! (process-wide) reports allocations per full shuffle for each path.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin bench_shuffle -- --quick
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pper_bench::{BenchRecord, BenchReport, ExpOptions};
use pper_mapreduce::prelude::*;
use pper_mapreduce::shuffle::shuffle_partitions;

/// System allocator wrapper counting every allocation and reallocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only added work is an atomic
// counter bump, which cannot violate any GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged, so the caller's contract with
    // `System.alloc` holds verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // lint:allow(relaxed) standalone event counter: only the final total
        // is read, after the threads join, so no ordering is needed.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's alloc contract; forwarded as-is.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: `ptr`/`layout` come from the matching `alloc` above, which
    // returned a `System` allocation of exactly that layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same pointer and layout the caller received from alloc.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's pointer and layouts unchanged to
    // `System.realloc`, which defines the contract being relied on.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // lint:allow(relaxed) standalone event counter, same as alloc above.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's realloc contract; forwarded as-is.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    // lint:allow(relaxed) read between benchmark phases on the only thread
    // still running; thread::scope joins already ordered prior counts.
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Payload shuffled per record: an entity id plus a word of state.
type Val = (u64, u64);

/// Vocabulary for title-prefix blocking keys. Like real publication titles,
/// keys share long common prefixes, so unequal-key comparisons scan many
/// bytes before deciding — the case the distinct-key sort avoids.
const WORDS: &[&str] = &[
    "parallel",
    "progressive",
    "approach",
    "entity",
    "resolution",
    "using",
    "mapreduce",
    "scalable",
    "distributed",
    "query",
    "processing",
    "large",
    "databases",
    "systems",
    "learning",
    "analysis",
];

/// Deterministic splitmix-style stream of Zipf-ish block ids (a few huge
/// blocks, a long tail of small ones — the blocking-key skew the paper's
/// load-balancing section is about).
fn block_ids(records: usize) -> impl Iterator<Item = (usize, u64, u64)> {
    let distinct = (records / 24).max(16) as u64;
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..records).map(move |i| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Square the uniform draw so small ids (hot keys) recur.
        let u = (x % 10_000) as f64 / 10_000.0;
        let id = ((u * u) * distinct as f64) as u64;
        (i, id, x)
    })
}

/// `maps × partitions` buckets of keyed records, exactly what the map phase
/// hands the shuffle.
fn make_buckets<K: std::hash::Hash>(
    records: usize,
    maps: usize,
    partitions: usize,
    key_of: impl Fn(u64) -> K,
) -> Vec<Vec<Vec<(K, Val)>>> {
    let mut out: Vec<Vec<Vec<(K, Val)>>> = (0..maps)
        .map(|_| (0..partitions).map(|_| Vec::new()).collect())
        .collect();
    for (i, id, x) in block_ids(records) {
        let key = key_of(id);
        let p = (pper_mapreduce::fxhash::hash_one(&key) % partitions as u64) as usize;
        out[i % maps][p].push((key, (i as u64, x)));
    }
    out
}

/// Job-1 shape: String title-prefix blocking key.
fn job1_key(id: u64) -> String {
    format!(
        "{} {} {} {:05}",
        WORDS[(id % 4) as usize],
        WORDS[(id / 4 % 4) as usize],
        WORDS[(id / 16 % 16) as usize],
        id
    )
}

/// The pre-rewrite shuffle, verbatim: concatenate, stable sort by key,
/// run-length group into nested Vecs. One partition at a time on the
/// calling thread.
fn naive_shuffle<K: Ord>(per_partition: Vec<Vec<Vec<(K, Val)>>>) -> Vec<Vec<(K, Vec<Val>)>> {
    per_partition
        .into_iter()
        .map(|buckets| {
            let mut records: Vec<(K, Val)> = Vec::new();
            for b in buckets {
                records.extend(b);
            }
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let mut groups: Vec<(K, Vec<Val>)> = Vec::new();
            for (k, v) in records {
                match groups.last_mut() {
                    Some((gk, gvs)) if *gk == k => gvs.push(v),
                    _ => groups.push((k, vec![v])),
                }
            }
            groups
        })
        .collect()
}

/// Transpose map-task buckets into per-partition bucket lists (the plain
/// routing path of the runtime — Vec handle moves only).
fn transpose<K>(buckets: Vec<Vec<Vec<(K, Val)>>>, partitions: usize) -> Vec<Vec<Vec<(K, Val)>>> {
    let mut per: Vec<Vec<Vec<(K, Val)>>> = (0..partitions).map(|_| Vec::new()).collect();
    for m in buckets {
        for (p, b) in m.into_iter().enumerate() {
            per[p].push(b);
        }
    }
    per
}

struct Measured {
    elapsed: std::time::Duration,
    allocs: u64,
    groups: usize,
    records: usize,
}

/// Time one full shuffle lifecycle: build the grouped structure AND tear it
/// down. Teardown is included because the two representations defer
/// different work to drop time — the nested path frees one Vec per group at
/// teardown — and a job pays both ends either way.
fn measure<K, G>(
    buckets: Vec<Vec<Vec<(K, Val)>>>,
    partitions: usize,
    run: impl Fn(Vec<Vec<Vec<(K, Val)>>>) -> (usize, usize, G),
) -> Measured {
    let per = transpose(buckets, partitions);
    let a0 = allocations();
    let start = Instant::now();
    let (groups, records, out) = run(per);
    drop(out);
    let elapsed = start.elapsed();
    let allocs = allocations() - a0;
    Measured {
        elapsed,
        allocs,
        groups,
        records,
    }
}

/// Measure one workload shape (job-1 Strings or job-2 u64s) through both
/// paths and all thread counts, appending records and notes to the report.
fn bench_shape<K: Ord + Eq + std::hash::Hash + Send + Sync + Clone>(
    report: &mut BenchReport,
    label: &str,
    records: usize,
    maps: usize,
    partitions: usize,
    key_of: impl Fn(u64) -> K + Copy,
) {
    // Best of three repetitions per configuration: the workload is rebuilt
    // each time, so the minimum is the cleanest page-fault-free run.
    let reps = 3;
    let naive = (0..reps)
        .map(|_| {
            measure(
                make_buckets(records, maps, partitions, key_of),
                partitions,
                |per| {
                    let out = naive_shuffle(per);
                    let groups = out.iter().map(|p| p.len()).sum();
                    let recs = out
                        .iter()
                        .flat_map(|p| p.iter().map(|(_, vs)| vs.len()))
                        .sum();
                    (groups, recs, out)
                },
            )
        })
        .min_by_key(|m| m.elapsed)
        .unwrap();
    report.push(BenchRecord::from_total(
        format!("{label}/nested-vec"),
        naive.records as u64,
        naive.elapsed,
    ));

    let mut best: Option<(usize, std::time::Duration)> = None;
    let mut flat1 = None;
    for threads in [1usize, 4, 8] {
        let flat = (0..reps)
            .map(|_| {
                measure(
                    make_buckets(records, maps, partitions, key_of),
                    partitions,
                    |per| {
                        let out = shuffle_partitions(per, threads);
                        let groups = out.iter().map(|p| p.num_groups()).sum();
                        let recs = out.iter().map(|p| p.num_records()).sum();
                        (groups, recs, out)
                    },
                )
            })
            .min_by_key(|m| m.elapsed)
            .unwrap();
        assert_eq!(flat.groups, naive.groups, "flat/naive group-count mismatch");
        assert_eq!(
            flat.records, naive.records,
            "flat/naive record-count mismatch"
        );
        report.push(BenchRecord::from_total(
            format!("{label}/flat-t{threads}"),
            flat.records as u64,
            flat.elapsed,
        ));
        if best.is_none() || flat.elapsed < best.unwrap().1 {
            best = Some((threads, flat.elapsed));
        }
        if threads == 1 {
            flat1 = Some(flat);
        }
    }
    let flat1 = flat1.unwrap();
    let (best_t, best_e) = best.unwrap();
    let alloc_ratio = naive.allocs as f64 / flat1.allocs.max(1) as f64;
    report.note(format!(
        "{label}: groups={} records={} (identical across paths)",
        naive.groups, naive.records
    ));
    report.note(format!(
        "{label}: allocations/shuffle: nested-vec={} flat={} ({alloc_ratio:.1}x fewer)",
        naive.allocs, flat1.allocs
    ));
    report.note(format!(
        "{label}: wall-clock speedup {:.2}x at 1 thread, {:.2}x best (t{best_t})",
        naive.elapsed.as_secs_f64() / flat1.elapsed.as_secs_f64(),
        naive.elapsed.as_secs_f64() / best_e.as_secs_f64(),
    ));
}

/// End-to-end job on the job-1 workload shape, to print the per-phase
/// wall-clock split ([`WallPhases`]) the shuffle rewrite optimizes.
fn end_to_end(records: usize) -> WallPhases {
    struct KeyedMapper;
    impl Mapper for KeyedMapper {
        type Input = (String, Val);
        type Key = String;
        type Value = Val;
        fn map(&self, r: &(String, Val), _ctx: &mut TaskContext, out: &mut Emitter<String, Val>) {
            out.emit(r.0.clone(), r.1);
        }
    }
    struct Count;
    impl Reducer for Count {
        type Key = String;
        type Value = Val;
        type Output = (String, u64);
        fn reduce(
            &self,
            key: &String,
            values: &[Val],
            ctx: &mut TaskContext,
            out: &mut Vec<(String, u64)>,
        ) {
            ctx.charge(values.len() as f64);
            out.push((key.clone(), values.len() as u64));
        }
    }
    let input: Vec<(String, Val)> = make_buckets(records, 1, 1, job1_key)
        .into_iter()
        .flatten()
        .flatten()
        .collect();
    let cfg = JobConfig::new("bench-shuffle-e2e", ClusterSpec::paper(4));
    // lint:allow(panic_path) bench harness: a failed run invalidates the measurement, so crash with the error
    let r = run_job(&cfg, &KeyedMapper, &GroupReducer::new(Count), &input).unwrap();
    r.wall_phases
}

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(500_000);
    let records = if opts.quick {
        opts.entities.min(40_000)
    } else {
        opts.entities
    };
    let maps = 8;
    let partitions = 8;

    let mut report = BenchReport::new(
        "shuffle",
        format!(
            "flat grouped partitions vs nested-Vec driver shuffle \
             ({records} records, {maps} map tasks, {partitions} partitions, Zipf-ish keys; \
             lifecycle = build + teardown)"
        ),
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    report.note(format!(
        "host has {cores} CPU core(s); with 1 core the flat-tN rows measure \
         algorithmic gains only — thread fan-out needs multi-core hardware"
    ));

    eprintln!("job-1 shape: String title-prefix keys…");
    bench_shape(
        &mut report,
        "job1-string",
        records,
        maps,
        partitions,
        job1_key,
    );
    eprintln!("job-2 shape: u64 SQ keys…");
    bench_shape(&mut report, "job2-u64", records, maps, partitions, |id| id);

    // ---- end-to-end wall-phase split -------------------------------------
    let phases = end_to_end(records / 4);
    report.note(format!(
        "e2e wall phases (quarter workload): map={:?} shuffle={:?} reduce={:?}",
        phases.map, phases.shuffle, phases.reduce
    ));

    report.emit(&opts.out_dir)?;
    Ok(())
}
