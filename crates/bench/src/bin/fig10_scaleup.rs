//! Fig. 10: entities-per-machine sweep on the books dataset (§VI-B3).
//!
//! The paper fixes the dataset (30M books) and varies the number of
//! machines μ ∈ {20, 10, 5}, so θ = |D|/μ grows across the sub-figures;
//! ours is compared against Basic with Popcorn thresholds
//! {0.05, 0.005, 0.0005} under the PSNM mechanism. The paper's observation:
//! Basic can lead very early (our preprocessing job + schedule generation
//! cost is up-front), but ours wins overall, and the gap widens with θ.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin fig10_scaleup -- --entities 30000
//! ```

use pper_bench::{common_max_cost, ExpOptions, Figure, Series};
use pper_datagen::BookGen;
use pper_er::{BasicApproach, BasicConfig, ErConfig, ProgressiveEr};

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(30_000);
    eprintln!("generating {} book entities…", opts.entities);
    let ds = BookGen::new(opts.entities, opts.seed).generate();

    let machine_counts: &[usize] = if opts.quick { &[4] } else { &[20, 10, 5] };
    let thresholds: &[f64] = if opts.quick {
        &[0.005]
    } else {
        &[0.05, 0.005, 0.0005]
    };

    for &machines in machine_counts {
        let theta = opts.entities / machines;
        let er = ErConfig::books(machines);
        eprintln!("μ={machines} (θ={theta}): running our approach…");
        let ours = ProgressiveEr::new(er.clone()).run(&ds);

        let mut basics = Vec::new();
        for &t in thresholds {
            eprintln!("μ={machines}: running Basic {t}…");
            let r = BasicApproach::new(er.clone(), BasicConfig::popcorn(15, t))
                .run(&ds)
                .expect("basic run");
            basics.push((t, r));
        }

        let mut costs = vec![ours.total_cost];
        costs.extend(basics.iter().map(|(_, r)| r.total_cost));
        let max_cost = common_max_cost(&costs) * 0.7;

        let mut fig = Figure::new(
            format!("fig10-theta{theta}"),
            format!("duplicate recall vs cost, θ = {theta} entities/machine (μ = {machines})"),
        );
        fig.push(Series::from_curve(
            "Our Approach",
            &ours.curve,
            max_cost,
            14,
        ));
        for (t, r) in &basics {
            fig.push(Series::from_curve(
                format!("Basic {t}"),
                &r.curve,
                max_cost,
                14,
            ));
        }
        fig.emit(&opts.out_dir)?;

        println!(
            "μ={machines} θ={theta}: ours overhead ends at cost {:.0}; recall there: ours {:.3} vs best basic {:.3}",
            ours.overhead_cost,
            ours.recall_at(ours.overhead_cost * 1.2),
            basics
                .iter()
                .map(|(_, r)| r.recall_at(ours.overhead_cost * 1.2))
                .fold(0.0, f64::max),
        );
        println!();
    }
    Ok(())
}
