//! Fig. 8 + Table III: our approach vs the Basic baseline on the
//! publications dataset.
//!
//! The paper's setup (§VI-B1): 10 machines, CiteSeerX, SN mechanism; Basic
//! is run with windows w ∈ {5, 15} and a sweep of Popcorn thresholds plus
//! "Basic F" (no stopping). Three sub-figures plot duplicate recall versus
//! execution cost; Table III reports every Basic configuration's final
//! recall and total execution cost.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin fig8_table3 -- --entities 20000
//! ```

use std::time::Instant;

use pper_bench::{common_max_cost, BenchRecord, BenchReport, ExpOptions, Figure, Series};
use pper_datagen::PubGen;
use pper_er::{BasicApproach, BasicConfig, ErConfig, ErRunResult, ProgressiveEr};

/// Wall-clock pairs/sec record for one finished run.
fn run_record(
    name: impl Into<String>,
    run: &ErRunResult,
    elapsed: std::time::Duration,
) -> BenchRecord {
    BenchRecord::from_total(name, run.counters.get("pairs_compared"), elapsed)
}

fn main() -> std::io::Result<()> {
    let opts = ExpOptions::from_args(20_000);
    let machines = 10;
    eprintln!("generating {} publication entities…", opts.entities);
    let ds = PubGen::new(opts.entities, opts.seed).generate();
    let er = ErConfig::citeseer(machines);
    let mut bench = BenchReport::new(
        "fig8_table3",
        format!(
            "wall-clock pair throughput per configuration ({} entities, μ={machines})",
            opts.entities
        ),
    );

    eprintln!("running our approach…");
    let started = Instant::now();
    let ours = ProgressiveEr::new(er.clone()).run(&ds);
    bench.push(run_record("ours", &ours, started.elapsed()));

    let thresholds_w15_a = [0.1, 0.07, 0.04, 0.01];
    let thresholds_w15_b = [0.007, 0.004, 0.001, 0.00001];
    let thresholds_w5 = [0.07, 0.01, 0.007, 0.004];
    let all_w15: Vec<f64> = thresholds_w15_a
        .iter()
        .chain(&thresholds_w15_b)
        .copied()
        .collect();

    let run_basic = |window: usize, threshold: Option<f64>| -> (ErRunResult, std::time::Duration) {
        let cfg = match threshold {
            Some(t) => BasicConfig::popcorn(window, t),
            None => BasicConfig::full(window),
        };
        eprintln!(
            "running Basic w={} threshold={:?}…",
            window,
            threshold.map_or("F".into(), |t| t.to_string())
        );
        let started = Instant::now();
        let run = BasicApproach::new(er.clone(), cfg)
            .run(&ds)
            .expect("basic run");
        (run, started.elapsed())
    };

    let (basic_f_15, t) = run_basic(15, None);
    bench.push(run_record("basic-F-w15", &basic_f_15, t));
    let (basic_f_5, t) = run_basic(5, None);
    bench.push(run_record("basic-F-w5", &basic_f_5, t));
    let time_sweep = |window: usize, thresholds: &[f64], bench: &mut BenchReport| {
        thresholds
            .iter()
            .map(|&t| {
                let (run, elapsed) = run_basic(window, Some(t));
                bench.push(run_record(format!("basic-{t}-w{window}"), &run, elapsed));
                (t, run)
            })
            .collect::<Vec<(f64, ErRunResult)>>()
    };
    let runs_w15 = if opts.quick {
        time_sweep(15, &[0.01], &mut bench)
    } else {
        time_sweep(15, &all_w15, &mut bench)
    };
    let runs_w5 = if opts.quick {
        time_sweep(5, &[0.01], &mut bench)
    } else {
        time_sweep(5, &thresholds_w5, &mut bench)
    };

    // ---- Fig. 8: three sub-figures, recall vs cost ----------------------
    let steps = 14;
    let subfigs: [(&str, Vec<f64>, usize); 3] = [
        ("fig8-left", thresholds_w15_a.to_vec(), 15),
        ("fig8-middle", thresholds_w15_b.to_vec(), 15),
        ("fig8-right", thresholds_w5.to_vec(), 5),
    ];
    for (name, thresholds, window) in subfigs {
        let runs: &Vec<(f64, ErRunResult)> = if window == 15 { &runs_w15 } else { &runs_w5 };
        let basic_f = if window == 15 {
            &basic_f_15
        } else {
            &basic_f_5
        };
        let mut costs: Vec<f64> = vec![ours.total_cost, basic_f.total_cost];
        costs.extend(runs.iter().map(|(_, r)| r.total_cost));
        // The paper plots only the first x seconds; show up to the earliest
        // point where both families have finished climbing.
        let max_cost = common_max_cost(&costs) * 0.6;

        let mut fig = Figure::new(
            name,
            format!("duplicate recall vs cost, Basic w={window} (μ={machines})"),
        );
        fig.push(Series::from_curve(
            "Basic F",
            &basic_f.curve,
            max_cost,
            steps,
        ));
        for (t, r) in runs.iter().filter(|(t, _)| thresholds.contains(t)) {
            fig.push(Series::from_curve(
                format!("Basic {t}"),
                &r.curve,
                max_cost,
                steps,
            ));
        }
        fig.push(Series::from_curve(
            "Our Approach",
            &ours.curve,
            max_cost,
            steps,
        ));
        fig.emit(&opts.out_dir)?;
    }

    // ---- Table III: final recall + total execution cost -----------------
    println!("== table3 — Basic final recall / total cost ==");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14}",
        "threshold", "recall w=5", "recall w=15", "cost w=5", "cost w=15"
    );
    let lookup = |runs: &Vec<(f64, ErRunResult)>, t: f64| -> Option<(f64, f64)> {
        runs.iter()
            .find(|(x, _)| (*x - t).abs() < 1e-12)
            .map(|(_, r)| (r.curve.final_recall(), r.total_cost))
    };
    for &t in &all_w15 {
        let w5 = lookup(&runs_w5, t);
        let w15 = lookup(&runs_w15, t);
        println!(
            "{:>12} {:>12} {:>12} {:>14} {:>14}",
            t,
            w5.map_or("-".into(), |v| format!("{:.2}", v.0)),
            w15.map_or("-".into(), |v| format!("{:.2}", v.0)),
            w5.map_or("-".into(), |v| format!("{:.0}", v.1)),
            w15.map_or("-".into(), |v| format!("{:.0}", v.1)),
        );
    }
    println!(
        "{:>12} {:>12.2} {:>12.2} {:>14.0} {:>14.0}",
        "F",
        basic_f_5.curve.final_recall(),
        basic_f_15.curve.final_recall(),
        basic_f_5.total_cost,
        basic_f_15.total_cost
    );
    println!(
        "{:>12} {:>12} {:>12.2} {:>14} {:>14.0}   <- ours",
        "ours",
        "-",
        ours.curve.final_recall(),
        "-",
        ours.total_cost
    );

    bench.emit(&opts.out_dir)?;
    Ok(())
}
