//! Ablations over the design choices DESIGN.md calls out: the weighting
//! function, the split batch size `b`, the cost-vector resolution `|C|`,
//! the duplicate-probability model, the progressive mechanism `M`, and the
//! root window.
//!
//! Each table reports time-to-recall milestones, `Qty` (Eq. 1, linear
//! weights), and final recall on the publications dataset.
//!
//! ```sh
//! cargo run --release -p pper-bench --bin ablations -- --entities 12000
//! ```

use pper_bench::ExpOptions;
use pper_datagen::PubGen;
use pper_er::{
    metrics::quality, ErConfig, ErRunResult, MechanismKind, ProbModelKind, ProgressiveEr,
};
use pper_schedule::Weighting;

fn qty(result: &ErRunResult) -> f64 {
    let max = result.total_cost;
    let costs: Vec<f64> = (1..=10).map(|i| max * i as f64 / 10.0).collect();
    let weights: Vec<f64> = (1..=10).map(|i| 1.0 - (i - 1) as f64 / 10.0).collect();
    quality(&result.curve, &costs, &weights)
}

fn row(label: &str, result: &ErRunResult) {
    let t = |r: f64| {
        result
            .curve
            .time_to_recall(r)
            .map_or("-".to_string(), |c| format!("{c:.0}"))
    };
    println!(
        "{label:<26} {:>10} {:>10} {:>8.3} {:>8.3} {:>12.0}",
        t(0.5),
        t(0.8),
        qty(result),
        result.curve.final_recall(),
        result.total_cost,
    );
}

fn header(title: &str) {
    println!("\n== {title} ==");
    println!(
        "{:<26} {:>10} {:>10} {:>8} {:>8} {:>12}",
        "variant", "t(0.5)", "t(0.8)", "Qty", "final", "total"
    );
}

fn main() {
    let opts = ExpOptions::from_args(12_000);
    eprintln!("generating {} publication entities…", opts.entities);
    let ds = PubGen::new(opts.entities, opts.seed).generate();
    let train = PubGen::new(opts.entities / 6, opts.seed + 1).generate();
    let machines = 4;
    let base = || ErConfig::citeseer(machines);

    header("A1: weighting function W(·)");
    for (label, weighting) in [
        ("uniform", Weighting::Uniform),
        ("linear (default)", Weighting::Linear),
        ("exponential 0.5", Weighting::Exponential { decay: 0.5 }),
    ] {
        let r = ProgressiveEr::new(base().with_weighting(weighting)).run(&ds);
        row(label, &r);
    }

    header("A2: split batch size b");
    for b in [1usize, 4, 16] {
        let mut config = base();
        config.schedule.split_batch = b;
        let r = ProgressiveEr::new(config).run(&ds);
        row(&format!("b = {b}"), &r);
    }

    header("A3: cost-vector buckets |C|");
    for c in [4usize, 10, 20] {
        let mut config = base();
        config.schedule.num_buckets = c;
        let r = ProgressiveEr::new(config).run(&ds);
        row(&format!("|C| = {c}"), &r);
    }

    header("A4: duplicate-probability model");
    let r = ProgressiveEr::new(base()).run(&ds);
    row("heuristic (default)", &r);
    let mut config = base();
    config.prob = ProbModelKind::train(&train, &config.families);
    let r = ProgressiveEr::new(config).run(&ds);
    row("trained (§VI-A4)", &r);

    header("A5: progressive mechanism M");
    for mechanism in [
        MechanismKind::Sn,
        MechanismKind::Psnm,
        MechanismKind::Hierarchy,
    ] {
        let mut config = base();
        config.mechanism = mechanism;
        let r = ProgressiveEr::new(config).run(&ds);
        row(mechanism.name(), &r);
    }

    header("A6: root window w");
    for w in [10usize, 15, 20] {
        let mut config = base();
        config.policy.window_root = w;
        let r = ProgressiveEr::new(config).run(&ds);
        row(&format!("w_root = {w}"), &r);
    }
}
