//! Paper-scale out-of-core resolution benchmark (§VI-A2's OL-Books sizes).
//!
//! Streams a books dataset straight into a `pper-store` columnar file
//! (entities never exist in memory as a `Vec<Entity>`), re-opens it
//! mmap-backed, blocks it through a disk-spilling external sort under a
//! fixed memory budget, and resolves each block with a PSNM window driven
//! by the `pper_simil::BlockScorer` batch kernels reading attribute views
//! zero-copy out of the mapping.
//!
//! ```text
//! bench_scale --entities 1000000 --budget-mib 512
//! bench_scale --entities 30000000 --budget-mib 512   # paper scale, ~tens of GB of disk
//! bench_scale --quick                                 # CI smoke (50k entities)
//! ```
//!
//! Emits `BENCH_scale.json` under `--out` (default `target/experiments`)
//! with entities/sec for each stage plus peak RSS, spill, and recall notes.

use std::path::PathBuf;
use std::time::Instant;

use pper_bench::{BenchRecord, BenchReport};
use pper_datagen::BookGen;
use pper_mapreduce::ExternalSorter;
use pper_simil::{BlockScorer, PreparedRule, TokenInterner};
use pper_store::{EntityStore, StoreBuilder};

/// Estimated resident bytes per `(String, u32)` sort record (String header
/// plus small-prefix allocation plus tuple padding), used only to convert
/// the byte budget into the sorter's run capacity.
const SORT_RECORD_BYTES: u64 = 128;

/// PSNM window width within each block (the paper's w=5 books default).
const WINDOW: usize = 5;

struct ScaleOptions {
    entities: usize,
    seed: u64,
    budget_mib: u64,
    out_dir: PathBuf,
    store_path: Option<PathBuf>,
    keep_store: bool,
    quick: bool,
}

impl ScaleOptions {
    fn from_args() -> Self {
        let mut opts = Self {
            entities: 1_000_000,
            seed: 42,
            budget_mib: 512,
            out_dir: PathBuf::from("target/experiments"),
            store_path: None,
            keep_store: false,
            quick: false,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--entities" => {
                    i += 1;
                    opts.entities = args[i].parse().expect("--entities takes a number");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed takes a number");
                }
                "--budget-mib" => {
                    i += 1;
                    opts.budget_mib = args[i].parse().expect("--budget-mib takes a number");
                }
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(&args[i]);
                }
                "--store" => {
                    i += 1;
                    opts.store_path = Some(PathBuf::from(&args[i]));
                }
                "--keep-store" => opts.keep_store = true,
                "--quick" => {
                    opts.quick = true;
                    opts.entities = opts.entities.min(50_000);
                }
                other => panic!("unknown argument: {other}"),
            }
            i += 1;
        }
        opts
    }
}

/// Blocking key: lowercased 3-char title prefix, mirroring the books
/// preset's main blocking function (`PrefixFunction { attr: 0, chars: 3 }`).
fn title_prefix_key(title: &str) -> String {
    title.chars().take(3).collect::<String>().to_lowercase()
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`);
/// 0 where procfs is unavailable.
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    parse_vm_hwm(&status).unwrap_or(0)
}

fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> std::io::Result<()> {
    let opts = ScaleOptions::from_args();
    let budget_bytes = opts.budget_mib * 1024 * 1024;
    // The sorter gets a 1/16 slice of the budget: the rest is headroom for
    // the streaming generator, the per-block window working set, and the
    // page cache behind the mmap. 512 MiB → 262,144 records per run, so a
    // 1M-entity sort spills into 4 on-disk runs.
    let run_capacity = ((budget_bytes / 16) / SORT_RECORD_BYTES).max(1024) as usize;

    std::fs::create_dir_all(&opts.out_dir)?;
    let store_path = opts
        .store_path
        .clone()
        .unwrap_or_else(|| opts.out_dir.join(format!("scale-{}.store", opts.entities)));

    let mut report = BenchReport::new(
        "scale",
        format!(
            "out-of-core books resolution: {} entities, {} MiB budget, seed {}",
            opts.entities, opts.budget_mib, opts.seed
        ),
    );

    // Stage 1 — stream generation into the columnar store. O(1) memory: at
    // most one duplicate cluster is buffered at a time on either side.
    let gen = BookGen::new(opts.entities, opts.seed);
    let start = Instant::now();
    let mut stream = gen.records();
    let mut builder = StoreBuilder::create(&store_path, BookGen::schema().len(), true)
        .map_err(std::io::Error::other)?;
    for (cluster, attrs) in stream.by_ref() {
        builder
            .push(&attrs, Some(cluster))
            .map_err(std::io::Error::other)?;
    }
    let true_pairs = stream.duplicate_pairs();
    let summary = builder.finish().map_err(std::io::Error::other)?;
    report.push(BenchRecord::from_total(
        "generate_store",
        summary.entities,
        start.elapsed(),
    ));
    report.note(format!(
        "store: {} entities, {} arena bytes, {} file bytes",
        summary.entities, summary.arena_bytes, summary.file_bytes
    ));

    // Stage 2 — re-open mmap-backed; attribute reads are views into the
    // mapping from here on.
    let store = EntityStore::open(&store_path).expect("open store");
    report.note(format!("store backend: {}", store.backend()));

    // Stage 3 — out-of-core blocking: (title-prefix key, entity id) pairs
    // through a budgeted external sort.
    let start = Instant::now();
    let mut sorter: ExternalSorter<(String, u32)> = ExternalSorter::new(run_capacity);
    if let Some(dir) = store_path.parent() {
        sorter = sorter.with_dir(dir);
    }
    for e in 0..store.len() {
        let title = store.attr(e, 0).expect("title attr");
        sorter
            .push((title_prefix_key(title), e as u32))
            .expect("push sort record");
    }
    let spill_runs = sorter.spilled_runs();
    let spill_bytes = sorter.spilled_bytes();
    let blocking_elapsed = start.elapsed();
    report.push(BenchRecord::from_total(
        "blocking_extsort",
        store.len(),
        blocking_elapsed,
    ));
    report.note(format!(
        "sorter: run_capacity {run_capacity} records, {spill_runs} spilled runs, {spill_bytes} spilled bytes"
    ));

    // Stage 4 — stream the sorted pairs, cut blocks at key boundaries, and
    // resolve each block with a title-sorted PSNM window over the batch
    // kernels. Only the current block's ids plus a (WINDOW+1)-entity
    // prepared ring are ever resident.
    let rule = PreparedRule::new(pper_er::ErConfig::books(1).rule);
    let start = Instant::now();
    let mut stream = sorter.into_stream().expect("start sorted stream");
    let mut block: Vec<u32> = Vec::new();
    let mut current_key: Option<String> = None;
    let mut stats = ResolveStats::default();
    let mut resolver = WindowResolver::new(&rule);
    for item in stream.by_ref() {
        let (key, id) = item.expect("sorted stream read");
        if current_key.as_deref() != Some(key.as_str()) {
            resolver.resolve_block(&store, &mut block, &mut stats);
            current_key = Some(key);
        }
        block.push(id);
    }
    resolver.resolve_block(&store, &mut block, &mut stats);
    report.push(BenchRecord::from_total(
        "resolve_window",
        stats.comparisons.max(1),
        start.elapsed(),
    ));

    let recall = if true_pairs > 0 {
        stats.true_matches as f64 / true_pairs as f64
    } else {
        0.0
    };
    report.note(format!(
        "resolution: {} comparisons, {} matches ({} true), window {WINDOW}",
        stats.comparisons, stats.matches, stats.true_matches
    ));
    report.note(format!(
        "recall {recall:.3} of {true_pairs} ground-truth pairs (window-bounded)"
    ));
    report.note(format!("peak RSS: {} KiB", peak_rss_kib()));
    report.note(format!(
        "budget: {} MiB{}",
        opts.budget_mib,
        if opts.quick { " (quick mode)" } else { "" }
    ));

    report.emit(&opts.out_dir)?;
    drop(store);
    if !opts.keep_store {
        std::fs::remove_file(&store_path).ok();
    }
    Ok(())
}

#[derive(Default)]
struct ResolveStats {
    comparisons: u64,
    matches: u64,
    true_matches: u64,
}

/// Rolling PSNM window over one block: entities are prepared at most once
/// each and at most `WINDOW + 1` prepared entities are alive at a time.
struct WindowResolver<'r> {
    rule: &'r PreparedRule,
    scorer: BlockScorer,
    interner: TokenInterner,
    decisions: Vec<bool>,
}

impl<'r> WindowResolver<'r> {
    fn new(rule: &'r PreparedRule) -> Self {
        Self {
            rule,
            scorer: BlockScorer::new(),
            interner: TokenInterner::new(),
            decisions: Vec::new(),
        }
    }

    /// Resolve and clear one block of entity ids.
    fn resolve_block(
        &mut self,
        store: &EntityStore,
        block: &mut Vec<u32>,
        stats: &mut ResolveStats,
    ) {
        if block.len() < 2 {
            block.clear();
            return;
        }
        // Deterministic PSNM order: sort by (title, id) with titles read
        // straight from the mapping.
        block.sort_unstable_by(|&a, &b| {
            store
                .attr_bytes(u64::from(a), 0)
                .cmp(store.attr_bytes(u64::from(b), 0))
                .then(a.cmp(&b))
        });

        let mut row: Vec<&str> = Vec::new();
        let mut window = Vec::with_capacity(WINDOW + 1);
        let mut fill = 0usize;
        for i in 0..block.len() {
            // Top up the ring so it holds prepared entities for
            // block[i..=i+WINDOW].
            while fill < block.len() && fill <= i + WINDOW {
                store
                    .row(u64::from(block[fill]), &mut row)
                    .expect("entity row");
                window.push(self.rule.prepare_refs(&row, &mut self.interner));
                fill += 1;
            }
            let probe = &window[0];
            let cands = &window[1..];
            if !cands.is_empty() {
                self.scorer
                    .matches_block(self.rule, probe, cands, &mut self.decisions);
                stats.comparisons += cands.len() as u64;
                for (j, &hit) in self.decisions.iter().enumerate() {
                    if hit {
                        stats.matches += 1;
                        let a = store.label(u64::from(block[i]));
                        let b = store.label(u64::from(block[i + 1 + j]));
                        if a.is_some() && a == b {
                            stats.true_matches += 1;
                        }
                    }
                }
            }
            window.remove(0);
        }
        block.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_key_mirrors_blocking_preset() {
        assert_eq!(title_prefix_key("The Great War"), "the");
        assert_eq!(title_prefix_key("Ab"), "ab");
        assert_eq!(title_prefix_key(""), "");
        assert_eq!(title_prefix_key("ÉCOLE x"), "éco");
    }

    #[test]
    fn vm_hwm_parser() {
        let status = "Name:\tbench\nVmPeak:\t  100 kB\nVmHWM:\t  4321 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(4321));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
    }
}
