//! Throughput of progressive blocking: forest construction and the
//! overlap/statistics pass of the first MR job.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pper_blocking::{build_forests, compute_signatures, presets, DatasetStats};
use pper_datagen::PubGen;

fn bench_forest_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest_build");
    for n in [1_000usize, 5_000, 20_000] {
        let ds = PubGen::new(n, 1).generate();
        let families = presets::citeseer_families();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| build_forests(black_box(&ds), black_box(&families)))
        });
    }
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let ds = PubGen::new(20_000, 2).generate();
    let families = presets::citeseer_families();
    c.bench_function("signatures/20k", |b| {
        b.iter(|| compute_signatures(black_box(&ds), black_box(&families)))
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_stats");
    g.sample_size(20);
    for n in [2_000usize, 10_000] {
        let ds = PubGen::new(n, 3).generate();
        let families = presets::citeseer_families();
        let forests = build_forests(&ds, &families);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DatasetStats::from_forests(black_box(&ds), &families, &forests))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_forest_build, bench_signatures, bench_stats);
criterion_main!(benches);
