//! End-to-end wall-clock cost of the full pipeline vs the Basic baseline —
//! small sizes, since Criterion repeats each run many times.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pper_datagen::PubGen;
use pper_er::{BasicApproach, BasicConfig, ErConfig, ProgressiveEr};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for n in [1_000usize, 4_000] {
        let ds = PubGen::new(n, 9).generate();
        g.bench_with_input(BenchmarkId::new("ours", n), &n, |b, _| {
            b.iter(|| ProgressiveEr::new(ErConfig::citeseer(2)).run(black_box(&ds)))
        });
        g.bench_with_input(BenchmarkId::new("basic_f15", n), &n, |b, _| {
            b.iter(|| {
                BasicApproach::new(ErConfig::citeseer(2), BasicConfig::full(15))
                    .run(black_box(&ds))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
