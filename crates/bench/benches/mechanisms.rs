//! Mechanism comparison: how quickly SN-with-hint and PSNM surface the
//! duplicates of one block, and their raw pair-enumeration overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pper_progressive::{Mechanism, PairSource, Psnm, SnHint};

/// Synthetic block: `n` entities, every run of `cluster` adjacent ids is a
/// duplicate cluster in sort order.
fn is_dup(cluster: u32, a: u32, b: u32) -> bool {
    a / cluster == b / cluster
}

fn drain<M: Mechanism>(mech: &M, n: u32, window: usize, cluster: u32) -> u64 {
    let mut run = mech.start((0..n).collect(), window);
    let mut found = 0;
    while let Some((a, b)) = run.next_pair() {
        let dup = is_dup(cluster, a, b);
        run.feedback(dup);
        found += u64::from(dup);
    }
    found
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanism_drain");
    for n in [256u32, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("sn", n), &n, |b, &n| {
            b.iter(|| drain(&SnHint, black_box(n), 15, 4))
        });
        g.bench_with_input(BenchmarkId::new("psnm", n), &n, |b, &n| {
            b.iter(|| drain(&Psnm::default(), black_box(n), 15, 4))
        });
    }
    g.finish();
}

/// Duplicates found within the first `budget` comparisons — the
/// progressiveness microcosm of the two mechanisms.
fn early_duplicates<M: Mechanism>(mech: &M, n: u32, budget: usize) -> u64 {
    let mut run = mech.start((0..n).collect(), 30);
    let mut found = 0;
    for _ in 0..budget {
        let Some((a, b)) = run.next_pair() else { break };
        let dup = is_dup(5, a, b);
        run.feedback(dup);
        found += u64::from(dup);
    }
    found
}

fn bench_early_recall(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanism_early_budget2k");
    g.bench_function("sn", |b| {
        b.iter(|| early_duplicates(&SnHint, black_box(2048), 2000))
    });
    g.bench_function("psnm", |b| {
        b.iter(|| early_duplicates(&Psnm::default(), black_box(2048), 2000))
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration, bench_early_recall);
criterion_main!(benches);
