//! MapReduce runtime overhead: shuffle throughput and spill-codec cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pper_mapreduce::prelude::*;
use pper_mapreduce::spill::SpillStore;

struct KeyMod;
impl Mapper for KeyMod {
    type Input = u64;
    type Key = u64;
    type Value = u64;
    fn map(&self, input: &u64, _ctx: &mut TaskContext, out: &mut Emitter<u64, u64>) {
        out.emit(input % 1024, *input);
    }
}

struct Count;
impl Reducer for Count {
    type Key = u64;
    type Value = u64;
    type Output = (u64, u64);
    fn reduce(&self, key: &u64, values: &[u64], _ctx: &mut TaskContext, out: &mut Vec<(u64, u64)>) {
        out.push((*key, values.len() as u64));
    }
}

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("mr_shuffle");
    g.sample_size(20);
    for n in [10_000u64, 100_000] {
        let inputs: Vec<u64> = (0..n).collect();
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let cfg = JobConfig::new("bench", ClusterSpec::paper(4));
            b.iter(|| {
                run_job(
                    black_box(&cfg),
                    &KeyMod,
                    &GroupReducer::new(Count),
                    black_box(&inputs),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_spill_codec(c: &mut Criterion) {
    let records: Vec<(u32, String)> = (0..10_000u32)
        .map(|i| (i, format!("entity-{i}-title-progressive-er")))
        .collect();
    c.bench_function("spill/10k_records", |b| {
        b.iter(|| {
            let mut store = SpillStore::new();
            for r in &records {
                store.push(black_box(r));
            }
            let back: Vec<(u32, String)> = store.drain().unwrap();
            back.len()
        })
    });
}

criterion_group!(benches, bench_shuffle, bench_spill_codec);
criterion_main!(benches);
