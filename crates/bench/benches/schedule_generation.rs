//! Cost of generating the progressive schedule (§IV): estimation,
//! identify/split iterations, and partitioning — the up-front overhead the
//! paper's Fig. 10/11 discussion attributes the early-recall lag to.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pper_blocking::{build_forests, presets, DatasetStats};
use pper_datagen::PubGen;
use pper_mapreduce::CostModel;
use pper_progressive::LevelPolicy;
use pper_schedule::{
    generate_schedule, EstimationContext, HeuristicProb, ScheduleConfig, TreeScheduler,
};

fn stats_for(n: usize) -> (DatasetStats, usize) {
    let ds = PubGen::new(n, 5).generate();
    let families = presets::citeseer_families();
    let forests = build_forests(&ds, &families);
    (
        DatasetStats::from_forests(&ds, &families, &forests),
        ds.len(),
    )
}

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate_schedule");
    g.sample_size(20);
    let policy = LevelPolicy::citeseer();
    let cm = CostModel::default();
    let prob = HeuristicProb::default();
    for n in [2_000usize, 10_000, 30_000] {
        let (stats, size) = stats_for(n);
        let ctx = EstimationContext {
            dataset_size: size,
            policy: &policy,
            cost_model: &cm,
            prob: &prob,
        };
        for (name, scheduler) in [
            ("ours", TreeScheduler::Progressive),
            ("nosplit", TreeScheduler::NoSplit),
            ("lpt", TreeScheduler::Lpt),
        ] {
            let cfg = ScheduleConfig::new(20).with_scheduler(scheduler);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| generate_schedule(black_box(&stats), &ctx, &cfg))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
