//! Micro-benchmarks of the similarity kernels — the per-pair resolve cost
//! that dominates the paper's cost model (§IV-B).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pper_simil::{
    jaccard_tokens, jaro_winkler, levenshtein, levenshtein_bounded, qgram_similarity,
};

const TITLE_A: &str = "parallel progressive approach to entity resolution using mapreduce";
const TITLE_B: &str = "paralel progresive aproach to entity resolution using map reduce";

fn bench_levenshtein(c: &mut Criterion) {
    let mut g = c.benchmark_group("levenshtein");
    for len in [16usize, 64, 256] {
        let a: String = TITLE_A.chars().cycle().take(len).collect();
        let b: String = TITLE_B.chars().cycle().take(len).collect();
        g.bench_with_input(BenchmarkId::new("full", len), &len, |bench, _| {
            bench.iter(|| levenshtein(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("bounded8", len), &len, |bench, _| {
            bench.iter(|| levenshtein_bounded(black_box(&a), black_box(&b), 8))
        });
    }
    g.finish();
}

fn bench_other_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| jaro_winkler(black_box(TITLE_A), black_box(TITLE_B)))
    });
    g.bench_function("jaccard_tokens", |b| {
        b.iter(|| jaccard_tokens(black_box(TITLE_A), black_box(TITLE_B)))
    });
    g.bench_function("qgram2", |b| {
        b.iter(|| qgram_similarity(black_box(TITLE_A), black_box(TITLE_B), 2))
    });
    g.finish();
}

fn bench_match_rule(c: &mut Criterion) {
    use pper_simil::{AttributeSim, MatchRule, WeightedAttr};
    let rule = MatchRule::new(
        vec![
            WeightedAttr::new(0, 0.55, AttributeSim::Levenshtein { max_chars: None }),
            WeightedAttr::new(
                1,
                0.25,
                AttributeSim::Levenshtein {
                    max_chars: Some(350),
                },
            ),
            WeightedAttr::new(2, 0.20, AttributeSim::Levenshtein { max_chars: None }),
        ],
        0.82,
    );
    let a = vec![TITLE_A.to_string(), TITLE_A.repeat(6), "ICDE".to_string()];
    let b = vec![TITLE_B.to_string(), TITLE_B.repeat(6), "ICDE".to_string()];
    c.bench_function("match_rule/citeseer", |bench| {
        bench.iter(|| rule.matches(black_box(&a), black_box(&b)))
    });
}

criterion_group!(
    benches,
    bench_levenshtein,
    bench_other_kernels,
    bench_match_rule
);
criterion_main!(benches);
