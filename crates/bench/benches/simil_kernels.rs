//! Micro-benchmarks of the similarity kernels — the per-pair resolve cost
//! that dominates the paper's cost model (§IV-B).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pper_simil::{
    jaccard_tokens, jaro_winkler, levenshtein, levenshtein_bounded, qgram_similarity, AttributeSim,
    MatchRule, PreparedRule, SimScratch, TokenInterner, WeightedAttr,
};

const TITLE_A: &str = "parallel progressive approach to entity resolution using mapreduce";
const TITLE_B: &str = "paralel progresive aproach to entity resolution using map reduce";

fn bench_levenshtein(c: &mut Criterion) {
    let mut g = c.benchmark_group("levenshtein");
    for len in [16usize, 64, 256] {
        let a: String = TITLE_A.chars().cycle().take(len).collect();
        let b: String = TITLE_B.chars().cycle().take(len).collect();
        g.bench_with_input(BenchmarkId::new("full", len), &len, |bench, _| {
            bench.iter(|| levenshtein(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("bounded8", len), &len, |bench, _| {
            bench.iter(|| levenshtein_bounded(black_box(&a), black_box(&b), 8))
        });
    }
    g.finish();
}

fn bench_other_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| jaro_winkler(black_box(TITLE_A), black_box(TITLE_B)))
    });
    g.bench_function("jaccard_tokens", |b| {
        b.iter(|| jaccard_tokens(black_box(TITLE_A), black_box(TITLE_B)))
    });
    g.bench_function("qgram2", |b| {
        b.iter(|| qgram_similarity(black_box(TITLE_A), black_box(TITLE_B), 2))
    });
    g.finish();
}

fn bench_match_rule(c: &mut Criterion) {
    let rule = MatchRule::new(
        vec![
            WeightedAttr::new(0, 0.55, AttributeSim::Levenshtein { max_chars: None }),
            WeightedAttr::new(
                1,
                0.25,
                AttributeSim::Levenshtein {
                    max_chars: Some(350),
                },
            ),
            WeightedAttr::new(2, 0.20, AttributeSim::Levenshtein { max_chars: None }),
        ],
        0.82,
    );
    let a = vec![TITLE_A.to_string(), TITLE_A.repeat(6), "ICDE".to_string()];
    let b = vec![TITLE_B.to_string(), TITLE_B.repeat(6), "ICDE".to_string()];
    c.bench_function("match_rule/citeseer", |bench| {
        bench.iter(|| rule.matches(black_box(&a), black_box(&b)))
    });

    // Prepared fast path on the same pair: signatures built once outside
    // the timed loop, per-pair work is allocation-free with early exit.
    let prepared = PreparedRule::new(rule);
    let mut interner = TokenInterner::new();
    let pa = prepared.prepare(&a, &mut interner);
    let pb = prepared.prepare(&b, &mut interner);
    let mut scratch = SimScratch::new();
    c.bench_function("match_rule/citeseer-prepared", |bench| {
        bench.iter(|| prepared.matches(black_box(&pa), black_box(&pb), &mut scratch))
    });
    c.bench_function("match_rule/citeseer-prepared-score", |bench| {
        bench.iter(|| prepared.score(black_box(&pa), black_box(&pb), &mut scratch))
    });
}

fn bench_prepared_levenshtein(c: &mut Criterion) {
    // Myers bit-parallel vs two-row DP on an ASCII pair under 64 chars:
    // single-term rules isolate the kernel on both paths.
    let rule = MatchRule::new(
        vec![WeightedAttr::new(
            0,
            1.0,
            AttributeSim::Levenshtein {
                max_chars: Some(48),
            },
        )],
        0.5,
    );
    let a = vec![TITLE_A.to_string()];
    let b = vec![TITLE_B.to_string()];
    let prepared = PreparedRule::new(rule.clone());
    let mut interner = TokenInterner::new();
    let pa = prepared.prepare(&a, &mut interner);
    let pb = prepared.prepare(&b, &mut interner);
    let mut scratch = SimScratch::new();
    let mut g = c.benchmark_group("levenshtein48");
    g.bench_function("string", |bench| {
        bench.iter(|| rule.score(black_box(&a), black_box(&b)))
    });
    g.bench_function("prepared-myers", |bench| {
        bench.iter(|| prepared.score(black_box(&pa), black_box(&pb), &mut scratch))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_levenshtein,
    bench_other_kernels,
    bench_match_rule,
    bench_prepared_levenshtein
);
criterion_main!(benches);
