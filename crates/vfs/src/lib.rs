//! Virtual filesystem seam for the out-of-core path.
//!
//! PR 3 made *compute* faults injectable (`FaultPlan`: task panics, worker
//! crashes); this crate does the same for *storage*. Every out-of-core
//! consumer in the workspace — the external sorter's spill runs, the
//! shuffle spill path, the columnar store builder/reader, and the journal
//! `FileStore` — routes its file operations through the [`Vfs`] trait
//! instead of `std::fs` (enforced by pper-lint rule D5). Production code
//! uses the passthrough [`StdVfs`]; chaos suites substitute a
//! [`fault::FaultVfs`] driven by a deterministic [`fault::IoFaultPlan`].
//!
//! Failures carry a typed taxonomy, [`IoFault`], with three classes that
//! drive three different recovery ladders:
//!
//! * [`IoFault::Transient`] — EINTR-style blips worth retrying in place
//!   with bounded, deterministic backoff ([`retry_io`]).
//! * [`IoFault::Permanent`] — ENOSPC, EACCES, fsync failure: retrying is
//!   pointless; callers degrade (spill falls back in-memory, mmap falls
//!   back to the heap reader) or surface the typed error.
//! * [`IoFault::Corrupt`] — CRC-checked payload mismatch on read-back:
//!   the artifact is quarantined and the producing stage re-runs.
//!
//! The backoff is *accounted, not slept*: like the rest of the simulator,
//! retries charge deterministic virtual backoff units instead of consulting
//! the wall clock (pper-lint rule D2 forbids `Instant::now` here anyway).

pub mod fault;
mod mmap;

pub use fault::{FaultKind, FaultVfs, IoFaultPlan, IoFaultRule};
pub use mmap::Mmap;

use std::io;
use std::path::Path;
use std::sync::Arc;

/// Which filesystem operation a fault was observed on. Also the key an
/// [`IoFaultRule`] matches against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoOp {
    Create,
    Open,
    Read,
    Write,
    Fsync,
    Rename,
    Remove,
    Truncate,
    Mmap,
    List,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IoOp::Create => "create",
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
            IoOp::Remove => "remove",
            IoOp::Truncate => "truncate",
            IoOp::Mmap => "mmap",
            IoOp::List => "list",
        };
        f.write_str(s)
    }
}

/// What failed, where, and why — shared payload of every [`IoFault`] class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFaultInfo {
    /// The operation that failed.
    pub op: IoOp,
    /// Path the operation targeted (display form; empty when unknown).
    pub path: String,
    /// Human-readable cause.
    pub detail: String,
    /// True when the cause is disk exhaustion (ENOSPC) — the signal the
    /// spill path uses to engage its in-memory fallback.
    pub disk_full: bool,
}

/// Typed storage-fault taxonomy. The class, not the errno, is what callers
/// dispatch on: transient → retry, permanent → degrade or surface, corrupt
/// → quarantine and re-run the producer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoFault {
    /// Worth retrying in place (EINTR/EAGAIN-style blips, injected
    /// transient faults).
    Transient(IoFaultInfo),
    /// Retrying cannot help (ENOSPC, EACCES, fsync failure, missing file).
    Permanent(IoFaultInfo),
    /// The bytes came back but fail integrity checks (CRC mismatch,
    /// truncated frame, torn artifact).
    Corrupt(IoFaultInfo),
}

impl IoFault {
    fn info_new(op: IoOp, path: &Path, detail: impl Into<String>) -> IoFaultInfo {
        IoFaultInfo {
            op,
            path: path.display().to_string(),
            detail: detail.into(),
            disk_full: false,
        }
    }

    /// A transient fault (retryable).
    pub fn transient(op: IoOp, path: &Path, detail: impl Into<String>) -> Self {
        IoFault::Transient(Self::info_new(op, path, detail))
    }

    /// A permanent fault (not retryable).
    pub fn permanent(op: IoOp, path: &Path, detail: impl Into<String>) -> Self {
        IoFault::Permanent(Self::info_new(op, path, detail))
    }

    /// A disk-full (ENOSPC) permanent fault.
    pub fn disk_full(op: IoOp, path: &Path, detail: impl Into<String>) -> Self {
        let mut info = Self::info_new(op, path, detail);
        info.disk_full = true;
        IoFault::Permanent(info)
    }

    /// A corruption fault (quarantine + re-run the producer).
    pub fn corrupt(op: IoOp, path: &Path, detail: impl Into<String>) -> Self {
        IoFault::Corrupt(Self::info_new(op, path, detail))
    }

    /// The shared payload.
    pub fn info(&self) -> &IoFaultInfo {
        match self {
            IoFault::Transient(i) | IoFault::Permanent(i) | IoFault::Corrupt(i) => i,
        }
    }

    /// True for [`IoFault::Transient`].
    pub fn is_transient(&self) -> bool {
        matches!(self, IoFault::Transient(_))
    }

    /// True for [`IoFault::Permanent`].
    pub fn is_permanent(&self) -> bool {
        matches!(self, IoFault::Permanent(_))
    }

    /// True for [`IoFault::Corrupt`].
    pub fn is_corrupt(&self) -> bool {
        matches!(self, IoFault::Corrupt(_))
    }

    /// True when the underlying cause is disk exhaustion.
    pub fn is_disk_full(&self) -> bool {
        self.info().disk_full
    }

    /// Classify a raw `std::io::Error` from operation `op` on `path`.
    ///
    /// Injected faults (carried as an [`InjectedFault`] payload by
    /// [`fault::FaultVfs`]) keep their planned class; real errors map by
    /// errno/kind: interruption and timeouts are transient, ENOSPC and
    /// everything else permanent, and `InvalidData`/`UnexpectedEof` —
    /// std's vocabulary for "the bytes are wrong" — corrupt.
    pub fn classify(op: IoOp, path: &Path, err: &io::Error) -> Self {
        if let Some(inj) = err
            .get_ref()
            .and_then(|r| r.downcast_ref::<InjectedFault>())
        {
            let mut info = Self::info_new(op, path, inj.detail.clone());
            info.disk_full = inj.disk_full;
            return match inj.class {
                FaultClass::Transient => IoFault::Transient(info),
                FaultClass::Permanent => IoFault::Permanent(info),
                FaultClass::Corrupt => IoFault::Corrupt(info),
            };
        }
        // ENOSPC carries errno 28 on Linux; `ErrorKind::StorageFull` is not
        // matched by name to keep the MSRV conservative.
        if err.raw_os_error() == Some(28) {
            return Self::disk_full(op, path, err.to_string());
        }
        match err.kind() {
            io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
                Self::transient(op, path, err.to_string())
            }
            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => {
                Self::corrupt(op, path, err.to_string())
            }
            _ => Self::permanent(op, path, err.to_string()),
        }
    }
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let class = match self {
            IoFault::Transient(_) => "transient",
            IoFault::Permanent(_) => "permanent",
            IoFault::Corrupt(_) => "corrupt",
        };
        let i = self.info();
        write!(
            f,
            "{class} I/O fault during {} on `{}`: {}",
            i.op, i.path, i.detail
        )
    }
}

impl std::error::Error for IoFault {}

/// Fault class carried inside an injected `std::io::Error` so
/// [`IoFault::classify`] can recover the planned taxonomy after the error
/// has tunneled through `Read`/`Write` trait boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    Transient,
    Permanent,
    Corrupt,
}

/// The payload [`fault::FaultVfs`] attaches to injected `io::Error`s.
#[derive(Debug)]
pub struct InjectedFault {
    /// Planned fault class, recovered verbatim by [`IoFault::classify`].
    pub class: FaultClass,
    /// Human-readable cause, always marked `(injected)`.
    pub detail: String,
    /// True for injected ENOSPC.
    pub disk_full: bool,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for InjectedFault {}

/// Build an `io::Error` carrying an [`InjectedFault`] payload.
pub fn injected_io_error(
    class: FaultClass,
    detail: impl Into<String>,
    disk_full: bool,
) -> io::Error {
    io::Error::other(InjectedFault {
        class,
        detail: detail.into(),
        disk_full,
    })
}

/// An open file handle behind the [`Vfs`] seam.
///
/// The supertraits make `Box<dyn VfsFile>` usable directly under
/// `BufReader`/`BufWriter` (std blankets `Read`/`Write` over boxed trait
/// objects), so consumers keep their buffered-I/O structure.
pub trait VfsFile: io::Read + io::Write + io::Seek + Send + std::fmt::Debug {
    /// Flush file data to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate or extend the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn byte_len(&mut self) -> io::Result<u64>;
}

/// Filesystem operations the out-of-core path needs, with typed faults.
///
/// Implementations must be cheap to share (`Arc<dyn Vfs>`) and safe to use
/// from many worker threads at once.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault>;

    /// Open an existing file for reading.
    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault>;

    /// Open for appending, creating the file if missing.
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault>;

    /// Read a whole file; `Ok(None)` when it does not exist.
    fn try_read(&self, path: &Path) -> Result<Option<Vec<u8>>, IoFault>;

    /// Read a whole file; a missing file is a permanent fault.
    fn read(&self, path: &Path) -> Result<Vec<u8>, IoFault> {
        self.try_read(path)?
            .ok_or_else(|| IoFault::permanent(IoOp::Open, path, "file not found"))
    }

    /// Remove a file; a missing file is not an error.
    fn remove(&self, path: &Path) -> Result<(), IoFault>;

    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), IoFault>;

    /// Truncate `path` to at most `len` bytes and sync; returns `false`
    /// (without error) when the file does not exist.
    fn truncate(&self, path: &Path, len: u64) -> Result<bool, IoFault>;

    /// Create a directory and all parents.
    fn create_dir_all(&self, path: &Path) -> Result<(), IoFault>;

    /// File names (not paths) in a directory, sorted for determinism.
    fn list_dir(&self, path: &Path) -> Result<Vec<String>, IoFault>;

    /// Memory-map a file read-only; `Ok(None)` when the platform has no
    /// mmap support (the caller falls back to a heap read).
    fn mmap(&self, path: &Path) -> Result<Option<Mmap>, IoFault>;
}

/// Passthrough [`Vfs`] over `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

/// A shared handle to the passthrough [`StdVfs`].
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

/// `std::fs::File` behind the [`VfsFile`] trait.
#[derive(Debug)]
pub struct StdFile(std::fs::File);

impl io::Read for StdFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.0, buf)
    }
}

impl io::Write for StdFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.0, buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        io::Write::flush(&mut self.0)
    }
}

impl io::Seek for StdFile {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        io::Seek::seek(&mut self.0, pos)
    }
}

impl VfsFile for StdFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn byte_len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

fn cls(op: IoOp, path: &Path) -> impl Fn(io::Error) -> IoFault + '_ {
    move |e| IoFault::classify(op, path, &e)
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault> {
        let f = std::fs::File::create(path).map_err(cls(IoOp::Create, path))?;
        Ok(Box::new(StdFile(f)))
    }

    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault> {
        let f = std::fs::File::open(path).map_err(cls(IoOp::Open, path))?;
        Ok(Box::new(StdFile(f)))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(cls(IoOp::Open, path))?;
        Ok(Box::new(StdFile(f)))
    }

    fn try_read(&self, path: &Path) -> Result<Option<Vec<u8>>, IoFault> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(IoFault::classify(IoOp::Read, path, &e)),
        }
    }

    fn remove(&self, path: &Path) -> Result<(), IoFault> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(IoFault::classify(IoOp::Remove, path, &e)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), IoFault> {
        std::fs::rename(from, to).map_err(cls(IoOp::Rename, from))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<bool, IoFault> {
        let file = match std::fs::OpenOptions::new().write(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(IoFault::classify(IoOp::Truncate, path, &e)),
        };
        let err = cls(IoOp::Truncate, path);
        let current = file.metadata().map_err(&err)?.len();
        if current > len {
            file.set_len(len).map_err(&err)?;
            file.sync_data().map_err(&err)?;
        }
        Ok(true)
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), IoFault> {
        std::fs::create_dir_all(path).map_err(cls(IoOp::Create, path))
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<String>, IoFault> {
        let err = cls(IoOp::List, path);
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path).map_err(&err)? {
            let entry = entry.map_err(&err)?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn mmap(&self, path: &Path) -> Result<Option<Mmap>, IoFault> {
        #[cfg(target_os = "linux")]
        {
            let file = std::fs::File::open(path).map_err(cls(IoOp::Open, path))?;
            let map = Mmap::map_readonly(&file).map_err(cls(IoOp::Mmap, path))?;
            Ok(Some(map))
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = path;
            Ok(None)
        }
    }
}

/// Bounded deterministic retry policy for transient faults.
///
/// `max_attempts` counts total tries (so `3` = one try plus up to two
/// retries); each retry charges `backoff_unit << retry_index` virtual
/// backoff units — exponential backoff that is *accounted*, never slept,
/// so replays stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1) before a transient fault is surfaced.
    pub max_attempts: u32,
    /// Virtual backoff units charged for the first retry; doubles per retry.
    pub backoff_unit: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_unit: 1,
        }
    }
}

/// What a [`retry_io`] call actually did, for counters and cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries performed (0 when the first attempt succeeded).
    pub retries: u32,
    /// Total virtual backoff units charged.
    pub backoff_units: u64,
}

/// Run `op`, retrying [`IoFault::Transient`] failures up to the policy's
/// attempt budget. Permanent and corrupt faults are surfaced immediately.
pub fn retry_io<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> Result<T, IoFault>,
) -> (Result<T, IoFault>, RetryStats) {
    let attempts = policy.max_attempts.max(1);
    let mut stats = RetryStats::default();
    loop {
        match op() {
            Ok(v) => return (Ok(v), stats),
            Err(fault) => {
                if !fault.is_transient() || stats.retries + 1 >= attempts {
                    return (Err(fault), stats);
                }
                stats.backoff_units += policy.backoff_unit << stats.retries;
                stats.retries += 1;
            }
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the same polynomial the journal's
/// frame layer uses, rebuilt here so integrity checking lives beside the
/// fault taxonomy without a dependency edge.
const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 over a byte stream.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC32_TABLE[idx];
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pper-vfs-{}-{name}", std::process::id()))
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" is the canonical CRC-32/IEEE check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"56789");
        assert_eq!(inc.finish(), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn std_vfs_round_trip() {
        let vfs = StdVfs;
        let path = tmp("roundtrip");
        {
            let mut f = vfs.create(&path).unwrap();
            use std::io::Write;
            f.write_all(b"hello vfs").unwrap();
            f.sync_data().unwrap();
            assert_eq!(f.byte_len().unwrap(), 9);
        }
        assert_eq!(vfs.read(&path).unwrap(), b"hello vfs");
        assert_eq!(vfs.try_read(&path).unwrap().unwrap(), b"hello vfs");
        let renamed = tmp("roundtrip2");
        vfs.rename(&path, &renamed).unwrap();
        assert!(vfs.try_read(&path).unwrap().is_none());
        assert!(vfs.truncate(&renamed, 5).unwrap());
        assert_eq!(vfs.read(&renamed).unwrap(), b"hello");
        vfs.remove(&renamed).unwrap();
        vfs.remove(&renamed).unwrap(); // second remove: not an error
        assert!(!vfs.truncate(&renamed, 0).unwrap());
    }

    #[test]
    fn missing_file_reads_as_none_and_permanent() {
        let vfs = StdVfs;
        let path = tmp("missing");
        assert!(vfs.try_read(&path).unwrap().is_none());
        let err = vfs.read(&path).unwrap_err();
        assert!(err.is_permanent(), "{err}");
        let err = vfs.open(&path).unwrap_err();
        assert!(err.is_permanent());
        assert_eq!(err.info().op, IoOp::Open);
    }

    #[test]
    fn list_dir_is_sorted() {
        let vfs = StdVfs;
        let dir = tmp("listdir");
        vfs.create_dir_all(&dir).unwrap();
        for name in ["b.x", "a.x", "c.x"] {
            drop(vfs.create(&dir.join(name)).unwrap());
        }
        assert_eq!(vfs.list_dir(&dir).unwrap(), vec!["a.x", "b.x", "c.x"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_reads_file() {
        let vfs = StdVfs;
        let path = tmp("mmap");
        std::fs::write(&path, b"mapped").unwrap();
        let map = vfs.mmap(&path).unwrap().unwrap();
        assert_eq!(&*map, b"mapped");
        drop(map);
        vfs.remove(&path).unwrap();
    }

    #[test]
    fn classify_maps_kinds() {
        let p = Path::new("/x/y");
        let t = IoFault::classify(
            IoOp::Read,
            p,
            &io::Error::new(io::ErrorKind::Interrupted, "eintr"),
        );
        assert!(t.is_transient());
        let c = IoFault::classify(
            IoOp::Read,
            p,
            &io::Error::new(io::ErrorKind::UnexpectedEof, "eof"),
        );
        assert!(c.is_corrupt());
        let perm = IoFault::classify(
            IoOp::Write,
            p,
            &io::Error::new(io::ErrorKind::PermissionDenied, "eacces"),
        );
        assert!(perm.is_permanent());
        let full = IoFault::classify(IoOp::Write, p, &io::Error::from_raw_os_error(28));
        assert!(full.is_permanent() && full.is_disk_full());
        let inj = injected_io_error(FaultClass::Corrupt, "flip (injected)", false);
        let back = IoFault::classify(IoOp::Read, p, &inj);
        assert!(back.is_corrupt());
        assert_eq!(back.info().detail, "flip (injected)");
    }

    #[test]
    fn retry_recovers_transient_and_charges_backoff() {
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff_unit: 2,
        };
        let mut fails = 2;
        let (res, stats) = retry_io(&policy, || {
            if fails > 0 {
                fails -= 1;
                Err(IoFault::transient(IoOp::Write, Path::new("/s"), "blip"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.backoff_units, 2 + 4); // 2<<0 + 2<<1
    }

    #[test]
    fn retry_surfaces_permanent_immediately_and_exhausts_transient() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let (res, stats) = retry_io(&policy, || {
            calls += 1;
            Err::<(), _>(IoFault::disk_full(IoOp::Write, Path::new("/s"), "enospc"))
        });
        assert!(res.unwrap_err().is_disk_full());
        assert_eq!((calls, stats.retries), (1, 0));

        let mut calls = 0;
        let (res, stats) = retry_io(&policy, || {
            calls += 1;
            Err::<(), _>(IoFault::transient(IoOp::Write, Path::new("/s"), "blip"))
        });
        assert!(res.unwrap_err().is_transient());
        assert_eq!(calls, 3);
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn fault_display_names_class_op_path() {
        let f = IoFault::corrupt(IoOp::Read, Path::new("/spill/run0"), "crc mismatch");
        let s = f.to_string();
        assert!(s.contains("corrupt") && s.contains("read") && s.contains("/spill/run0"));
    }
}
