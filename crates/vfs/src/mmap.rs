//! Minimal read-only `mmap(2)` wrapper (moved here from `pper-store` so
//! every out-of-core consumer shares one mapping type behind the VFS seam).
//!
//! The workspace builds fully offline with no external crates, so there is
//! no `libc`/`memmap2` to lean on; the two syscalls the store needs are
//! declared directly against the C library that `std` already links on
//! Linux. The wrapper owns the mapping (`munmap` on drop) and exposes it
//! only as an immutable byte slice, so all unsafety is contained here. On
//! non-Linux targets [`Mmap`] is an inert stub that is never constructed —
//! [`crate::Vfs::mmap`] reports `Ok(None)` there and callers fall back to
//! heap reads.

#[cfg(target_os = "linux")]
use std::fs::File;
#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;

#[cfg(target_os = "linux")]
use core::ffi::c_void;

// Stable constants from the Linux userspace ABI (asm-generic/mman-common.h).
#[cfg(target_os = "linux")]
const PROT_READ: i32 = 1;
#[cfg(target_os = "linux")]
const MAP_PRIVATE: i32 = 2;
#[cfg(target_os = "linux")]
const MAP_FAILED: isize = -1;

#[cfg(target_os = "linux")]
extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> i32;
}

/// A read-only, private, file-backed memory mapping.
///
/// `Send + Sync` is sound because the mapping is immutable for its whole
/// lifetime: `PROT_READ` forbids writes through it, `MAP_PRIVATE` insulates
/// it from concurrent writers of the file (writes made after the map may or
/// may not be visible, but the store format is write-once-then-read), and
/// the pointer is never handed out mutably.
#[cfg(target_os = "linux")]
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: see the argument on the type — the mapping is immutable and
// owned, so sharing references across threads cannot race.
#[cfg(target_os = "linux")]
unsafe impl Send for Mmap {}
// SAFETY: same argument as Send — the view is read-only for the life of
// the mapping, so concurrent `&Mmap` access never observes a write.
#[cfg(target_os = "linux")]
unsafe impl Sync for Mmap {}

#[cfg(target_os = "linux")]
impl Mmap {
    /// Map the whole of `file` read-only. Empty files produce an empty
    /// (unmapped) view, since `mmap` rejects zero-length mappings.
    pub fn map_readonly(file: &File) -> std::io::Result<Self> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: a fresh private read-only mapping of `len` bytes over an
        // open fd; arguments match the documented contract (addr = NULL lets
        // the kernel choose, offset 0 is page-aligned). The result is
        // checked against MAP_FAILED before use.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self { ptr, len })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty (zero-length) mapping.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes
        // (established in `map_readonly`, released only in `drop`); the
        // returned lifetime is tied to `&self`, so the slice cannot outlive
        // the mapping. Immutability is guaranteed by PROT_READ|MAP_PRIVATE.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: unmapping exactly the region mapped in `map_readonly`;
            // after this the pointer is never used again (we are in drop).
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Inert stand-in on platforms without the raw `mmap` binding: carries no
/// mapping and is never constructed ([`crate::Vfs::mmap`] returns
/// `Ok(None)` off-Linux), but keeps `Backend::Mmap` compiling everywhere.
#[cfg(not(target_os = "linux"))]
pub struct Mmap {
    never: std::convert::Infallible,
}

#[cfg(not(target_os = "linux"))]
impl Mmap {
    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        match self.never {}
    }

    /// True for an empty (zero-length) mapping.
    pub fn is_empty(&self) -> bool {
        match self.never {}
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self.never {}
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("pper-mmap-test-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(b"mapped bytes").unwrap();
        f.sync_all().unwrap();
        let m = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*m, b"mapped bytes");
        assert_eq!(m.len(), 12);
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = std::env::temp_dir().join(format!("pper-mmap-empty-{}", std::process::id()));
        File::create(&path).unwrap();
        let m = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_across_threads() {
        let path = std::env::temp_dir().join(format!("pper-mmap-threads-{}", std::process::id()));
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let m = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert!(m.as_slice().iter().all(|&b| b == 7)));
            }
        });
        std::fs::remove_file(&path).unwrap();
    }
}
