//! Deterministic storage fault injection, mirroring PR 3's compute-side
//! `FaultPlan` style: a plan is a list of rules, each keyed by operation
//! (and optionally a path substring) plus an occurrence index, so the
//! *n*-th matching operation fails in a planned way while everything else
//! passes through untouched.
//!
//! Determinism contract: rule matching counts operations in arrival order
//! under a mutex, so a plan is exactly reproducible when the matching
//! operation stream is itself deterministic — single-threaded consumers,
//! or rules pinned to a specific file via [`IoFaultRule::path_contains`].
//! Chaos suites that fan out across worker threads should pin their rules
//! (spill run files carry unique names) or run with one worker.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{injected_io_error, FaultClass, IoFault, IoOp, Mmap, Vfs, VfsFile};

/// What an [`IoFaultRule`] does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Write only the first `keep` bytes, then fail transiently — a short
    /// write. (`Write` ops only.)
    ShortWrite {
        /// Bytes actually written before the failure.
        keep: usize,
    },
    /// Permanent out-of-disk-space failure.
    Enospc,
    /// Permanent fsync failure. (`Fsync` ops only.)
    FsyncFail,
    /// EINTR-style transient failure on `times` consecutive matching
    /// operations, then success.
    Transient {
        /// How many consecutive matching operations fail.
        times: u32,
    },
    /// Flip one bit of the bytes read — silent corruption the consumer's
    /// CRC layer must catch. (`Read` ops only.)
    CorruptRead,
    /// Leave the destination half-written and drop the source — a torn
    /// rename, reported as a permanent fault. (`Rename` ops only.)
    TornRename,
    /// Permanent EACCES-style failure.
    PermissionDenied,
    /// Permanent mmap failure — callers degrade to heap reads.
    /// (`Mmap` ops only.)
    MmapFail,
}

/// One injection rule: the `nth` operation of kind `op` whose path contains
/// `path_contains` (all paths when `None`) fails with `kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFaultRule {
    /// Operation the rule matches.
    pub op: IoOp,
    /// Path substring filter; `None` matches every path.
    pub path_contains: Option<String>,
    /// Zero-based index among matching operations at which the rule fires.
    pub nth: u64,
    /// The failure to inject.
    pub kind: FaultKind,
}

/// A deterministic storage fault plan (the I/O analogue of `FaultPlan`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Rules checked in order; the first matching rule that fires wins.
    pub rules: Vec<IoFaultRule>,
}

impl IoFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule firing on the first matching operation on any path.
    pub fn with(mut self, op: IoOp, kind: FaultKind) -> Self {
        self.rules.push(IoFaultRule {
            op,
            path_contains: None,
            nth: 0,
            kind,
        });
        self
    }

    /// Add a rule firing on the `nth` operation whose path contains `frag`.
    pub fn with_at(mut self, op: IoOp, frag: impl Into<String>, nth: u64, kind: FaultKind) -> Self {
        self.rules.push(IoFaultRule {
            op,
            path_contains: Some(frag.into()),
            nth,
            kind,
        });
        self
    }

    /// Check rule/op compatibility (e.g. `ShortWrite` only makes sense on
    /// `Write`), mirroring `FaultPlan::validate`.
    pub fn validate(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            let ok = match &rule.kind {
                FaultKind::ShortWrite { .. } => rule.op == IoOp::Write,
                FaultKind::FsyncFail => rule.op == IoOp::Fsync,
                FaultKind::CorruptRead => rule.op == IoOp::Read,
                FaultKind::TornRename => rule.op == IoOp::Rename,
                FaultKind::MmapFail => rule.op == IoOp::Mmap,
                FaultKind::Transient { times } => {
                    if *times == 0 {
                        return Err(format!("rule {i}: Transient.times must be positive"));
                    }
                    true
                }
                FaultKind::Enospc | FaultKind::PermissionDenied => true,
            };
            if !ok {
                return Err(format!(
                    "rule {i}: {:?} cannot fire on {} operations",
                    rule.kind, rule.op
                ));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct RuleState {
    /// Matching operations observed so far.
    matched: u64,
    /// Times the rule has fired.
    fired: u32,
}

#[derive(Debug)]
struct FaultShared {
    rules: Vec<IoFaultRule>,
    state: Mutex<Vec<RuleState>>,
}

impl FaultShared {
    /// Count this operation against every matching rule and return the
    /// kind of the first rule that fires on it.
    fn fire(&self, op: IoOp, path: &Path) -> Option<FaultKind> {
        let display = path.display().to_string();
        let mut state = self.state.lock();
        let mut hit = None;
        for (rule, st) in self.rules.iter().zip(state.iter_mut()) {
            if rule.op != op {
                continue;
            }
            if let Some(frag) = &rule.path_contains {
                if !display.contains(frag.as_str()) {
                    continue;
                }
            }
            let index = st.matched;
            st.matched += 1;
            if hit.is_some() {
                continue;
            }
            let fires = match &rule.kind {
                FaultKind::Transient { times } => index >= rule.nth && st.fired < *times,
                _ => index == rule.nth && st.fired == 0,
            };
            if fires {
                st.fired += 1;
                hit = Some(rule.kind.clone());
            }
        }
        hit
    }

    fn total_fired(&self) -> u64 {
        self.state.lock().iter().map(|s| s.fired as u64).sum()
    }
}

/// Map a planned [`FaultKind`] to the typed fault it surfaces as.
fn planned_fault(kind: &FaultKind, op: IoOp, path: &Path) -> IoFault {
    match kind {
        FaultKind::Transient { .. } => IoFault::transient(op, path, "transient fault (injected)"),
        FaultKind::ShortWrite { .. } => IoFault::transient(op, path, "short write (injected)"),
        FaultKind::Enospc => IoFault::disk_full(op, path, "ENOSPC (injected)"),
        FaultKind::PermissionDenied => IoFault::permanent(op, path, "EACCES (injected)"),
        FaultKind::FsyncFail => IoFault::permanent(op, path, "fsync failed (injected)"),
        FaultKind::TornRename => IoFault::permanent(op, path, "torn rename (injected)"),
        FaultKind::MmapFail => IoFault::permanent(op, path, "mmap failed (injected)"),
        FaultKind::CorruptRead => IoFault::corrupt(op, path, "bit flip (injected)"),
    }
}

/// The same mapping as an injected `io::Error`, for [`VfsFile`] methods
/// whose signatures speak `io::Result`; [`IoFault::classify`] recovers the
/// planned class from the payload.
fn planned_io_error(kind: &FaultKind) -> io::Error {
    let (class, detail, disk_full) = match kind {
        FaultKind::Transient { .. } => (FaultClass::Transient, "transient fault (injected)", false),
        FaultKind::ShortWrite { .. } => (FaultClass::Transient, "short write (injected)", false),
        FaultKind::Enospc => (FaultClass::Permanent, "ENOSPC (injected)", true),
        FaultKind::PermissionDenied => (FaultClass::Permanent, "EACCES (injected)", false),
        FaultKind::FsyncFail => (FaultClass::Permanent, "fsync failed (injected)", false),
        FaultKind::TornRename => (FaultClass::Permanent, "torn rename (injected)", false),
        FaultKind::MmapFail => (FaultClass::Permanent, "mmap failed (injected)", false),
        FaultKind::CorruptRead => (FaultClass::Corrupt, "bit flip (injected)", false),
    };
    injected_io_error(class, detail, disk_full)
}

/// A [`Vfs`] that injects the faults of an [`IoFaultPlan`] over an inner
/// filesystem (the real one by default).
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    shared: Arc<FaultShared>,
}

impl FaultVfs {
    /// Inject `plan` over the passthrough [`crate::StdVfs`].
    pub fn new(plan: IoFaultPlan) -> Result<Self, String> {
        Self::over(crate::std_vfs(), plan)
    }

    /// Inject `plan` over an arbitrary inner filesystem.
    pub fn over(inner: Arc<dyn Vfs>, plan: IoFaultPlan) -> Result<Self, String> {
        plan.validate()?;
        let states = vec![RuleState::default(); plan.rules.len()];
        Ok(FaultVfs {
            inner,
            shared: Arc::new(FaultShared {
                rules: plan.rules,
                state: Mutex::new(states),
            }),
        })
    }

    /// Total rule firings so far — chaos suites assert this is non-zero to
    /// prove the planned site was actually exercised.
    pub fn faults_fired(&self) -> u64 {
        self.shared.total_fired()
    }

    fn wrap(&self, file: Box<dyn VfsFile>, path: &Path) -> Box<dyn VfsFile> {
        Box::new(FaultFile {
            inner: file,
            path: path.to_path_buf(),
            shared: Arc::clone(&self.shared),
        })
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault> {
        if let Some(kind) = self.shared.fire(IoOp::Create, path) {
            return Err(planned_fault(&kind, IoOp::Create, path));
        }
        Ok(self.wrap(self.inner.create(path)?, path))
    }

    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault> {
        if let Some(kind) = self.shared.fire(IoOp::Open, path) {
            return Err(planned_fault(&kind, IoOp::Open, path));
        }
        Ok(self.wrap(self.inner.open(path)?, path))
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>, IoFault> {
        if let Some(kind) = self.shared.fire(IoOp::Open, path) {
            return Err(planned_fault(&kind, IoOp::Open, path));
        }
        Ok(self.wrap(self.inner.open_append(path)?, path))
    }

    fn try_read(&self, path: &Path) -> Result<Option<Vec<u8>>, IoFault> {
        match self.shared.fire(IoOp::Read, path) {
            Some(FaultKind::CorruptRead) => {
                let bytes = self.inner.try_read(path)?.map(|mut b| {
                    if !b.is_empty() {
                        let mid = b.len() / 2;
                        b[mid] ^= 0x01;
                    }
                    b
                });
                Ok(bytes)
            }
            Some(kind) => Err(planned_fault(&kind, IoOp::Read, path)),
            None => self.inner.try_read(path),
        }
    }

    fn remove(&self, path: &Path) -> Result<(), IoFault> {
        if let Some(kind) = self.shared.fire(IoOp::Remove, path) {
            return Err(planned_fault(&kind, IoOp::Remove, path));
        }
        self.inner.remove(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), IoFault> {
        match self.shared.fire(IoOp::Rename, from) {
            Some(FaultKind::TornRename) => {
                // Simulate a crash mid-publish: the destination receives
                // only the first half of the bytes, the source is gone.
                if let Some(bytes) = self.inner.try_read(from)? {
                    let mut dst = self.inner.create(to)?;
                    let half = &bytes[..bytes.len() / 2];
                    dst.write_all(half)
                        .and_then(|()| dst.flush())
                        .map_err(|e| IoFault::classify(IoOp::Write, to, &e))?;
                    self.inner.remove(from)?;
                }
                Err(planned_fault(&FaultKind::TornRename, IoOp::Rename, from))
            }
            Some(kind) => Err(planned_fault(&kind, IoOp::Rename, from)),
            None => self.inner.rename(from, to),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<bool, IoFault> {
        if let Some(kind) = self.shared.fire(IoOp::Truncate, path) {
            return Err(planned_fault(&kind, IoOp::Truncate, path));
        }
        self.inner.truncate(path, len)
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), IoFault> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<String>, IoFault> {
        if let Some(kind) = self.shared.fire(IoOp::List, path) {
            return Err(planned_fault(&kind, IoOp::List, path));
        }
        self.inner.list_dir(path)
    }

    fn mmap(&self, path: &Path) -> Result<Option<Mmap>, IoFault> {
        if let Some(kind) = self.shared.fire(IoOp::Mmap, path) {
            return Err(planned_fault(&kind, IoOp::Mmap, path));
        }
        self.inner.mmap(path)
    }
}

/// A file handle that consults the plan on every read/write/fsync.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    shared: Arc<FaultShared>,
}

impl io::Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.shared.fire(IoOp::Read, &self.path) {
            Some(FaultKind::CorruptRead) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    buf[0] ^= 0x01;
                }
                Ok(n)
            }
            Some(kind) => Err(planned_io_error(&kind)),
            None => self.inner.read(buf),
        }
    }
}

impl io::Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.shared.fire(IoOp::Write, &self.path) {
            Some(FaultKind::ShortWrite { keep }) => {
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                Err(planned_io_error(&FaultKind::ShortWrite { keep }))
            }
            Some(kind) => Err(planned_io_error(&kind)),
            None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl io::Seek for FaultFile {
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl VfsFile for FaultFile {
    fn sync_data(&mut self) -> io::Result<()> {
        if let Some(kind) = self.shared.fire(IoOp::Fsync, &self.path) {
            return Err(planned_io_error(&kind));
        }
        self.inner.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if let Some(kind) = self.shared.fire(IoOp::Truncate, &self.path) {
            return Err(planned_io_error(&kind));
        }
        self.inner.set_len(len)
    }

    fn byte_len(&mut self) -> io::Result<u64> {
        self.inner.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoFaultInfo;
    use std::io::{Read, Write};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pper-faultvfs-{}-{name}", std::process::id()))
    }

    #[test]
    fn validate_rejects_mismatched_kinds() {
        let plan = IoFaultPlan::new().with(IoOp::Read, FaultKind::ShortWrite { keep: 1 });
        assert!(plan.validate().is_err());
        let plan = IoFaultPlan::new().with(IoOp::Write, FaultKind::Transient { times: 0 });
        assert!(plan.validate().is_err());
        let plan = IoFaultPlan::new()
            .with(IoOp::Write, FaultKind::Enospc)
            .with(IoOp::Fsync, FaultKind::FsyncFail)
            .with(IoOp::Mmap, FaultKind::MmapFail);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn nth_write_fails_with_enospc() {
        let path = tmp("enospc");
        let plan = IoFaultPlan::new().with_at(IoOp::Write, "enospc", 1, FaultKind::Enospc);
        let vfs = FaultVfs::new(plan).unwrap();
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"first").unwrap(); // write #0 passes
        let err = f.write_all(b"second").unwrap_err(); // write #1 injected
        let fault = IoFault::classify(IoOp::Write, &path, &err);
        assert!(fault.is_permanent() && fault.is_disk_full(), "{fault}");
        assert_eq!(vfs.faults_fired(), 1);
        drop(f);
        cleanup(&path);
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn transient_fails_then_recovers() {
        let path = tmp("transient");
        let plan = IoFaultPlan::new().with(IoOp::Write, FaultKind::Transient { times: 2 });
        let vfs = FaultVfs::new(plan).unwrap();
        let mut f = vfs.create(&path).unwrap();
        for _ in 0..2 {
            let err = f.write(b"x").unwrap_err();
            assert!(IoFault::classify(IoOp::Write, &path, &err).is_transient());
        }
        f.write_all(b"ok").unwrap(); // third attempt passes
        assert_eq!(vfs.faults_fired(), 2);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"ok");
        cleanup(&path);
    }

    #[test]
    fn short_write_leaves_prefix_then_errors() {
        let path = tmp("short");
        let plan = IoFaultPlan::new().with(IoOp::Write, FaultKind::ShortWrite { keep: 3 });
        let vfs = FaultVfs::new(plan).unwrap();
        let mut f = vfs.create(&path).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert!(IoFault::classify(IoOp::Write, &path, &err).is_transient());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        cleanup(&path);
    }

    #[test]
    fn corrupt_read_flips_one_bit() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"payload").unwrap();
        let plan = IoFaultPlan::new().with(IoOp::Read, FaultKind::CorruptRead);
        let vfs = FaultVfs::new(plan).unwrap();
        let mut f = vfs.open(&path).unwrap();
        let mut buf = vec![0u8; 7];
        f.read_exact(&mut buf).unwrap();
        assert_ne!(buf, b"payload");
        assert_eq!(buf[0] ^ 0x01, b'p');
        assert_eq!(&buf[1..], &b"payload"[1..]);
        cleanup(&path);
    }

    #[test]
    fn corrupt_whole_file_read_flips_middle_byte() {
        let path = tmp("corrupt-whole");
        std::fs::write(&path, b"0123456789").unwrap();
        let plan = IoFaultPlan::new().with(IoOp::Read, FaultKind::CorruptRead);
        let vfs = FaultVfs::new(plan).unwrap();
        let bytes = vfs.try_read(&path).unwrap().unwrap();
        assert_eq!(bytes[5] ^ 0x01, b'5');
        assert_eq!(&bytes[..5], b"01234");
        cleanup(&path);
    }

    #[test]
    fn fsync_failure_is_permanent() {
        let path = tmp("fsync");
        let plan = IoFaultPlan::new().with(IoOp::Fsync, FaultKind::FsyncFail);
        let vfs = FaultVfs::new(plan).unwrap();
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"x").unwrap();
        let err = f.sync_data().unwrap_err();
        assert!(IoFault::classify(IoOp::Fsync, &path, &err).is_permanent());
        drop(f);
        cleanup(&path);
    }

    #[test]
    fn torn_rename_leaves_half_destination() {
        let src = tmp("torn-src");
        let dst = tmp("torn-dst");
        std::fs::write(&src, b"ABCDEFGH").unwrap();
        let plan = IoFaultPlan::new().with(IoOp::Rename, FaultKind::TornRename);
        let vfs = FaultVfs::new(plan).unwrap();
        let err = vfs.rename(&src, &dst).unwrap_err();
        assert!(err.is_permanent());
        assert!(!src.exists());
        assert_eq!(std::fs::read(&dst).unwrap(), b"ABCD");
        // A later rename passes through (rule fired once).
        std::fs::write(&src, b"again").unwrap();
        vfs.rename(&src, &dst).unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"again");
        cleanup(&dst);
    }

    #[test]
    fn mmap_fault_reports_permanent() {
        let path = tmp("mmapfail");
        std::fs::write(&path, b"data").unwrap();
        let plan = IoFaultPlan::new().with(IoOp::Mmap, FaultKind::MmapFail);
        let vfs = FaultVfs::new(plan).unwrap();
        let err = vfs.mmap(&path).unwrap_err();
        assert!(err.is_permanent());
        // Heap read still works — the degradation path the store takes.
        assert_eq!(vfs.read(&path).unwrap(), b"data");
        cleanup(&path);
    }

    #[test]
    fn path_filter_scopes_rules() {
        let hit = tmp("filter-hit");
        let miss = tmp("filter-miss");
        let plan = IoFaultPlan::new().with_at(IoOp::Create, "filter-hit", 0, FaultKind::Enospc);
        let vfs = FaultVfs::new(plan).unwrap();
        drop(vfs.create(&miss).unwrap());
        assert!(vfs.create(&hit).unwrap_err().is_disk_full());
        assert_eq!(vfs.faults_fired(), 1);
        cleanup(&miss);
    }

    #[test]
    fn info_accessors_expose_site() {
        let f = IoFault::Permanent(IoFaultInfo {
            op: IoOp::Rename,
            path: "/a/b".into(),
            detail: "torn".into(),
            disk_full: false,
        });
        assert_eq!(f.info().op, IoOp::Rename);
        assert_eq!(f.info().path, "/a/b");
    }
}
