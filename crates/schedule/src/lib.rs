//! # pper-schedule
//!
//! Progressive schedule generation — §IV of the paper, the core algorithmic
//! contribution.
//!
//! Given the block statistics from the first MR job, this crate:
//!
//! 1. estimates, per block, the expected duplicates `Dup(X)`, resolution
//!    cost `Cost(X)` and utility `Util(X) = Dup/Cost` (Eq. 2–5), using a
//!    duplicate-probability model `d(X) = Prob(|X|)·Pairs(|X|)` learned from
//!    a training dataset (§VI-A4) — [`estimate`], [`probmodel`];
//! 2. generates the **progressive schedule**: the NP-hard optimal
//!    formulation (§IV-C1) is approximated by `GENERATE-SCHEDULE` (Fig. 6) —
//!    identify overflowed trees, split them (`SPLIT-TREE`/`SHOULD-SPLIT`),
//!    partition trees over reduce tasks greedily by slack `SK(R)`, and sort
//!    each task's blocks by utility — [`generate`];
//! 3. provides the baseline schedulers the paper compares against:
//!    **NoSplit** (same pipeline without tree splitting) and **LPT**
//!    (longest-processing-time load balancing) — [`generate::TreeScheduler`];
//! 4. assigns sequence values `SQ` (for routing blocks to their reduce task)
//!    and dominance values `Dom(T)` with the `List(e, X)` construction and
//!    `SHOULD-RESOLVE` check used for redundancy-free resolution (§V,
//!    Fig. 7) — [`dominance`].

//! ```
//! use pper_blocking::{build_forests, presets, DatasetStats};
//! use pper_datagen::PubGen;
//! use pper_mapreduce::CostModel;
//! use pper_progressive::LevelPolicy;
//! use pper_schedule::{generate_schedule, EstimationContext, HeuristicProb, ScheduleConfig};
//!
//! let ds = PubGen::new(1_000, 1).generate();
//! let families = presets::citeseer_families();
//! let forests = build_forests(&ds, &families);
//! let stats = DatasetStats::from_forests(&ds, &families, &forests);
//!
//! let (policy, cost_model, prob) =
//!     (LevelPolicy::citeseer(), CostModel::default(), HeuristicProb::default());
//! let ctx = EstimationContext {
//!     dataset_size: ds.len(),
//!     policy: &policy,
//!     cost_model: &cost_model,
//!     prob: &prob,
//! };
//! let schedule = generate_schedule(&stats, &ctx, &ScheduleConfig::new(8));
//! assert_eq!(schedule.num_tasks, 8);
//! assert_eq!(schedule.trees.len(), schedule.dom.len());
//! ```

pub mod dominance;
pub mod estimate;
pub mod generate;
pub mod plan;
pub mod probmodel;

pub use dominance::{should_resolve, DomList, TreeLocator};
pub use estimate::{recompute_tree, EstimationContext};
pub use generate::{generate_schedule, CostVectorSpec, ScheduleConfig, TreeScheduler, Weighting};
pub use plan::{PlanNode, PlanTree, Schedule};
pub use probmodel::{DupProbability, HeuristicProb, SampledProb, TrainedProb};
