//! Duplicate-probability models (§VI-A4).
//!
//! The number of covered duplicate pairs in a block is estimated as
//! `d(X) = Prob(|X|) · Cov(X)`, where `Prob(|X|)` is the probability that a
//! covered pair of the block is a duplicate. The paper observes that smaller
//! blocks have higher duplicate density and therefore keys the probability
//! on the *fraction* `|X| / |D|`, learned per variable-size sub-range from a
//! training dataset. [`TrainedProb`] implements exactly that;
//! [`HeuristicProb`] is a closed-form fallback with the same monotone shape
//! for use without training data.

use std::collections::HashMap;

use pper_blocking::{build_forests, compute_signatures, pairs, BlockingFamily, FamilyIndex};
use pper_datagen::Dataset;
use serde::{Deserialize, Serialize};

/// Estimates `Prob(|X|)`: the probability that a covered pair of a block
/// with `size` members (in a dataset of `dataset_size`) is a duplicate.
pub trait DupProbability: Send + Sync {
    /// Duplicate probability for a block of `size` entities at tree level
    /// `level` of blocking family `family`.
    fn prob(&self, family: FamilyIndex, level: usize, size: usize, dataset_size: usize) -> f64;

    /// `d(X) = Prob(|X|) · Cov(X)`, clamped to `[0, cov]`.
    fn estimate_dups(
        &self,
        family: FamilyIndex,
        level: usize,
        size: usize,
        dataset_size: usize,
        covered_pairs: u64,
    ) -> f64 {
        (self.prob(family, level, size, dataset_size) * covered_pairs as f64)
            .clamp(0.0, covered_pairs as f64)
    }
}

/// Closed-form fallback: `Prob = base / (1 + (|X|/|D| · scale))`, which is
/// large for small blocks and decays for the big skewed ones, mirroring the
/// paper's empirical observation without requiring training data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeuristicProb {
    /// Probability for the smallest blocks.
    pub base: f64,
    /// How fast probability decays with the block's dataset fraction.
    pub scale: f64,
}

impl Default for HeuristicProb {
    fn default() -> Self {
        Self {
            base: 0.5,
            scale: 2_000.0,
        }
    }
}

impl DupProbability for HeuristicProb {
    fn prob(&self, _family: FamilyIndex, _level: usize, size: usize, dataset_size: usize) -> f64 {
        let fraction = size as f64 / dataset_size.max(1) as f64;
        (self.base / (1.0 + fraction * self.scale)).clamp(0.0, 1.0)
    }
}

/// The paper's trained model: for each blocking function (family × level),
/// the fraction range `[0, 1]` is divided into variable-size sub-ranges
/// (log-scale, since fractions concentrate near zero) and a duplicate
/// probability is learned for each sub-range from a labeled training
/// dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedProb {
    /// Learned probability buckets per `(family, level)`. A handful of
    /// entries (families × levels), so linear scan beats a map — and tuple
    /// keys serialize cleanly this way.
    tables: Vec<((usize, usize), Vec<BucketStat>)>,
    /// Exclusive upper bounds of the fraction buckets, ascending.
    bounds: Vec<f64>,
    /// Fallback for empty buckets.
    fallback: HeuristicProb,
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct BucketStat {
    dup_pairs: u64,
    total_pairs: u64,
}

impl BucketStat {
    fn prob(&self) -> Option<f64> {
        (self.total_pairs > 0).then(|| self.dup_pairs as f64 / self.total_pairs as f64)
    }
}

/// Default log-scale fraction bucket bounds.
fn default_bounds() -> Vec<f64> {
    vec![1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0]
}

impl TrainedProb {
    /// Learn the model from a labeled training dataset under the given
    /// blocking configuration: build the training forests, and for every
    /// block record its covered-pair duplicate rate into the fraction bucket
    /// of its (family, level).
    ///
    /// The training dataset should be a small sample with the same
    /// generation parameters as the evaluation dataset (the paper learns
    /// "from a training dataset").
    pub fn train(train: &Dataset, families: &[BlockingFamily]) -> Self {
        let bounds = default_bounds();
        let forests = build_forests(train, families);
        let signatures = compute_signatures(train, families);
        let mut tables: HashMap<(usize, usize), Vec<BucketStat>> = HashMap::new();
        let n = train.len().max(1);
        for forest in &forests {
            for tree in &forest.trees {
                for block in &tree.blocks {
                    let fraction = block.size() as f64 / n as f64;
                    let bucket = bounds
                        .partition_point(|&b| b < fraction)
                        .min(bounds.len() - 1);
                    // Count duplicate pairs among *covered* pairs: pairs not
                    // shared with a dominating family's root block.
                    let mut dup = 0u64;
                    let mut total = 0u64;
                    for (i, &a) in block.members.iter().enumerate() {
                        for &b in &block.members[i + 1..] {
                            let covered = !(0..forest.family)
                                .any(|f| signatures[a as usize][f] == signatures[b as usize][f]);
                            if covered {
                                total += 1;
                                dup += u64::from(train.truth.is_duplicate(a, b));
                            }
                        }
                    }
                    let entry = tables
                        .entry((forest.family, block.level))
                        .or_insert_with(|| vec![BucketStat::default(); bounds.len()]);
                    entry[bucket].dup_pairs += dup;
                    entry[bucket].total_pairs += total;
                }
            }
        }
        // lint:allow(hash_iter) drain order discarded by the sort below.
        let mut tables: Vec<_> = tables.into_iter().collect();
        tables.sort_by_key(|(k, _)| *k);
        Self {
            tables,
            bounds,
            fallback: HeuristicProb::default(),
        }
    }

    fn table(&self, family: usize, level: usize) -> Option<&Vec<BucketStat>> {
        self.tables
            .iter()
            .find(|((f, l), _)| *f == family && *l == level)
            .map(|(_, t)| t)
    }

    fn lookup(&self, family: usize, level: usize, fraction: f64) -> Option<f64> {
        let table = self
            .table(family, level)
            .or_else(|| self.table(family, 0))?;
        let bucket = self
            .bounds
            .partition_point(|&b| b < fraction)
            .min(self.bounds.len() - 1);
        // Exact bucket, else nearest non-empty bucket.
        table[bucket].prob().or_else(|| {
            (1..self.bounds.len())
                .flat_map(|dist| {
                    [bucket.checked_sub(dist), bucket.checked_add(dist)]
                        .into_iter()
                        .flatten()
                        .filter(|&i| i < table.len())
                        .collect::<Vec<_>>()
                })
                .find_map(|i| table[i].prob())
        })
    }
}

impl DupProbability for TrainedProb {
    fn prob(&self, family: FamilyIndex, level: usize, size: usize, dataset_size: usize) -> f64 {
        let fraction = size as f64 / dataset_size.max(1) as f64;
        self.lookup(family, level, fraction)
            .unwrap_or_else(|| self.fallback.prob(family, level, size, dataset_size))
    }
}

/// Unsupervised sampling estimator: `Prob(|X|)` measured by *sampling* pairs
/// from the target dataset's own blocks and running the actual match rule —
/// no labeled training data required. ("Our approach is agnostic to the way
/// the function d(.) is implemented", §IV-B.)
///
/// The measured densities land in the same fraction-bucket tables as
/// [`TrainedProb`], so lookup behaviour (nearest non-empty bucket, heuristic
/// fallback) is identical; only the supervision differs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampledProb {
    inner: TrainedProb,
}

impl SampledProb {
    /// Sample up to `pairs_per_block` random within-block pairs per block of
    /// `ds` (seeded by `seed`), label them with `rule`, and learn the
    /// fraction-bucket densities.
    pub fn sample(
        ds: &Dataset,
        families: &[BlockingFamily],
        rule: &pper_simil::MatchRule,
        pairs_per_block: usize,
        seed: u64,
    ) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = default_bounds();
        let forests = build_forests(ds, families);
        let mut tables: HashMap<(usize, usize), Vec<BucketStat>> = HashMap::new();
        let n = ds.len().max(1);
        for forest in &forests {
            for tree in &forest.trees {
                for block in &tree.blocks {
                    let m = block.members.len();
                    if m < 2 {
                        continue;
                    }
                    let fraction = m as f64 / n as f64;
                    let bucket = bounds
                        .partition_point(|&b| b < fraction)
                        .min(bounds.len() - 1);
                    let samples = pairs_per_block.min(m * (m - 1) / 2);
                    let mut dup = 0u64;
                    for _ in 0..samples {
                        let i = rng.random_range(0..m);
                        let mut j = rng.random_range(0..m - 1);
                        if j >= i {
                            j += 1;
                        }
                        let (a, b) = (block.members[i], block.members[j]);
                        dup += u64::from(rule.matches(&ds.entity(a).attrs, &ds.entity(b).attrs));
                    }
                    let entry = tables
                        .entry((forest.family, block.level))
                        .or_insert_with(|| vec![BucketStat::default(); bounds.len()]);
                    entry[bucket].dup_pairs += dup;
                    entry[bucket].total_pairs += samples as u64;
                }
            }
        }
        // lint:allow(hash_iter) drain order discarded by the sort below.
        let mut tables: Vec<_> = tables.into_iter().collect();
        tables.sort_by_key(|(k, _)| *k);
        Self {
            inner: TrainedProb {
                tables,
                bounds,
                fallback: HeuristicProb::default(),
            },
        }
    }
}

impl DupProbability for SampledProb {
    fn prob(&self, family: FamilyIndex, level: usize, size: usize, dataset_size: usize) -> f64 {
        self.inner.prob(family, level, size, dataset_size)
    }
}

/// Convenience: total estimated duplicates in a block via any model.
pub fn block_dup_estimate(
    model: &dyn DupProbability,
    family: FamilyIndex,
    level: usize,
    size: usize,
    dataset_size: usize,
) -> f64 {
    model.estimate_dups(family, level, size, dataset_size, pairs(size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pper_blocking::presets;
    use pper_datagen::PubGen;

    #[test]
    fn heuristic_monotone_decreasing_in_size() {
        let h = HeuristicProb::default();
        let p_small = h.prob(0, 0, 5, 10_000);
        let p_big = h.prob(0, 0, 2_000, 10_000);
        assert!(p_small > p_big);
        assert!((0.0..=1.0).contains(&p_small));
        assert!((0.0..=1.0).contains(&p_big));
    }

    #[test]
    fn estimate_dups_clamped_to_covered() {
        let h = HeuristicProb {
            base: 1.0,
            scale: 0.0,
        };
        assert_eq!(h.estimate_dups(0, 0, 100, 100, 10), 10.0);
    }

    #[test]
    fn trained_model_learns_small_blocks_are_denser() {
        let train = PubGen::new(3_000, 77).generate();
        let families = presets::citeseer_families();
        let model = TrainedProb::train(&train, &families);
        // Small leaf-ish blocks should carry higher duplicate probability
        // than the huge skewed root blocks.
        let p_small = model.prob(0, 2, 4, 3_000);
        let p_large = model.prob(0, 0, 900, 3_000);
        assert!(
            p_small > p_large,
            "small {p_small:.4} should exceed large {p_large:.4}"
        );
        assert!(p_small > 0.0);
    }

    #[test]
    fn trained_model_falls_back_for_unknown_family() {
        let train = PubGen::new(500, 78).generate();
        let families = presets::citeseer_families();
        let model = TrainedProb::train(&train, &families);
        let p = model.prob(99, 0, 10, 500);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn trained_probabilities_in_unit_interval() {
        let train = PubGen::new(2_000, 79).generate();
        let families = presets::citeseer_families();
        let model = TrainedProb::train(&train, &families);
        for family in 0..3 {
            for level in 0..3 {
                for size in [2, 10, 100, 1000] {
                    let p = model.prob(family, level, size, 2_000);
                    assert!((0.0..=1.0).contains(&p), "p={p}");
                }
            }
        }
    }

    #[test]
    fn sampled_model_learns_without_labels() {
        use pper_simil::{AttributeSim, MatchRule, WeightedAttr};
        let ds = PubGen::new(2_000, 81).generate();
        let families = presets::citeseer_families();
        let rule = MatchRule::new(
            vec![WeightedAttr::new(
                0,
                1.0,
                AttributeSim::Levenshtein { max_chars: None },
            )],
            0.8,
        );
        let model = SampledProb::sample(&ds, &families, &rule, 10, 7);
        // Small blocks denser than huge ones, as with the supervised model.
        let p_small = model.prob(0, 2, 4, 2_000);
        let p_large = model.prob(0, 0, 600, 2_000);
        assert!((0.0..=1.0).contains(&p_small));
        assert!((0.0..=1.0).contains(&p_large));
        assert!(
            p_small >= p_large,
            "small {p_small:.4} vs large {p_large:.4}"
        );
    }

    #[test]
    fn sampled_model_deterministic_per_seed() {
        use pper_simil::{AttributeSim, MatchRule, WeightedAttr};
        let ds = PubGen::new(500, 82).generate();
        let families = presets::citeseer_families();
        let rule = MatchRule::new(
            vec![WeightedAttr::new(
                0,
                1.0,
                AttributeSim::Levenshtein { max_chars: None },
            )],
            0.8,
        );
        let a = SampledProb::sample(&ds, &families, &rule, 5, 3);
        let b = SampledProb::sample(&ds, &families, &rule, 5, 3);
        assert_eq!(a.prob(0, 0, 40, 500), b.prob(0, 0, 40, 500));
    }

    #[test]
    fn serde_round_trip() {
        let train = PubGen::new(400, 80).generate();
        let model = TrainedProb::train(&train, &presets::citeseer_families());
        let json = serde_json::to_string(&model).unwrap();
        let back: TrainedProb = serde_json::from_str(&json).unwrap();
        assert_eq!(model.prob(0, 0, 50, 400), back.prob(0, 0, 50, 400));
    }
}
