//! Duplicate and cost estimation — Eq. (2)–(5) of §IV-B.
//!
//! Estimates are computed per tree in a single bottom-up pass (children
//! before parents), exactly as the paper's computation algorithm prescribes,
//! and stored on the [`PlanNode`]s. Re-running the pass after a structural
//! change (a sub-tree split) reproduces the paper's split-update equations,
//! because those are just Eq. 2–5 re-evaluated on the new structure.

use pper_mapreduce::CostModel;
use pper_progressive::LevelPolicy;

use crate::plan::PlanTree;
use crate::probmodel::DupProbability;

/// Everything estimation needs besides the tree itself.
pub struct EstimationContext<'a> {
    /// `|D|`: total entities in the dataset.
    pub dataset_size: usize,
    /// Window/Frac/Th policy (§VI-A5).
    pub policy: &'a LevelPolicy,
    /// Cost calibration.
    pub cost_model: &'a CostModel,
    /// Duplicate-probability model `Prob(|X|)`.
    pub prob: &'a dyn DupProbability,
}

/// `Σ_{d=1..w} (n−d)`: pairs a windowed sorted-neighbourhood mechanism
/// resolves on a block of `n` entities with window `w`.
pub fn window_pairs(n: usize, window: usize) -> u64 {
    let n = n as u64;
    let w = (window as u64).min(n.saturating_sub(1));
    n * w - w * (w + 1) / 2
}

/// Recompute `Dup`, `Dis`, `Cost` and `Util` for every node of `tree`,
/// bottom-up.
///
/// * `d(X) = Prob(|X|) · Cov(X)` — §VI-A4 over covered pairs;
/// * `Dup(X) = Frac(X)·d(X) − Σ_child Frac(c)·d(c)` — Eq. (2);
/// * `Dis(X) = min(Th(X), Remain(X))`,
///   `Remain(X) = Cov(X) − d(X) − Σ_desc Dis(desc)` — Eq. (4);
/// * non-root: `Cost(X) = CostA(X) + CostP(X)` — Eq. (3), with
///   `CostP(X) = (Dup(X) + Dis(X)) · resolve_pair`;
/// * root: `Cost(X) = CostA(X) + CostF(X) − Σ_desc CostP(desc)` — Eq. (5),
///   where `CostF` is the full windowed resolution cost scaled by the
///   block's covered-pair ratio (uncovered pairs are skipped by the
///   SHOULD-RESOLVE check at negligible cost).
///
/// Whether a node is a *root* is judged on the current tree structure, so a
/// split sub-tree's root automatically gets `Frac = 1`, the root window and
/// full resolution, as §IV-C2's split strategy requires. Whether it is a
/// *leaf* is judged on the blocking hierarchy (`hier_leaf`): a parent whose
/// children were split away keeps mid-level parameters, since its sub-blocks
/// still exist and are resolved in another task.
pub fn recompute_tree(tree: &mut PlanTree, ctx: &EstimationContext) {
    let n_nodes = tree.nodes.len();
    let mut d = vec![0.0f64; n_nodes]; // d(X) per node
    let mut costp = vec![0.0f64; n_nodes]; // CostP(X) per node

    for idx in (0..n_nodes).rev() {
        let node = &tree.nodes[idx];
        let is_root = node.is_root();
        let is_leaf = node.hier_leaf;
        d[idx] = ctx.prob.estimate_dups(
            tree.family,
            node.level,
            node.size,
            ctx.dataset_size,
            node.cov,
        );
        let frac = ctx.policy.frac(is_root, is_leaf);

        // Eq. (2): own share of duplicates minus what children already found.
        let child_found: f64 = node
            .children
            .iter()
            .map(|&c| {
                let cn = &tree.nodes[c];
                ctx.policy.frac(false, cn.hier_leaf) * d[c]
            })
            .sum();
        let dup = (frac * d[idx] - child_found).max(0.0);

        let desc = tree.descendants(idx);
        let cost_a = ctx.cost_model.block_additional_cost(node.size);

        let (dis, cost);
        if is_root {
            // Eq. (5): full resolution minus work already done below.
            let total_pairs = pper_blocking::pairs(node.size);
            let cov_ratio = if total_pairs == 0 {
                0.0
            } else {
                node.cov as f64 / total_pairs as f64
            };
            let full = window_pairs(node.size, ctx.policy.window_root) as f64 * cov_ratio;
            let cost_f = ctx.cost_model.resolve_pair * full;
            let desc_costp: f64 = desc.iter().map(|&i| costp[i]).sum();
            dis = (full - dup).max(0.0);
            cost = (cost_a + cost_f - desc_costp).max(cost_a);
        } else {
            // Eq. (4) then Eq. (3).
            let desc_dis: f64 = desc.iter().map(|&i| tree.nodes[i].dis).sum();
            let remain = (node.cov as f64 - d[idx] - desc_dis).max(0.0);
            dis = (ctx.policy.termination(node.size) as f64).min(remain);
            costp[idx] = ctx.cost_model.resolve_pair * (dup + dis);
            cost = cost_a + costp[idx];
        }

        let node = &mut tree.nodes[idx];
        node.dup = dup;
        node.dis = dis;
        node.cost = cost;
        node.util = if cost > f64::EPSILON { dup / cost } else { 0.0 };
    }
}

/// Recompute estimates for every tree.
pub fn recompute_all(trees: &mut [PlanTree], ctx: &EstimationContext) {
    for tree in trees {
        recompute_tree(tree, ctx);
    }
}

/// Invariant checks shared by tests and debug assertions.
#[doc(hidden)]
pub fn check_estimates(tree: &PlanTree) -> Result<(), String> {
    for (i, n) in tree.nodes.iter().enumerate() {
        if !(n.dup >= 0.0 && n.dis >= 0.0 && n.cost >= 0.0 && n.util >= 0.0) {
            return Err(format!("node {i} has negative estimate: {n:?}"));
        }
        if n.cost == 0.0 && n.size >= 2 {
            return Err(format!("node {i} of size {} has zero cost", n.size));
        }
        if n.dup > n.cov as f64 + 1e-9 {
            return Err(format!(
                "node {i}: dup {} exceeds covered pairs {}",
                n.dup, n.cov
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanNode;
    use crate::probmodel::HeuristicProb;
    use pper_blocking::{build_forests, presets, DatasetStats};
    use pper_datagen::PubGen;

    fn ctx<'a>(
        n: usize,
        policy: &'a LevelPolicy,
        cm: &'a CostModel,
        prob: &'a HeuristicProb,
    ) -> EstimationContext<'a> {
        EstimationContext {
            dataset_size: n,
            policy,
            cost_model: cm,
            prob,
        }
    }

    fn leaf(key: &str, parent: Option<usize>, size: usize, cov: u64) -> PlanNode {
        PlanNode {
            key: key.into(),
            level: if parent.is_some() { 1 } else { 0 },
            parent,
            children: vec![],
            hier_leaf: true,
            size,
            cov,
            dup: 0.0,
            dis: 0.0,
            cost: 0.0,
            util: 0.0,
        }
    }

    #[test]
    fn window_pairs_matches_enumeration() {
        assert_eq!(window_pairs(4, 3), 6);
        assert_eq!(window_pairs(4, 1), 3);
        assert_eq!(window_pairs(4, 99), 6);
        assert_eq!(window_pairs(0, 5), 0);
        assert_eq!(window_pairs(1, 5), 0);
        // n=10, w=4: 9+8+7+6 = 30
        assert_eq!(window_pairs(10, 4), 30);
    }

    #[test]
    fn single_root_block_equations() {
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb {
            base: 0.2,
            scale: 0.0, // constant probability for hand-checkable numbers
        };
        let mut tree = PlanTree {
            family: 0,
            origin_root_key: "k".into(),
            root_level: 0,
            nodes: vec![leaf("k", None, 10, 45)], // all pairs covered
        };
        recompute_tree(&mut tree, &ctx(1000, &policy, &cm, &prob));
        let n = &tree.nodes[0];
        // d = 0.2 * 45 = 9; root frac = 1, no children ⇒ Dup = 9.
        assert!((n.dup - 9.0).abs() < 1e-9);
        // CostF = window_pairs(10, 15) * (45/45) = Pairs(10) = 45 units.
        let expected_cost = cm.block_additional_cost(10) + 45.0;
        assert!((n.cost - expected_cost).abs() < 1e-9, "{}", n.cost);
        assert!((n.util - n.dup / n.cost).abs() < 1e-12);
        check_estimates(&tree).unwrap();
    }

    #[test]
    fn parent_dup_subtracts_child_share() {
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb {
            base: 0.2,
            scale: 0.0,
        };
        let mut tree = PlanTree {
            family: 0,
            origin_root_key: "k".into(),
            root_level: 0,
            nodes: vec![
                PlanNode {
                    children: vec![1],
                    hier_leaf: false,
                    ..leaf("k", None, 10, 45)
                },
                leaf("kc", Some(0), 6, 15),
            ],
        };
        recompute_tree(&mut tree, &ctx(1000, &policy, &cm, &prob));
        // child: d = 3, leaf frac 0.8 ⇒ Dup_child = 2.4.
        assert!((tree.nodes[1].dup - 2.4).abs() < 1e-9);
        // child Dis = min(Th=6, Remain = 15 - 3 - 0 = 12) = 6.
        assert!((tree.nodes[1].dis - 6.0).abs() < 1e-9);
        // root: d = 9 ⇒ Dup_root = 1·9 − 0.8·3 = 6.6.
        assert!((tree.nodes[0].dup - 6.6).abs() < 1e-9);
        // root cost = CostA + CostF − CostP(child); CostP(child) = 2.4+6 = 8.4.
        let expected = cm.block_additional_cost(10) + 45.0 - 8.4;
        assert!((tree.nodes[0].cost - expected).abs() < 1e-9);
        check_estimates(&tree).unwrap();
    }

    #[test]
    fn deeper_children_reduce_remain() {
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb {
            base: 0.1,
            scale: 0.0,
        };
        let mut tree = PlanTree {
            family: 0,
            origin_root_key: "k".into(),
            root_level: 0,
            nodes: vec![
                PlanNode {
                    children: vec![1],
                    hier_leaf: false,
                    ..leaf("k", None, 40, 700)
                },
                PlanNode {
                    children: vec![2],
                    level: 1,
                    hier_leaf: false,
                    ..leaf("ka", Some(0), 30, 400)
                },
                PlanNode {
                    level: 2,
                    ..leaf("kab", Some(1), 20, 150)
                },
            ],
        };
        recompute_tree(&mut tree, &ctx(1000, &policy, &cm, &prob));
        // Mid node's Remain subtracts the leaf's Dis:
        // leaf: d=15, Dis = min(20, 150-15) = 20.
        assert!((tree.nodes[2].dis - 20.0).abs() < 1e-9);
        // mid: d=40, Remain = 400 - 40 - 20 = 340, Th=30 ⇒ Dis=30.
        assert!((tree.nodes[1].dis - 30.0).abs() < 1e-9);
        check_estimates(&tree).unwrap();
    }

    #[test]
    fn estimates_hold_invariants_on_real_forests() {
        let ds = PubGen::new(4_000, 31).generate();
        let families = presets::citeseer_families();
        let forests = build_forests(&ds, &families);
        let stats = DatasetStats::from_forests(&ds, &families, &forests);
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb::default();
        let c = ctx(ds.len(), &policy, &cm, &prob);
        for ts in &stats.trees {
            let mut tree = PlanTree::from_stats(ts);
            recompute_tree(&mut tree, &c);
            check_estimates(&tree).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn split_then_recompute_makes_new_root_full() {
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb {
            base: 0.2,
            scale: 0.0,
        };
        let c = ctx(1000, &policy, &cm, &prob);
        let mut tree = PlanTree {
            family: 0,
            origin_root_key: "k".into(),
            root_level: 0,
            nodes: vec![
                PlanNode {
                    children: vec![1],
                    hier_leaf: false,
                    ..leaf("k", None, 40, 700)
                },
                leaf("ka", Some(0), 25, 250),
            ],
        };
        recompute_tree(&mut tree, &c);
        let child_cost_before = tree.nodes[1].cost;

        let mut sub = tree.split_off(1);
        recompute_tree(&mut tree, &c);
        recompute_tree(&mut sub, &c);

        // The split root is now resolved fully: its cost grows (Eq. 5 > Eq. 3
        // for a block this size) and its Frac rises to 1 (higher Dup).
        assert!(
            sub.nodes[0].cost > child_cost_before,
            "full resolution should cost more: {} vs {child_cost_before}",
            sub.nodes[0].cost
        );
        // Old parent lost the child's covered pairs.
        assert_eq!(tree.nodes[0].cov, 450);
        check_estimates(&tree).unwrap();
        check_estimates(&sub).unwrap();
    }
}
