//! `GENERATE-SCHEDULE` (Fig. 6) and the baseline schedulers.
//!
//! The optimal schedule (§IV-C1) sorts blocks by utility into the list `SL`,
//! cuts `SL` into buckets by a cost vector `C` (bucket `k` holds the blocks
//! resolvable during `(c_{k−1}·r, c_k·r]` cluster-cost units), and balances
//! each bucket's cost across the `r` reduce tasks. That partitioning is
//! NP-hard, and large trees can make bucket balance outright infeasible, so
//! the approximate solution:
//!
//! 1. **Identify-Trees** — mark a tree overflowed if any bucket of its cost
//!    vector `VC(T)` exceeds that bucket's width;
//! 2. **Split-Tree** — greedily split sub-trees off overflowed trees
//!    (`SHOULD-SPLIT` keeps the highest-utility children with the root and
//!    splits the rest once the kept set would overflow a bucket);
//! 3. **Partition-Trees** — assign trees to reduce tasks in descending
//!    weighted-cost order, each to the task with the largest slack `SK(R)`;
//! 4. **Sort-Blocks** — order each task's blocks by descending utility,
//!    subject to the child-before-parent constraint of incremental
//!    bottom-up resolution (children are hoisted ahead of their parent).
//!
//! [`TreeScheduler::NoSplit`] skips step 2 and [`TreeScheduler::Lpt`]
//! replaces steps 1–3 with longest-processing-time load balancing — the two
//! baselines of §VI-B2.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use pper_blocking::DatasetStats;

use crate::estimate::{recompute_all, recompute_tree, EstimationContext};
use crate::plan::{BlockRef, PlanTree, Schedule};

/// The weighting function `W(·)` over the cost vector (§II-B): non-increasing
/// weights emphasizing early cost intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Weighting {
    /// All intervals weigh the same (final recall is all that matters).
    Uniform,
    /// `W(c_k) = (|C| − k + 1) / |C|`: linearly decaying emphasis.
    Linear,
    /// `W(c_k) = decay^(k−1)`: sharply front-loaded emphasis.
    Exponential {
        /// Per-bucket decay in `(0, 1]`.
        decay: f64,
    },
}

impl Weighting {
    /// Weight of 1-based bucket `k` out of `num_buckets`.
    pub fn weight(&self, k: usize, num_buckets: usize) -> f64 {
        debug_assert!(k >= 1 && k <= num_buckets);
        match self {
            Weighting::Uniform => 1.0,
            Weighting::Linear => (num_buckets - k + 1) as f64 / num_buckets as f64,
            Weighting::Exponential { decay } => decay.powi(k as i32 - 1),
        }
    }
}

/// How the cost vector `C` is laid out (the extended report discusses
/// "several ways for specifying the weighting function and the cost
/// vector", including optimizing "for the case where the goal is to
/// generate the highest possible quality result given a resolution cost
/// budget").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostVectorSpec {
    /// `C` spans the estimated per-task share of the whole run (default):
    /// optimize progressiveness over the full execution.
    FullRun,
    /// `C` spans exactly this many per-task cost units: optimize the result
    /// delivered within a resolution budget. Blocks past the budget pile
    /// into the final bucket, where the weighting function can zero them
    /// out.
    BudgetPerTask(f64),
}

/// Which tree-scheduling algorithm to run (§VI-B2's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeScheduler {
    /// The paper's algorithm: identify + split + slack partitioning.
    Progressive,
    /// The paper's algorithm without tree splitting.
    NoSplit,
    /// Longest Processing Time load balancing (Graham): sort trees by cost,
    /// assign each to the least-loaded task.
    Lpt,
}

/// Schedule-generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Number of reduce tasks `r`.
    pub reduce_tasks: usize,
    /// Number of cost-vector buckets `|C|`.
    pub num_buckets: usize,
    /// Weighting function `W(·)`.
    pub weighting: Weighting,
    /// Trees split per identify/split iteration (the batch size `b`).
    pub split_batch: usize,
    /// Which scheduler to run.
    pub scheduler: TreeScheduler,
    /// Safety cap on identify/split iterations.
    pub max_split_rounds: usize,
    /// Cost-vector layout.
    pub cost_vector: CostVectorSpec,
}

impl ScheduleConfig {
    /// Paper-flavoured defaults for `r` reduce tasks.
    pub fn new(reduce_tasks: usize) -> Self {
        Self {
            reduce_tasks: reduce_tasks.max(1),
            num_buckets: 10,
            weighting: Weighting::Linear,
            split_batch: 4,
            scheduler: TreeScheduler::Progressive,
            max_split_rounds: 64,
            cost_vector: CostVectorSpec::FullRun,
        }
    }

    /// Same configuration with a different scheduler.
    pub fn with_scheduler(mut self, scheduler: TreeScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Bucketed view of the current utility-sorted block list `SL`.
struct Buckets {
    /// Bucket widths `c_k − c_{k−1}` (per-task cost units).
    widths: Vec<f64>,
    /// 0-based bucket of every block.
    of_block: HashMap<(usize, usize), usize>,
}

impl Buckets {
    /// Build `SL`, the cost vector `C` (uniform buckets over the per-task
    /// share dictated by `spec`), and each block's bucket.
    fn build(trees: &[PlanTree], r: usize, num_buckets: usize, spec: CostVectorSpec) -> Self {
        let mut sl: Vec<(usize, usize, f64, f64)> = Vec::new(); // (tree, node, util, cost)
        let mut total = 0.0;
        for (ti, tree) in trees.iter().enumerate() {
            for (ni, node) in tree.nodes.iter().enumerate() {
                sl.push((ti, ni, node.util, node.cost));
                total += node.cost;
            }
        }
        sl.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));

        let share = match spec {
            CostVectorSpec::FullRun => (total / r.max(1) as f64).max(f64::MIN_POSITIVE),
            CostVectorSpec::BudgetPerTask(budget) => budget.max(f64::MIN_POSITIVE),
        };
        let width = share / num_buckets.max(1) as f64;
        let widths = vec![width; num_buckets.max(1)];

        let mut of_block = HashMap::with_capacity(sl.len());
        let mut cum = 0.0;
        for (ti, ni, _, cost) in sl {
            cum += cost;
            // Block is in bucket k if cumulative SL cost ≤ c_k · r.
            let k = ((cum / (width * r as f64)).ceil() as usize)
                .saturating_sub(1)
                .min(num_buckets - 1);
            of_block.insert((ti, ni), k);
        }
        Self { widths, of_block }
    }

    /// Cost vector `VC(T)` of the sub-tree rooted at `node` in `tree`.
    fn subtree_vc(&self, trees: &[PlanTree], tree: usize, node: usize) -> Vec<f64> {
        let mut vc = vec![0.0; self.widths.len()];
        let t = &trees[tree];
        let mut stack = vec![node];
        while let Some(i) = stack.pop() {
            let k = self.of_block[&(tree, i)];
            vc[k] += t.nodes[i].cost;
            stack.extend_from_slice(&t.nodes[i].children);
        }
        vc
    }

    /// Full-tree cost vector.
    fn tree_vc(&self, trees: &[PlanTree], tree: usize) -> Vec<f64> {
        self.subtree_vc(trees, tree, 0)
    }
}

/// Generate a progressive schedule from job-1 statistics.
///
/// `ctx` supplies the estimation models; `cfg` the scheduling knobs.
pub fn generate_schedule(
    stats: &DatasetStats,
    ctx: &EstimationContext,
    cfg: &ScheduleConfig,
) -> Schedule {
    let mut trees: Vec<PlanTree> = stats.trees.iter().map(PlanTree::from_stats).collect();
    recompute_all(&mut trees, ctx);

    match cfg.scheduler {
        TreeScheduler::Progressive => {
            split_overflowed_trees(&mut trees, ctx, cfg);
            let assignment = partition_trees(&trees, cfg);
            finalize(trees, assignment, cfg)
        }
        TreeScheduler::NoSplit => {
            let assignment = partition_trees(&trees, cfg);
            finalize(trees, assignment, cfg)
        }
        TreeScheduler::Lpt => {
            let assignment = partition_lpt(&trees, cfg.reduce_tasks);
            finalize(trees, assignment, cfg)
        }
    }
}

/// The identify/split loop (Fig. 6 lines 2–7).
fn split_overflowed_trees(
    trees: &mut Vec<PlanTree>,
    ctx: &EstimationContext,
    cfg: &ScheduleConfig,
) {
    for _round in 0..cfg.max_split_rounds {
        let buckets = Buckets::build(trees, cfg.reduce_tasks, cfg.num_buckets, cfg.cost_vector);
        // IDENTIFY-TREES: overflowed *and splittable* (root has children).
        let mut overflowed: Vec<(usize, f64)> = (0..trees.len())
            .filter(|&t| !trees[t].nodes[0].children.is_empty())
            .filter_map(|t| {
                let vc = buckets.tree_vc(trees, t);
                let worst = vc
                    .iter()
                    .zip(&buckets.widths)
                    .map(|(&v, &w)| v - w)
                    .fold(f64::MIN, f64::max);
                (worst > 1e-9).then_some((t, worst))
            })
            .collect();
        if overflowed.is_empty() {
            return;
        }
        // Split the worst offenders first, b per round.
        overflowed.sort_by(|a, b| b.1.total_cmp(&a.1));
        let batch: Vec<usize> = overflowed
            .iter()
            .take(cfg.split_batch.max(1))
            .map(|&(t, _)| t)
            .collect();
        let mut split_any = false;
        for t in batch {
            split_any |= split_tree(trees, t, &buckets, ctx, cfg);
        }
        if !split_any {
            return; // nothing can improve further
        }
    }
}

/// `SPLIT-TREE` (Fig. 6): greedily decide, child by child in descending
/// utility, whether each child sub-tree stays with the root or becomes a
/// stand-alone tree. Returns true if at least one sub-tree was split.
fn split_tree(
    trees: &mut Vec<PlanTree>,
    t: usize,
    buckets: &Buckets,
    ctx: &EstimationContext,
    cfg: &ScheduleConfig,
) -> bool {
    let root_bucket = buckets.of_block[&(t, 0)];
    let mut children: Vec<usize> = trees[t].nodes[0].children.clone();
    children.sort_by(|&a, &b| trees[t].nodes[b].util.total_cmp(&trees[t].nodes[a].util));

    let mut kept: Vec<usize> = Vec::new(); // the set E
    let mut kept_vc = vec![0.0; cfg.num_buckets];
    let mut to_split: Vec<usize> = Vec::new();
    for &child in &children {
        let child_vc = buckets.subtree_vc(trees, t, child);
        // SHOULD-SPLIT: new root cost assuming Chd = E ∪ {child}; place it in
        // the root's bucket (V*), and test every bucket for overflow.
        let new_root_cost = root_cost_with_children(&trees[t], ctx, &kept, child);
        let mut overflow = false;
        for h in 0..cfg.num_buckets {
            let mut load = kept_vc[h] + child_vc[h];
            if h == root_bucket {
                load += new_root_cost;
            }
            if load > buckets.widths[h] + 1e-9 {
                overflow = true;
                break;
            }
        }
        if overflow && !kept.is_empty() {
            to_split.push(child);
        } else {
            // Keep the child (the first/most useful child always stays: a
            // tree must retain at least one child or the split is pointless).
            for (k, v) in kept_vc.iter_mut().zip(&child_vc) {
                *k += v;
            }
            kept.push(child);
        }
    }
    if to_split.is_empty() {
        return false;
    }
    // Detach in descending node index so earlier indices stay valid.
    to_split.sort_unstable_by(|a, b| b.cmp(a));
    for child in to_split {
        let mut sub = trees[t].split_off(child);
        recompute_tree(&mut sub, ctx);
        trees.push(sub);
    }
    recompute_tree(&mut trees[t], ctx);
    true
}

/// Root cost under the assumption that only `kept ∪ {candidate}` of the
/// root's children remain attached (Eq. 5 on the hypothetical structure).
fn root_cost_with_children(
    tree: &PlanTree,
    ctx: &EstimationContext,
    kept: &[usize],
    candidate: usize,
) -> f64 {
    let root = &tree.nodes[0];
    // Covered pairs the root would lose: every child sub-tree not kept.
    let removed_cov: u64 = root
        .children
        .iter()
        .filter(|&&c| c != candidate && !kept.contains(&c))
        .map(|&c| tree.nodes[c].cov)
        .sum();
    let cov = root.cov.saturating_sub(removed_cov);
    let total_pairs = pper_blocking::pairs(root.size);
    let cov_ratio = if total_pairs == 0 {
        0.0
    } else {
        cov as f64 / total_pairs as f64
    };
    let full = crate::estimate::window_pairs(root.size, ctx.policy.window_root) as f64 * cov_ratio;
    let cost_f = ctx.cost_model.resolve_pair * full;
    let cost_a = ctx.cost_model.block_additional_cost(root.size);
    // CostP of the descendants that remain: kept children's sub-trees.
    let mut desc_costp = 0.0;
    let mut stack: Vec<usize> = kept.iter().copied().chain([candidate]).collect();
    while let Some(i) = stack.pop() {
        let n = &tree.nodes[i];
        desc_costp += n.cost - ctx.cost_model.block_additional_cost(n.size);
        stack.extend_from_slice(&n.children);
    }
    (cost_a + cost_f - desc_costp).max(cost_a)
}

/// `PARTITION-TREES`: descending weighted-cost order, each tree to the task
/// with the largest slack `SK(R)`.
fn partition_trees(trees: &[PlanTree], cfg: &ScheduleConfig) -> Vec<usize> {
    let buckets = Buckets::build(trees, cfg.reduce_tasks, cfg.num_buckets, cfg.cost_vector);
    let vcs: Vec<Vec<f64>> = (0..trees.len())
        .map(|t| buckets.tree_vc(trees, t))
        .collect();
    let weights: Vec<f64> = (1..=cfg.num_buckets)
        .map(|k| cfg.weighting.weight(k, cfg.num_buckets))
        .collect();

    let mut order: Vec<usize> = (0..trees.len()).collect();
    let weighted_cost =
        |t: usize| -> f64 { vcs[t].iter().zip(&weights).map(|(&v, &w)| v * w).sum() };
    order.sort_by(|&a, &b| weighted_cost(b).total_cmp(&weighted_cost(a)));

    let mut load = vec![vec![0.0; cfg.num_buckets]; cfg.reduce_tasks];
    let mut assignment = vec![0usize; trees.len()];
    for t in order {
        // SK(R) = Σ_h δ_h · W(c_h) · (width_h − load_R[h]).
        let best = (0..cfg.reduce_tasks)
            .map(|r| {
                let slack: f64 = (0..cfg.num_buckets)
                    .filter(|&h| vcs[t][h] > 0.0)
                    .map(|h| weights[h] * (buckets.widths[h] - load[r][h]))
                    .sum();
                (r, slack)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(0, |(r, _)| r);
        assignment[t] = best;
        for h in 0..cfg.num_buckets {
            load[best][h] += vcs[t][h];
        }
    }
    assignment
}

/// LPT baseline: trees in descending total cost, each to the least-loaded
/// task.
fn partition_lpt(trees: &[PlanTree], reduce_tasks: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..trees.len()).collect();
    order.sort_by(|&a, &b| trees[b].total_cost().total_cmp(&trees[a].total_cost()));
    let mut load = vec![0.0f64; reduce_tasks.max(1)];
    let mut assignment = vec![0usize; trees.len()];
    for t in order {
        let best = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(r, _)| r);
        assignment[t] = best;
        load[best] += trees[t].total_cost();
    }
    assignment
}

/// `SORT-BLOCKS` per task plus SQ/Dom assignment.
fn finalize(trees: Vec<PlanTree>, assignment: Vec<usize>, cfg: &ScheduleConfig) -> Schedule {
    let num_tasks = cfg.reduce_tasks;
    let block_order: Vec<Vec<BlockRef>> = (0..num_tasks)
        .map(|task| {
            let task_trees: Vec<usize> = (0..trees.len())
                .filter(|&t| assignment[t] == task)
                .collect();
            sort_blocks(&trees, &task_trees)
        })
        .collect();

    // Tree SQ: within each task, trees ranked by the position of their first
    // scheduled block; SQ = task·RANGE + rank.
    let mut tree_sq = vec![0u64; trees.len()];
    for (task, order) in block_order.iter().enumerate() {
        let mut seen: Vec<usize> = Vec::new();
        for b in order {
            if !seen.contains(&b.tree) {
                seen.push(b.tree);
            }
        }
        for (rank, &t) in seen.iter().enumerate() {
            tree_sq[t] = task as u64 * Schedule::SQ_RANGE + rank as u64;
        }
    }

    // Dominance values: any distinct assignment works; tree index + 1 keeps
    // zero free as a sentinel namespace.
    let dom: Vec<u64> = (0..trees.len()).map(|t| t as u64 + 1).collect();

    Schedule {
        task_of_tree: assignment,
        block_order,
        tree_sq,
        dom,
        num_tasks,
        trees,
    }
}

/// Order a task's blocks by descending utility subject to the
/// child-before-parent constraint: visiting blocks in utility order, any
/// still-unemitted descendants of a block are hoisted immediately before it
/// (in post-order, highest-utility siblings first).
fn sort_blocks(trees: &[PlanTree], task_trees: &[usize]) -> Vec<BlockRef> {
    let mut all: Vec<BlockRef> = task_trees
        .iter()
        .flat_map(|&t| (0..trees[t].nodes.len()).map(move |n| BlockRef { tree: t, node: n }))
        .collect();
    all.sort_by(|a, b| {
        let ua = trees[a.tree].nodes[a.node].util;
        let ub = trees[b.tree].nodes[b.node].util;
        ub.total_cmp(&ua)
            .then(a.tree.cmp(&b.tree))
            .then(a.node.cmp(&b.node))
    });

    let mut emitted: HashMap<(usize, usize), bool> = HashMap::new();
    let mut out = Vec::with_capacity(all.len());
    for b in &all {
        emit_with_descendants(trees, *b, &mut emitted, &mut out);
    }
    out
}

fn emit_with_descendants(
    trees: &[PlanTree],
    b: BlockRef,
    emitted: &mut HashMap<(usize, usize), bool>,
    out: &mut Vec<BlockRef>,
) {
    if emitted.contains_key(&(b.tree, b.node)) {
        return;
    }
    // Children in descending utility, each with its own descendants first.
    let mut children = trees[b.tree].nodes[b.node].children.clone();
    children.sort_by(|&x, &y| {
        trees[b.tree].nodes[y]
            .util
            .total_cmp(&trees[b.tree].nodes[x].util)
    });
    for c in children {
        emit_with_descendants(
            trees,
            BlockRef {
                tree: b.tree,
                node: c,
            },
            emitted,
            out,
        );
    }
    emitted.insert((b.tree, b.node), true);
    out.push(b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probmodel::HeuristicProb;
    use pper_blocking::{build_forests, presets};
    use pper_datagen::PubGen;
    use pper_mapreduce::CostModel;
    use pper_progressive::LevelPolicy;

    fn make_stats(n: usize, seed: u64) -> (DatasetStats, usize) {
        let ds = PubGen::new(n, seed).generate();
        let families = presets::citeseer_families();
        let forests = build_forests(&ds, &families);
        (
            DatasetStats::from_forests(&ds, &families, &forests),
            ds.len(),
        )
    }

    fn run(
        stats: &DatasetStats,
        dataset_size: usize,
        scheduler: TreeScheduler,
        tasks: usize,
    ) -> Schedule {
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb::default();
        let ctx = EstimationContext {
            dataset_size,
            policy: &policy,
            cost_model: &cm,
            prob: &prob,
        };
        let cfg = ScheduleConfig::new(tasks).with_scheduler(scheduler);
        generate_schedule(stats, &ctx, &cfg)
    }

    #[test]
    fn weighting_is_non_increasing() {
        for w in [
            Weighting::Uniform,
            Weighting::Linear,
            Weighting::Exponential { decay: 0.6 },
        ] {
            let vals: Vec<f64> = (1..=8).map(|k| w.weight(k, 8)).collect();
            assert!(vals.windows(2).all(|p| p[0] >= p[1]), "{w:?}: {vals:?}");
            assert!(vals.iter().all(|&v| v > 0.0 && v <= 1.0));
        }
    }

    #[test]
    fn schedule_covers_every_block_exactly_once() {
        let (stats, n) = make_stats(3_000, 41);
        for scheduler in [
            TreeScheduler::Progressive,
            TreeScheduler::NoSplit,
            TreeScheduler::Lpt,
        ] {
            let s = run(&stats, n, scheduler, 4);
            let mut seen = std::collections::HashSet::new();
            for order in &s.block_order {
                for b in order {
                    assert!(
                        seen.insert((b.tree, b.node)),
                        "{scheduler:?} duplicated block"
                    );
                }
            }
            let total: usize = s.trees.iter().map(|t| t.nodes.len()).sum();
            assert_eq!(seen.len(), total, "{scheduler:?} missed blocks");
        }
    }

    #[test]
    fn each_tree_lands_on_one_task_and_blocks_follow() {
        let (stats, n) = make_stats(3_000, 42);
        let s = run(&stats, n, TreeScheduler::Progressive, 4);
        for (task, order) in s.block_order.iter().enumerate() {
            for b in order {
                assert_eq!(s.task_of_tree[b.tree], task);
            }
        }
    }

    #[test]
    fn children_always_precede_parents() {
        let (stats, n) = make_stats(4_000, 43);
        for scheduler in [
            TreeScheduler::Progressive,
            TreeScheduler::NoSplit,
            TreeScheduler::Lpt,
        ] {
            let s = run(&stats, n, scheduler, 4);
            for order in &s.block_order {
                let pos: HashMap<(usize, usize), usize> = order
                    .iter()
                    .enumerate()
                    .map(|(i, b)| ((b.tree, b.node), i))
                    .collect();
                for b in order {
                    for &c in &s.trees[b.tree].nodes[b.node].children {
                        assert!(
                            pos[&(b.tree, c)] < pos[&(b.tree, b.node)],
                            "{scheduler:?}: child after parent"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn progressive_splits_skewed_trees() {
        let (stats, n) = make_stats(6_000, 44);
        let nosplit = run(&stats, n, TreeScheduler::NoSplit, 8);
        let ours = run(&stats, n, TreeScheduler::Progressive, 8);
        assert_eq!(nosplit.trees.len(), stats.trees.len());
        assert!(
            ours.trees.len() > stats.trees.len(),
            "skewed Zipf blocks should trigger splits: {} vs {}",
            ours.trees.len(),
            stats.trees.len()
        );
        // Split trees are marked by a non-zero root level.
        assert!(ours.trees.iter().any(|t| t.root_level > 0));
    }

    #[test]
    fn lpt_balances_total_cost() {
        let (stats, n) = make_stats(4_000, 45);
        let s = run(&stats, n, TreeScheduler::Lpt, 4);
        let mut loads = vec![0.0; 4];
        for (t, tree) in s.trees.iter().enumerate() {
            loads[s.task_of_tree[t]] += tree.total_cost();
        }
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        // Graham's bound keeps imbalance small; generous check here.
        assert!(
            max < 2.0 * min + 1.0,
            "LPT load imbalance too large: {loads:?}"
        );
    }

    #[test]
    fn sq_values_respect_task_ranges() {
        let (stats, n) = make_stats(3_000, 46);
        let s = run(&stats, n, TreeScheduler::Progressive, 4);
        for (t, &sq) in s.tree_sq.iter().enumerate() {
            let task = s.task_of_tree[t] as u64;
            assert!(sq >= task * Schedule::SQ_RANGE);
            assert!(sq < (task + 1) * Schedule::SQ_RANGE);
        }
    }

    #[test]
    fn dom_values_unique() {
        let (stats, n) = make_stats(2_000, 47);
        let s = run(&stats, n, TreeScheduler::Progressive, 4);
        let mut doms = s.dom.clone();
        doms.sort_unstable();
        doms.dedup();
        assert_eq!(doms.len(), s.trees.len());
        assert!(doms.iter().all(|&d| d > 0));
    }

    #[test]
    fn split_trees_preserve_cov_mass() {
        // Splitting redistributes covered pairs but must not create or lose
        // root-level coverage overall.
        let (stats, n) = make_stats(5_000, 48);
        let before: u64 = stats.trees.iter().map(|t| t.nodes[0].covered_pairs()).sum();
        let s = run(&stats, n, TreeScheduler::Progressive, 8);
        let after: u64 = s.trees.iter().map(|t| t.nodes[0].cov).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn budget_cost_vector_reorders_priorities() {
        // With a tiny per-task budget, every bucket shrinks, so far more
        // trees overflow and get split than under the full-run layout.
        let (stats, n) = make_stats(5_000, 50);
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb::default();
        let ctx = EstimationContext {
            dataset_size: n,
            policy: &policy,
            cost_model: &cm,
            prob: &prob,
        };
        let full_cfg = ScheduleConfig::new(8);
        let full = generate_schedule(&stats, &ctx, &full_cfg);
        let mut budget_cfg = ScheduleConfig::new(8);
        budget_cfg.cost_vector = CostVectorSpec::BudgetPerTask(500.0);
        let budgeted = generate_schedule(&stats, &ctx, &budget_cfg);
        assert!(
            budgeted.trees.len() >= full.trees.len(),
            "tight budget should split at least as many trees: {} vs {}",
            budgeted.trees.len(),
            full.trees.len()
        );
        // Both remain complete schedules.
        let blocks = |s: &Schedule| -> usize { s.trees.iter().map(|t| t.nodes.len()).sum() };
        let ordered = |s: &Schedule| -> usize { s.block_order.iter().map(Vec::len).sum() };
        assert_eq!(blocks(&budgeted), ordered(&budgeted));
        assert_eq!(blocks(&full), ordered(&full));
    }

    mod random_trees {
        use super::*;
        use pper_blocking::{NodeStats, TreeStats};
        use proptest::prelude::*;

        /// Random tree stats: a root of `size` members recursively divided
        /// into child blocks — structurally arbitrary but valid.
        fn arb_tree(family: usize, key_seed: u32) -> impl Strategy<Value = TreeStats> {
            (4usize..600, 0u8..3).prop_map(move |(size, depth)| {
                let mut nodes = vec![NodeStats {
                    key: format!("r{key_seed}"),
                    level: 0,
                    parent: None,
                    children: vec![],
                    size,
                    uncovered_pairs: 0,
                }];
                // Deterministic pseudo-random splitting from the size.
                let mut frontier = vec![0usize];
                for level in 1..=depth as usize {
                    let mut next = Vec::new();
                    for &p in &frontier {
                        let psize = nodes[p].size;
                        if psize < 8 {
                            continue;
                        }
                        let left = psize / 2 - (psize % 3);
                        let right = psize - left - 1;
                        for (i, csize) in [left, right].into_iter().enumerate() {
                            if csize < 2 {
                                continue;
                            }
                            let idx = nodes.len();
                            nodes.push(NodeStats {
                                key: format!("{}c{i}", nodes[p].key),
                                level,
                                parent: Some(p),
                                children: vec![],
                                size: csize,
                                uncovered_pairs: 0,
                            });
                            nodes[p].children.push(idx);
                            next.push(idx);
                        }
                    }
                    frontier = next;
                }
                TreeStats {
                    family,
                    root_key: format!("r{key_seed}"),
                    nodes,
                }
            })
        }

        fn arb_stats() -> impl Strategy<Value = DatasetStats> {
            proptest::collection::vec(0u32..1000, 2..12).prop_flat_map(|seeds| {
                let trees: Vec<_> = seeds
                    .iter()
                    .enumerate()
                    .map(|(i, &seed)| arb_tree(i % 3, seed * 16 + i as u32))
                    .collect();
                trees.prop_map(|trees| DatasetStats {
                    num_entities: 10_000,
                    trees,
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

            #[test]
            fn prop_schedule_is_complete_for_random_trees(
                stats in arb_stats(),
                tasks in 1usize..9,
                scheduler_pick in 0u8..3,
            ) {
                let scheduler = match scheduler_pick {
                    0 => TreeScheduler::Progressive,
                    1 => TreeScheduler::NoSplit,
                    _ => TreeScheduler::Lpt,
                };
                let policy = LevelPolicy::citeseer();
                let cm = CostModel::default();
                let prob = HeuristicProb::default();
                let ctx = EstimationContext {
                    dataset_size: stats.num_entities,
                    policy: &policy,
                    cost_model: &cm,
                    prob: &prob,
                };
                let cfg = ScheduleConfig::new(tasks).with_scheduler(scheduler);
                let s = generate_schedule(&stats, &ctx, &cfg);

                // Complete, duplicate-free block coverage.
                let mut seen = std::collections::HashSet::new();
                for (task, order) in s.block_order.iter().enumerate() {
                    for b in order {
                        prop_assert!(seen.insert((b.tree, b.node)));
                        prop_assert_eq!(s.task_of_tree[b.tree], task);
                    }
                }
                let total: usize = s.trees.iter().map(|t| t.nodes.len()).sum();
                prop_assert_eq!(seen.len(), total);

                // Child-before-parent in every task order.
                for order in &s.block_order {
                    let pos: HashMap<(usize, usize), usize> = order
                        .iter()
                        .enumerate()
                        .map(|(i, b)| ((b.tree, b.node), i))
                        .collect();
                    for b in order {
                        for &c in &s.trees[b.tree].nodes[b.node].children {
                            prop_assert!(pos[&(b.tree, c)] < pos[&(b.tree, b.node)]);
                        }
                    }
                }

                // Valid SQ + unique Dom values.
                let mut doms = s.dom.clone();
                doms.sort_unstable();
                doms.dedup();
                prop_assert_eq!(doms.len(), s.trees.len());
            }
        }
    }

    #[test]
    fn single_task_schedule_works() {
        let (stats, n) = make_stats(1_000, 49);
        let s = run(&stats, n, TreeScheduler::Progressive, 1);
        assert_eq!(s.num_tasks, 1);
        assert!(s.task_of_tree.iter().all(|&t| t == 0));
        assert_eq!(s.block_order.len(), 1);
    }
}
