//! Redundancy-free resolution support (§V): dominance values, the
//! `List(e, X)` construction, and the `SHOULD-RESOLVE` check (Fig. 7).
//!
//! Every tree carries a unique dominance value `Dom(T)`. The map phase of
//! the second job attaches to each emitted entity a *dominance list*:
//!
//! * position `j < n` holds `Dom` of the family-`j` tree relevant to the
//!   entity — the tree being emitted to when `j` is the tree's own family,
//!   otherwise the family-`j` *root* tree containing the entity;
//! * an optional position `n` (the paper's `(n+1)`-st, 1-based) holds `Dom`
//!   of the highest split-off sub-tree below the current tree that still
//!   contains the entity.
//!
//! At the reduce side, `SHOULD-RESOLVE` compares two entities' lists: a pair
//! is skipped when a more dominating family's tree owns it (loop over
//! positions `0..family`), or when both entities fall into the same split
//! sub-tree (which resolves the pair fully itself).

use std::collections::HashMap;

use pper_blocking::{BlockingFamily, FamilyIndex};
use pper_datagen::Entity;
use pper_mapreduce::fxhash::hash_one;
use serde::{Deserialize, Serialize};

use crate::plan::Schedule;

/// Dominance list attached to one (entity, tree) emission. Length is the
/// number of main blocking functions `n`, or `n + 1` when a split sub-tree
/// below the tree contains the entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomList(pub Vec<u64>);

/// High bit marking sentinel values for entities whose root block of some
/// family was eliminated (singleton blocks form no tree). Two entities can
/// only share a sentinel if they share the eliminated key — impossible,
/// since a shared key means ≥ 2 members and hence a real tree — modulo a
/// 2⁻⁶⁴ hash collision between different keys, which we accept.
const SENTINEL_BIT: u64 = 1 << 63;

fn sentinel(family: FamilyIndex, key: &str) -> u64 {
    hash_one(&(family as u64, key)) | SENTINEL_BIT
}

/// Locates the trees of a [`Schedule`] from entity blocking keys.
#[derive(Debug, Clone)]
pub struct TreeLocator {
    /// `(family, root_level, root_key) → tree index`.
    roots: HashMap<(usize, usize, String), usize>,
    /// Per family: sorted distinct levels at which tree roots exist.
    levels: Vec<Vec<usize>>,
    num_families: usize,
}

impl TreeLocator {
    /// Index all tree roots of `schedule` for `num_families` families.
    pub fn new(schedule: &Schedule, num_families: usize) -> Self {
        let mut roots = HashMap::with_capacity(schedule.trees.len());
        let mut levels = vec![Vec::new(); num_families];
        for (t, tree) in schedule.trees.iter().enumerate() {
            roots.insert(
                (tree.family, tree.root_level, tree.root_key().to_string()),
                t,
            );
            if !levels[tree.family].contains(&tree.root_level) {
                levels[tree.family].push(tree.root_level);
            }
        }
        for l in &mut levels {
            l.sort_unstable();
        }
        Self {
            roots,
            levels,
            num_families,
        }
    }

    /// Tree containing the block rooted at `(family, level, key)`, if any.
    pub fn tree_at(&self, family: FamilyIndex, level: usize, key: &str) -> Option<usize> {
        self.roots.get(&(family, level, key.to_string())).copied()
    }

    /// All trees containing `entity`: for each family, the root tree (if it
    /// exists) plus every split sub-tree whose root block contains the
    /// entity.
    pub fn trees_of_entity(&self, families: &[BlockingFamily], entity: &Entity) -> Vec<usize> {
        let mut out = Vec::new();
        for (f, family) in families.iter().enumerate() {
            for &level in &self.levels[f] {
                if level >= family.depth() {
                    continue;
                }
                let key = family.key_at(entity, level);
                if let Some(t) = self.tree_at(f, level, &key) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Build `List(entity, tree)` (§V).
    ///
    /// `tree` must contain the entity (i.e. come from
    /// [`TreeLocator::trees_of_entity`]).
    pub fn dom_list(
        &self,
        schedule: &Schedule,
        families: &[BlockingFamily],
        entity: &Entity,
        tree: usize,
    ) -> DomList {
        let own_family = schedule.trees[tree].family;
        let mut list = Vec::with_capacity(self.num_families + 1);
        for (f, family) in families.iter().enumerate() {
            if f == own_family {
                list.push(schedule.dom[tree]);
            } else {
                let key = family.root_key(entity);
                match self.tree_at(f, 0, &key) {
                    Some(t) => list.push(schedule.dom[t]),
                    None => list.push(sentinel(f, &key)),
                }
            }
        }
        // Highest split-root descendant of `tree` containing the entity.
        let own_level = schedule.trees[tree].root_level;
        let family = &families[own_family];
        for &level in &self.levels[own_family] {
            if level <= own_level || level >= family.depth() {
                continue;
            }
            let key = family.key_at(entity, level);
            if let Some(t) = self.tree_at(own_family, level, &key) {
                if t != tree {
                    list.push(schedule.dom[t]);
                    break; // smallest deeper level = highest descendant
                }
            }
        }
        DomList(list)
    }
}

/// `SHOULD-RESOLVE` (Fig. 7): is the tree of blocking family `family`
/// responsible for resolving the pair `(a, b)`?
///
/// * positions `0..family` — if the entities share a more-dominating
///   family's tree, that tree resolves the pair: skip;
/// * position `n_families` (present only when a split descendant exists) —
///   if both entities fall into the same split sub-tree, it resolves the
///   pair fully itself: skip.
pub fn should_resolve(a: &DomList, b: &DomList, family: FamilyIndex, n_families: usize) -> bool {
    for m in 0..family {
        if a.0[m] == b.0[m] {
            return false;
        }
    }
    if a.0.len() > n_families && b.0.len() > n_families && a.0[n_families] == b.0[n_families] {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::EstimationContext;
    use crate::generate::{generate_schedule, ScheduleConfig};
    use crate::probmodel::HeuristicProb;
    use pper_blocking::{build_forests, presets, DatasetStats};
    use pper_datagen::{toy_people, PubGen};
    use pper_mapreduce::CostModel;
    use pper_progressive::LevelPolicy;

    fn toy_schedule() -> (Schedule, Vec<BlockingFamily>, pper_datagen::Dataset) {
        let ds = toy_people();
        let families = presets::toy_families();
        let forests = build_forests(&ds, &families);
        let stats = DatasetStats::from_forests(&ds, &families, &forests);
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb::default();
        let ctx = EstimationContext {
            dataset_size: ds.len(),
            policy: &policy,
            cost_model: &cm,
            prob: &prob,
        };
        let schedule = generate_schedule(&stats, &ctx, &ScheduleConfig::new(2));
        (schedule, families, ds)
    }

    #[test]
    fn locator_finds_root_trees() {
        let (schedule, families, ds) = toy_schedule();
        let locator = TreeLocator::new(&schedule, families.len());
        // e1 (id 0, "John Lopez", HI): in X-tree "jo" and Y-tree "hi".
        let trees = locator.trees_of_entity(&families, ds.entity(0));
        let keys: Vec<(usize, &str)> = trees
            .iter()
            .map(|&t| (schedule.trees[t].family, schedule.trees[t].root_key()))
            .collect();
        assert!(keys.contains(&(0, "jo")));
        assert!(keys.contains(&(1, "hi")));
    }

    #[test]
    fn shared_pair_resolved_only_in_dominating_family() {
        // e1, e2 share the X-tree "jo" AND the Y-tree "hi". X dominates Y, so
        // the pair must be resolved in "jo" and skipped in "hi".
        let (schedule, families, ds) = toy_schedule();
        let locator = TreeLocator::new(&schedule, families.len());
        let n = families.len();

        let x_tree = (0..schedule.trees.len())
            .find(|&t| schedule.trees[t].family == 0 && schedule.trees[t].root_key() == "jo")
            .unwrap();
        let y_tree = (0..schedule.trees.len())
            .find(|&t| schedule.trees[t].family == 1 && schedule.trees[t].root_key() == "hi")
            .unwrap();

        let lx0 = locator.dom_list(&schedule, &families, ds.entity(0), x_tree);
        let lx1 = locator.dom_list(&schedule, &families, ds.entity(1), x_tree);
        assert!(should_resolve(&lx0, &lx1, 0, n), "X must resolve the pair");

        let ly0 = locator.dom_list(&schedule, &families, ds.entity(0), y_tree);
        let ly1 = locator.dom_list(&schedule, &families, ds.entity(1), y_tree);
        assert!(!should_resolve(&ly0, &ly1, 1, n), "Y must skip the pair");
    }

    #[test]
    fn pair_not_shared_is_resolved_by_lower_family() {
        // e4 ("Charles", LA) and e5 ("Gharles", LA): different X root blocks,
        // same Y-tree "la" — Y must resolve it.
        let (schedule, families, ds) = toy_schedule();
        let locator = TreeLocator::new(&schedule, families.len());
        let n = families.len();
        let y_tree = (0..schedule.trees.len())
            .find(|&t| schedule.trees[t].family == 1 && schedule.trees[t].root_key() == "la")
            .unwrap();
        let l4 = locator.dom_list(&schedule, &families, ds.entity(3), y_tree);
        let l5 = locator.dom_list(&schedule, &families, ds.entity(4), y_tree);
        assert!(should_resolve(&l4, &l5, 1, n));
    }

    #[test]
    fn every_co_blocked_pair_has_exactly_one_responsible_tree() {
        // Global invariant on a real dataset: for every pair sharing at least
        // one root block, exactly one of the trees containing the pair passes
        // SHOULD-RESOLVE at the root level (splits aside, which the er-core
        // integration tests cover end to end).
        let ds = PubGen::new(800, 51).generate();
        let families = presets::citeseer_families();
        let forests = build_forests(&ds, &families);
        let stats = DatasetStats::from_forests(&ds, &families, &forests);
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb::default();
        let ctx = EstimationContext {
            dataset_size: ds.len(),
            policy: &policy,
            cost_model: &cm,
            prob: &prob,
        };
        let mut cfg = ScheduleConfig::new(4);
        cfg.scheduler = crate::generate::TreeScheduler::NoSplit; // root-level check
        let schedule = generate_schedule(&stats, &ctx, &cfg);
        let locator = TreeLocator::new(&schedule, families.len());
        let n = families.len();

        let mut checked = 0;
        for a in 0..200u32 {
            for b in (a + 1)..200u32 {
                let ea = ds.entity(a);
                let eb = ds.entity(b);
                let ta = locator.trees_of_entity(&families, ea);
                let tb = locator.trees_of_entity(&families, eb);
                let shared: Vec<usize> = ta.iter().copied().filter(|t| tb.contains(t)).collect();
                if shared.is_empty() {
                    continue;
                }
                let responsible = shared
                    .iter()
                    .filter(|&&t| {
                        let f = schedule.trees[t].family;
                        let la = locator.dom_list(&schedule, &families, ea, t);
                        let lb = locator.dom_list(&schedule, &families, eb, t);
                        should_resolve(&la, &lb, f, n)
                    })
                    .count();
                assert_eq!(
                    responsible, 1,
                    "pair ({a},{b}) shared by {shared:?} has {responsible} responsible trees"
                );
                checked += 1;
            }
        }
        assert!(
            checked > 50,
            "expected many co-blocked pairs, got {checked}"
        );
    }

    #[test]
    fn split_subtree_takes_over_its_pairs() {
        // Force splits on a skewed dataset and verify: when both entities of
        // a pair fall inside a split sub-tree, the parent tree skips the
        // pair and the split tree resolves it.
        let ds = PubGen::new(6_000, 52).generate();
        let families = presets::citeseer_families();
        let forests = build_forests(&ds, &families);
        let stats = DatasetStats::from_forests(&ds, &families, &forests);
        let policy = LevelPolicy::citeseer();
        let cm = CostModel::default();
        let prob = HeuristicProb::default();
        let ctx = EstimationContext {
            dataset_size: ds.len(),
            policy: &policy,
            cost_model: &cm,
            prob: &prob,
        };
        let schedule = generate_schedule(&stats, &ctx, &ScheduleConfig::new(8));
        let split_tree = (0..schedule.trees.len())
            .find(|&t| schedule.trees[t].root_level > 0)
            .expect("expected at least one split on skewed data");
        let tree = &schedule.trees[split_tree];
        let family = tree.family;
        let fam = &families[family];
        let n = families.len();
        let locator = TreeLocator::new(&schedule, families.len());

        // Find the parent tree (root tree with the same origin key).
        let parent_tree = (0..schedule.trees.len())
            .find(|&t| {
                schedule.trees[t].family == family
                    && schedule.trees[t].root_level == 0
                    && schedule.trees[t].origin_root_key == tree.origin_root_key
            })
            .expect("parent tree exists");

        // Two entities inside the split tree's root block whose pair is not
        // already owned by a more dominating family: SHOULD-RESOLVE (Fig. 7)
        // hands a pair shared by an earlier family's root tree to *that*
        // tree, so such pairs are legitimately skipped by both the parent
        // and the split tree. The split-ownership claim under test applies
        // to the remaining pairs.
        let level = tree.root_level;
        let key = tree.root_key();
        let inside: Vec<u32> = ds
            .entities
            .iter()
            .filter(|e| fam.key_at(e, level) == key)
            .map(|e| e.id)
            .collect();
        assert!(inside.len() >= 2, "split root should have >= 2 members");
        let (a, b) = inside
            .iter()
            .enumerate()
            .find_map(|(i, &a)| {
                inside[i + 1..]
                    .iter()
                    .find(|&&b| {
                        (0..family).all(|m| {
                            families[m].root_key(ds.entity(a)) != families[m].root_key(ds.entity(b))
                        })
                    })
                    .map(|&b| (a, b))
            })
            .expect("a pair not co-blocked in any more dominating family");

        let pa = locator.dom_list(&schedule, &families, ds.entity(a), parent_tree);
        let pb = locator.dom_list(&schedule, &families, ds.entity(b), parent_tree);
        assert!(
            !should_resolve(&pa, &pb, family, n),
            "parent tree must skip pairs owned by its split sub-tree"
        );

        let sa = locator.dom_list(&schedule, &families, ds.entity(a), split_tree);
        let sb = locator.dom_list(&schedule, &families, ds.entity(b), split_tree);
        // The split tree resolves it unless an even deeper split owns it.
        let deeper_owns = sa.0.len() > n && sb.0.len() > n && sa.0[n] == sb.0[n];
        assert!(
            should_resolve(&sa, &sb, family, n) || deeper_owns,
            "split tree (or a deeper split) must own the pair"
        );
    }

    #[test]
    fn sentinels_do_not_collide_for_distinct_keys() {
        assert_ne!(sentinel(0, "ab"), sentinel(0, "cd"));
        assert_ne!(sentinel(0, "ab"), sentinel(1, "ab"));
        assert!(sentinel(0, "ab") & SENTINEL_BIT != 0);
    }

    #[test]
    fn paper_list_example_shape() {
        // §V example: T(X²₁) split from T(X¹₁), T(X³₁) split from T(X²₁);
        // List(e1, X²₁) = [Dom(T(X²₁)), Dom(T(Y¹₁)), Dom(T(X³₁))].
        // Shape check: own-family slot first (family order), then the split
        // descendant appended at position n.
        let (schedule, families, ds) = toy_schedule();
        let locator = TreeLocator::new(&schedule, families.len());
        let tree = locator.trees_of_entity(&families, ds.entity(0))[0];
        let list = locator.dom_list(&schedule, &families, ds.entity(0), tree);
        assert!(list.0.len() == families.len() || list.0.len() == families.len() + 1);
    }
}
