//! Mutable planning structures: trees whose per-block estimates can be
//! updated as the generator splits sub-trees, and the final [`Schedule`].

use pper_blocking::{FamilyIndex, NodeStats, TreeStats};
use serde::{Deserialize, Serialize};

/// One block inside a [`PlanTree`], carrying both structure and estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanNode {
    /// Blocking key.
    pub key: String,
    /// Original level in the blocking hierarchy (0 = root of the original
    /// tree; a split sub-tree's root keeps its original level).
    pub level: usize,
    /// Parent index within this tree (`None` for the tree's root).
    pub parent: Option<usize>,
    /// Child indices within this tree.
    pub children: Vec<usize>,
    /// True if the block has no sub-blocks in the *blocking hierarchy*.
    /// Unlike `is_leaf()`, this is invariant under schedule-time tree
    /// splitting: a parent whose children are split off keeps
    /// `hier_leaf == false`, because its sub-blocks still exist — they are
    /// just resolved in another task.
    pub hier_leaf: bool,
    /// Block cardinality `|X|`.
    pub size: usize,
    /// Covered pairs `Cov(X)` (§IV-A); decreases when a descendant sub-tree
    /// is split off.
    pub cov: u64,
    /// Estimated duplicates found when this block is resolved — `Dup(X)`,
    /// Eq. (2).
    pub dup: f64,
    /// Estimated distinct pairs resolved before termination — `Dis(X)`.
    pub dis: f64,
    /// Estimated resolution cost — `Cost(X)`, Eq. (3)/(5).
    pub cost: f64,
    /// `Util(X) = Dup(X) / Cost(X)`.
    pub util: f64,
}

impl PlanNode {
    /// Build from gathered statistics (estimates filled in later).
    pub fn from_stats(stats: &NodeStats) -> Self {
        Self {
            key: stats.key.clone(),
            level: stats.level,
            parent: stats.parent,
            children: stats.children.clone(),
            hier_leaf: stats.children.is_empty(),
            size: stats.size,
            cov: stats.covered_pairs(),
            dup: 0.0,
            dis: 0.0,
            cost: 0.0,
            util: 0.0,
        }
    }

    /// True if this node is the tree's root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// True if this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A schedulable tree: possibly an original root tree, possibly a sub-tree
/// split off by the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanTree {
    /// Blocking family.
    pub family: FamilyIndex,
    /// Root key of the *original* tree this (sub-)tree came from — used by
    /// the map phase to locate trees from entity keys.
    pub origin_root_key: String,
    /// `(level, key)` of this tree's root block. Equals
    /// `(0, origin_root_key)` for unsplit trees.
    pub root_level: usize,
    /// Blocks in pre-order; index 0 is the root.
    pub nodes: Vec<PlanNode>,
}

impl PlanTree {
    /// Build an (estimate-less) plan tree from job-1 statistics.
    pub fn from_stats(stats: &TreeStats) -> Self {
        Self {
            family: stats.family,
            origin_root_key: stats.root_key.clone(),
            root_level: 0,
            nodes: stats.nodes.iter().map(PlanNode::from_stats).collect(),
        }
    }

    /// The root node's key.
    pub fn root_key(&self) -> &str {
        &self.nodes[0].key
    }

    /// Total estimated cost of all blocks.
    pub fn total_cost(&self) -> f64 {
        self.nodes.iter().map(|n| n.cost).sum()
    }

    /// Total estimated duplicates of all blocks.
    pub fn total_dup(&self) -> f64 {
        self.nodes.iter().map(|n| n.dup).sum()
    }

    /// Indices of all descendants of `idx` within this tree.
    pub fn descendants(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = self.nodes[idx].children.clone();
        while let Some(i) = stack.pop() {
            out.push(i);
            stack.extend_from_slice(&self.nodes[i].children);
        }
        out
    }

    /// Detach the sub-tree rooted at child node `sub_root` (which must not
    /// be the tree's root), returning it as a new [`PlanTree`].
    ///
    /// Structure only: the caller re-runs estimation on both trees (the
    /// paper's split-update equations of §IV-C2 are equivalent to
    /// re-evaluating Eq. 2–5 on the new structures). `Cov` of every ancestor
    /// of the split point is reduced by the sub-tree root's `Cov`, since
    /// those pairs are now resolved (fully) inside the split tree.
    ///
    /// # Panics
    /// Panics if `sub_root` is 0 (cannot split the root off itself).
    pub fn split_off(&mut self, sub_root: usize) -> PlanTree {
        assert!(sub_root != 0, "cannot split the root");
        let sub_indices = {
            let mut v = vec![sub_root];
            v.extend(self.descendants(sub_root));
            v.sort_unstable();
            v
        };
        let sub_cov = self.nodes[sub_root].cov;

        // Reduce Cov along the ancestor chain.
        let mut p = self.nodes[sub_root].parent;
        while let Some(idx) = p {
            self.nodes[idx].cov = self.nodes[idx].cov.saturating_sub(sub_cov);
            p = self.nodes[idx].parent;
        }

        // Build the new tree with re-mapped indices.
        let remap: std::collections::HashMap<usize, usize> = sub_indices
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let new_nodes: Vec<PlanNode> = sub_indices
            .iter()
            .map(|&old| {
                let n = &self.nodes[old];
                PlanNode {
                    parent: if old == sub_root {
                        None
                    } else {
                        n.parent.map(|p| remap[&p])
                    },
                    children: n.children.iter().map(|c| remap[c]).collect(),
                    ..n.clone()
                }
            })
            .collect();
        let new_tree = PlanTree {
            family: self.family,
            origin_root_key: self.origin_root_key.clone(),
            root_level: self.nodes[sub_root].level,
            nodes: new_nodes,
        };

        // Remove the split indices from this tree (compact + remap).
        // lint:allow(panic_path) split targets are chosen below the root by the caller; a rootless parent is a plan-construction bug worth stopping on
        let parent_of_sub = self.nodes[sub_root].parent.expect("non-root has parent");
        self.nodes[parent_of_sub]
            .children
            .retain(|&c| c != sub_root);
        let mut keep: Vec<usize> = (0..self.nodes.len())
            .filter(|i| sub_indices.binary_search(i).is_err())
            .collect();
        keep.sort_unstable();
        let keep_remap: std::collections::HashMap<usize, usize> = keep
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        self.nodes = keep
            .iter()
            .map(|&old| {
                let n = &self.nodes[old];
                PlanNode {
                    parent: n.parent.map(|p| keep_remap[&p]),
                    children: n.children.iter().map(|c| keep_remap[c]).collect(),
                    ..n.clone()
                }
            })
            .collect();

        new_tree
    }
}

/// Reference to one block within a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRef {
    /// Index into `Schedule::trees`.
    pub tree: usize,
    /// Node index within that tree.
    pub node: usize,
}

/// The complete progressive schedule: the output of §IV, consumed by the
/// second MR job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// All trees, including any split sub-trees (appended after originals).
    pub trees: Vec<PlanTree>,
    /// Reduce task assigned to each tree (`task_of_tree[t] < num_tasks`).
    pub task_of_tree: Vec<usize>,
    /// Per reduce task: blocks in resolution order (the *block schedule*).
    pub block_order: Vec<Vec<BlockRef>>,
    /// Sequence value `SQ` per tree, within the owning task's range:
    /// routing key for the map/partition functions (§III-B).
    pub tree_sq: Vec<u64>,
    /// Dominance value `Dom(T)` per tree (§V).
    pub dom: Vec<u64>,
    /// Number of reduce tasks `r`.
    pub num_tasks: usize,
}

impl Schedule {
    /// Exclusive upper bounds of each task's SQ range (for the range
    /// partitioner): task `t` owns `[t·W, (t+1)·W)`.
    pub fn sq_bounds(&self) -> Vec<u64> {
        (1..=self.num_tasks as u64)
            .map(|t| t * Self::SQ_RANGE)
            .collect()
    }

    /// Width of each task's sequence range.
    pub const SQ_RANGE: u64 = 1 << 32;

    /// Estimated total resolution cost across all trees.
    pub fn total_cost(&self) -> f64 {
        self.trees.iter().map(PlanTree::total_cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built tree:       root(0) size 30 cov 400
    ///                         /            \
    ///                   a(1) size 20     b(2) size 8
    ///                   /
    ///             c(3) size 10
    fn sample_tree() -> PlanTree {
        let mk = |key: &str, level, parent, children: Vec<usize>, size, cov| PlanNode {
            key: key.into(),
            level,
            parent,
            hier_leaf: children.is_empty(),
            children,
            size,
            cov,
            dup: 0.0,
            dis: 0.0,
            cost: 0.0,
            util: 0.0,
        };
        PlanTree {
            family: 0,
            origin_root_key: "ro".into(),
            root_level: 0,
            nodes: vec![
                mk("ro", 0, None, vec![1, 2], 30, 400),
                mk("roa", 1, Some(0), vec![3], 20, 150),
                mk("rob", 1, Some(0), vec![], 8, 25),
                mk("roac", 2, Some(1), vec![], 10, 40),
            ],
        }
    }

    #[test]
    fn descendants_of_root_cover_tree() {
        let t = sample_tree();
        let mut d = t.descendants(0);
        d.sort_unstable();
        assert_eq!(d, vec![1, 2, 3]);
        assert_eq!(t.descendants(2), Vec::<usize>::new());
    }

    #[test]
    fn split_off_detaches_subtree_and_updates_cov() {
        let mut t = sample_tree();
        let sub = t.split_off(1); // split the "roa" sub-tree (nodes 1 and 3)

        // New tree: roa root with roac child, levels preserved.
        assert_eq!(sub.nodes.len(), 2);
        assert_eq!(sub.root_key(), "roa");
        assert_eq!(sub.root_level, 1);
        assert!(sub.nodes[0].is_root());
        assert_eq!(sub.nodes[0].children, vec![1]);
        assert_eq!(sub.nodes[1].parent, Some(0));
        assert_eq!(sub.nodes[1].key, "roac");
        assert_eq!(sub.origin_root_key, "ro");

        // Old tree: root + "rob", root's cov reduced by roa's 150.
        assert_eq!(t.nodes.len(), 2);
        assert_eq!(t.nodes[0].cov, 250);
        assert_eq!(t.nodes[0].children, vec![1]);
        assert_eq!(t.nodes[1].key, "rob");
        assert_eq!(t.nodes[1].parent, Some(0));
    }

    #[test]
    fn split_off_leaf_subtree() {
        let mut t = sample_tree();
        let sub = t.split_off(3); // deepest leaf
        assert_eq!(sub.nodes.len(), 1);
        assert_eq!(sub.root_key(), "roac");
        // Ancestors "roa" and root both lose roac's 40 cov.
        assert_eq!(t.nodes[0].cov, 360);
        assert_eq!(t.nodes[1].cov, 110);
        assert!(t.nodes[1].children.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot split the root")]
    fn split_root_rejected() {
        sample_tree().split_off(0);
    }

    #[test]
    fn sq_bounds_partition_tasks() {
        let s = Schedule {
            trees: vec![],
            task_of_tree: vec![],
            block_order: vec![vec![], vec![], vec![]],
            tree_sq: vec![],
            dom: vec![],
            num_tasks: 3,
        };
        let b = s.sq_bounds();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], Schedule::SQ_RANGE);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
