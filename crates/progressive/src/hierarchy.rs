//! The hierarchical-partitioning hint of Whang et al. (the paper's
//! ref. [5]) used as a progressive mechanism.
//!
//! The hint recursively divides a (sorted) block into a hierarchy of
//! partitions; entities sharing a deeper partition are more likely to be
//! duplicates. As a mechanism, pairs are emitted in order of the *depth of
//! their lowest common partition* — deepest (most similar) first — which is
//! a coarser-grained but cheaper prioritization than exact rank distance.
//! §III-A notes that "our approach can use the hierarchical partitioning
//! hint along with an appropriate ER algorithm as a mechanism M"; this
//! module makes that concrete.

use pper_datagen::EntityId;

use crate::mechanism::{Mechanism, PairSource};

/// The hierarchy-hint mechanism.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyHint {
    /// Partitions are halved until they are at most this big.
    pub leaf_size: usize,
}

impl Default for HierarchyHint {
    fn default() -> Self {
        Self { leaf_size: 4 }
    }
}

/// Pair stream for one block under [`HierarchyHint`]. The ordering is
/// precomputed at start (bounded by the window, so O(n·w) like any sorted
/// neighbourhood enumeration).
#[derive(Debug)]
pub struct HierarchyRun {
    pairs: Vec<(EntityId, EntityId)>,
    next: usize,
}

impl Mechanism for HierarchyHint {
    type Run = HierarchyRun;

    fn start(&self, sorted: Vec<EntityId>, window: usize) -> HierarchyRun {
        let n = sorted.len();
        let window = window.min(n.saturating_sub(1));
        if n < 2 || window == 0 {
            return HierarchyRun {
                pairs: Vec::new(),
                next: 0,
            };
        }
        // Depth of the lowest common partition of positions i and j when
        // recursively halving [0, n): count how many times both fall in the
        // same half. Equivalent formulation: walk down while the range
        // contains both.
        let leaf = self.leaf_size.max(2);
        let common_depth = |i: usize, j: usize| -> u32 {
            let (mut lo, mut hi) = (0usize, n);
            let mut depth = 0;
            while hi - lo > leaf {
                let mid = lo + (hi - lo) / 2;
                if j < mid {
                    hi = mid;
                } else if i >= mid {
                    lo = mid;
                } else {
                    return depth; // split apart here
                }
                depth += 1;
            }
            depth
        };

        let mut keyed: Vec<(u32, usize, usize)> = Vec::new();
        for d in 1..=window {
            for i in 0..n - d {
                keyed.push((common_depth(i, i + d), i, i + d));
            }
        }
        // Deepest common partition first; ties by rank distance then
        // position (stable against the SN order).
        keyed.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then((a.2 - a.1).cmp(&(b.2 - b.1)))
                .then(a.1.cmp(&b.1))
        });
        HierarchyRun {
            pairs: keyed
                .into_iter()
                .map(|(_, i, j)| (sorted[i], sorted[j]))
                .collect(),
            next: 0,
        }
    }

    fn name(&self) -> &'static str {
        "hierarchy-hint"
    }
}

impl PairSource for HierarchyRun {
    fn next_pair(&mut self) -> Option<(EntityId, EntityId)> {
        let pair = self.pairs.get(self.next).copied();
        self.next += usize::from(pair.is_some());
        pair
    }

    fn feedback(&mut self, _is_duplicate: bool) {
        // The hierarchy ordering is static.
    }

    fn remaining_hint(&self) -> u64 {
        (self.pairs.len() - self.next) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(run: &mut HierarchyRun) -> Vec<(EntityId, EntityId)> {
        let mut out = Vec::new();
        while let Some(p) = run.next_pair() {
            run.feedback(false);
            out.push(p);
        }
        out
    }

    #[test]
    fn covers_the_window_exactly_once() {
        let (n, w) = (16u32, 5usize);
        let mut run = HierarchyHint::default().start((0..n).collect(), w);
        let pairs = drain(&mut run);
        assert_eq!(
            pairs.len() as u64,
            HierarchyHint::default().full_pairs(n as usize, w)
        );
        let mut seen = std::collections::HashSet::new();
        for (a, b) in pairs {
            assert!(seen.insert((a, b)));
            assert!(b > a && (b - a) as usize <= w);
        }
    }

    #[test]
    fn same_leaf_pairs_come_before_cross_partition_pairs() {
        // 16 entities, leaf 4: the first emitted pairs must be within-leaf
        // (e.g. (0,1)), and cross-half pairs like (7,8) must come last among
        // equal distances.
        let mut run = HierarchyHint::default().start((0..16).collect(), 3);
        let pairs = drain(&mut run);
        let pos = |p: (u32, u32)| pairs.iter().position(|&x| x == p).unwrap();
        assert!(pos((0, 1)) < pos((7, 8)), "within-leaf before cross-root");
        assert!(pos((4, 5)) < pos((7, 8)));
    }

    #[test]
    fn tiny_blocks_degenerate_gracefully() {
        assert!(HierarchyHint::default()
            .start(vec![], 5)
            .next_pair()
            .is_none());
        assert!(HierarchyHint::default()
            .start(vec![9], 5)
            .next_pair()
            .is_none());
        let mut two = HierarchyHint::default().start(vec![3, 7], 5);
        assert_eq!(two.next_pair(), Some((3, 7)));
        assert_eq!(two.next_pair(), None);
    }

    #[test]
    fn remaining_hint_is_exact() {
        let mut run = HierarchyHint::default().start((0..10).collect(), 4);
        let total = run.remaining_hint();
        let mut left = total;
        while run.next_pair().is_some() {
            left -= 1;
            assert_eq!(run.remaining_hint(), left);
        }
        assert_eq!(left, 0);
    }

    #[test]
    fn finds_clustered_duplicates_early() {
        // Duplicates at positions 0..4 (one leaf of the 32-entity block,
        // leaf size 4). All six of the cluster's pairs sit at the deepest
        // level; within it, the 24 distance-1 pairs (3 duplicates) come
        // first, then distance-2 pairs starting with (0,2) and (1,3) — so
        // 5 of 6 duplicate pairs surface within the first 26 comparisons,
        // far ahead of a plain distance sweep over all 32 entities (which
        // interleaves 29 more d1/d2 pairs before (0,2)).
        let mut run = HierarchyHint::default().start((0..32).collect(), 8);
        let mut found = 0;
        for _ in 0..26 {
            let Some((a, b)) = run.next_pair() else { break };
            let dup = a < 4 && b < 4;
            run.feedback(dup);
            found += u32::from(dup);
        }
        assert_eq!(
            found, 5,
            "expected 5 cluster pairs in the first 26 comparisons"
        );
        // The sixth ((0,3), distance 3) arrives before any cross-leaf pair.
        let mut last_cluster_pos = 26;
        while let Some((a, b)) = run.next_pair() {
            run.feedback(false);
            last_cluster_pos += 1;
            if a < 4 && b < 4 {
                break;
            }
        }
        let depth3_pairs = 8 * 6; // all within-leaf pairs precede cross-leaf ones
        assert!(
            last_cluster_pos <= depth3_pairs,
            "(0,3) should arrive within the deepest level, got position {last_cluster_pos}"
        );
    }
}
