//! # pper-progressive
//!
//! Progressive resolution mechanisms — the paper's pluggable `M` (§II-B).
//!
//! A mechanism takes a block and yields its entity pairs in an order designed
//! to surface duplicates early. Two mechanisms from the literature are
//! implemented, matching the paper's experimental setup (§VI-A3):
//!
//! * [`sn::SnHint`] — the Sorted Neighbor algorithm with the sorted-list hint
//!   of Whang et al. (the paper's ref. [5]): entities are sorted by the
//!   blocking attribute and pairs are resolved in non-decreasing rank
//!   distance, up to a window `w`;
//! * [`psnm::Psnm`] — the Progressive Sorted Neighborhood Method of
//!   Papenbrock et al. (ref. [6]): the same distance-major base order,
//!   extended with a duplicate-driven look-ahead that eagerly explores the
//!   neighborhood of each found duplicate.
//!
//! Mechanisms are *resumable and feedback-driven* ([`mechanism::PairSource`])
//! so the pipeline can stop a block early (§III-A's termination thresholds),
//! interleave blocks of different trees, and revisit a parent block without
//! repeating child work.
//!
//! [`policy`] holds the stopping rules: the distinct-pair termination
//! thresholds `Th(X)`/`Frac(X)` and per-level windows of §VI-A5, and the
//! Popcorn scheme of ref. [5] used by the Basic baseline. [`runner`] executes
//! one (block, mechanism, stop-rule) combination.
//!
//! ```
//! use pper_progressive::{run_block, Mechanism, SnHint, StopRule};
//!
//! // A sorted block of six entities; adjacent ids are duplicates.
//! let mut source = SnHint.start((0..6).collect(), 3);
//! let outcome = run_block(
//!     &mut source,
//!     StopRule::Exhaust,
//!     |_, _| true,                  // no redundancy filter
//!     |a, b| a.abs_diff(b) == 1,    // the resolve/match function
//! );
//! assert_eq!(outcome.duplicates.len(), 5);
//! assert!(outcome.exhausted);
//! ```

pub mod hierarchy;
pub mod mechanism;
pub mod policy;
pub mod psnm;
pub mod runner;
pub mod sn;

pub use hierarchy::HierarchyHint;
pub use mechanism::{sort_by_attr, sort_by_attrs, Mechanism, PairSource};
pub use policy::{LevelPolicy, PopcornState, StopRule, StopState};
pub use psnm::Psnm;
pub use runner::{run_block, ResolveOutcome};
pub use sn::SnHint;
