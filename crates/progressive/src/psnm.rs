//! The Progressive Sorted Neighborhood Method (the paper's ref. [6],
//! Papenbrock, Heise & Naumann, TKDE 2015).
//!
//! Like the SN hint, PSNM sorts the block and walks pairs in increasing rank
//! distance — but it is *adaptive*: when a pair is confirmed a duplicate,
//! the neighborhoods of both entities are promoted and explored immediately
//! (duplicates cluster in the sort order, so a hit at `(i, i+d)` makes
//! `(i, i+d+1)` and `(i−1, i+d)` unusually promising). This is the
//! "progressiveness" that lets PSNM front-load recall relative to a static
//! window sweep.

use std::collections::VecDeque;

use pper_datagen::EntityId;

use crate::mechanism::{Mechanism, PairSource};

/// The PSNM mechanism. `lookahead` bounds how many promoted pairs a single
/// duplicate can enqueue (the classic formulation grows the local window by
/// one in each direction, i.e. 2).
#[derive(Debug, Clone, Copy)]
pub struct Psnm {
    /// Maximum promoted pairs per confirmed duplicate.
    pub lookahead: usize,
}

impl Default for Psnm {
    fn default() -> Self {
        Self { lookahead: 2 }
    }
}

/// Pair stream for one block under [`Psnm`].
#[derive(Debug)]
pub struct PsnmRun {
    order: Vec<EntityId>,
    window: usize,
    lookahead: usize,
    /// Base sweep state: current distance and left index.
    d: usize,
    i: usize,
    /// Promoted (index, index) pairs awaiting emission, highest priority first.
    boost: VecDeque<(usize, usize)>,
    /// Index pairs already emitted (indices into `order`), to deduplicate the
    /// base sweep against promotions.
    emitted: std::collections::HashSet<(u32, u32)>,
    /// The last emitted index pair, for feedback.
    last: Option<(usize, usize)>,
}

impl Mechanism for Psnm {
    type Run = PsnmRun;

    fn start(&self, sorted: Vec<EntityId>, window: usize) -> PsnmRun {
        PsnmRun {
            window: window.min(sorted.len().saturating_sub(1)),
            order: sorted,
            lookahead: self.lookahead,
            d: 1,
            i: 0,
            boost: VecDeque::new(),
            emitted: std::collections::HashSet::new(),
            last: None,
        }
    }

    fn name(&self) -> &'static str {
        "psnm"
    }
}

impl PsnmRun {
    fn emit(&mut self, i: usize, j: usize) -> Option<(EntityId, EntityId)> {
        if !self.emitted.insert((i as u32, j as u32)) {
            return None;
        }
        self.last = Some((i, j));
        Some((self.order[i], self.order[j]))
    }
}

impl PairSource for PsnmRun {
    fn next_pair(&mut self) -> Option<(EntityId, EntityId)> {
        // Promoted pairs take priority over the base sweep.
        while let Some((i, j)) = self.boost.pop_front() {
            if let Some(pair) = self.emit(i, j) {
                return Some(pair);
            }
        }
        loop {
            if self.d > self.window || self.order.len() < 2 {
                return None;
            }
            if self.i + self.d < self.order.len() {
                let (i, j) = (self.i, self.i + self.d);
                self.i += 1;
                if let Some(pair) = self.emit(i, j) {
                    return Some(pair);
                }
                continue;
            }
            self.d += 1;
            self.i = 0;
        }
    }

    fn feedback(&mut self, is_duplicate: bool) {
        let Some((i, j)) = self.last.take() else {
            return;
        };
        if !is_duplicate {
            return;
        }
        // Promote the immediate extensions of a confirmed duplicate, staying
        // within the window.
        let mut promoted = 0;
        let candidates = [
            (i, j + 1),
            (i.wrapping_sub(1), j),
            (i, j + 2),
            (i.wrapping_sub(1), j.wrapping_sub(1)),
        ];
        for (a, b) in candidates {
            if promoted >= self.lookahead {
                break;
            }
            if a >= self.order.len() || b >= self.order.len() || a >= b {
                continue;
            }
            if b - a > self.window {
                continue;
            }
            if self.emitted.contains(&(a as u32, b as u32)) {
                continue;
            }
            self.boost.push_back((a, b));
            promoted += 1;
        }
    }

    fn remaining_hint(&self) -> u64 {
        if self.order.len() < 2 {
            return 0;
        }
        let n = self.order.len();
        let total = Psnm::default().full_pairs(n, self.window);
        total.saturating_sub(self.emitted.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_with_truth(
        run: &mut PsnmRun,
        is_dup: impl Fn(EntityId, EntityId) -> bool,
    ) -> Vec<(EntityId, EntityId)> {
        let mut out = Vec::new();
        while let Some((a, b)) = run.next_pair() {
            run.feedback(is_dup(a, b));
            out.push((a, b));
        }
        out
    }

    #[test]
    fn no_duplicates_reduces_to_sn_order() {
        let mut psnm = Psnm::default().start((0..5).collect(), 4);
        let pairs = drain_with_truth(&mut psnm, |_, _| false);
        let mut sn = crate::sn::SnHint.start((0..5).collect(), 4);
        let mut sn_pairs = Vec::new();
        while let Some(p) = sn.next_pair() {
            sn.feedback(false);
            sn_pairs.push(p);
        }
        assert_eq!(pairs, sn_pairs);
    }

    #[test]
    fn duplicate_promotes_neighborhood() {
        // Entities 0..6; say 0,1,2 are all duplicates of each other.
        // After (0,1) confirms, (0,2) should be explored before the base
        // sweep finishes distance 1.
        let mut run = Psnm::default().start((0..6).collect(), 5);
        let p1 = run.next_pair().unwrap();
        assert_eq!(p1, (0, 1));
        run.feedback(true);
        let p2 = run.next_pair().unwrap();
        assert_eq!(p2, (0, 2), "lookahead should promote (0,2)");
    }

    #[test]
    fn yields_each_pair_at_most_once() {
        let mut run = Psnm::default().start((0..15).collect(), 6);
        // Everything is a duplicate: maximal promotion churn.
        let pairs = drain_with_truth(&mut run, |_, _| true);
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(seen.insert(*p), "pair {p:?} yielded twice");
        }
        // Full coverage of the window despite promotions.
        assert_eq!(pairs.len() as u64, Psnm::default().full_pairs(15, 6));
    }

    #[test]
    fn promotions_respect_window() {
        let mut run = Psnm::default().start((0..10).collect(), 2);
        let pairs = drain_with_truth(&mut run, |_, _| true);
        for (a, b) in pairs {
            assert!(b - a <= 2, "pair ({a},{b}) beyond window");
        }
    }

    #[test]
    fn early_duplicate_mass_beats_static_order_on_clustered_input() {
        // 40 entities; ids 10..14 form one duplicate cluster sitting adjacent
        // in sort order. Measure how many of the cluster's 10 pairs each
        // mechanism finds within the first 60 comparisons.
        let n = 40u32;
        let cluster = 10u32..15;
        let is_dup = |a: EntityId, b: EntityId| cluster.contains(&a) && cluster.contains(&b);

        let mut psnm = Psnm::default().start((0..n).collect(), 20);
        let mut psnm_found = 0;
        for _ in 0..60 {
            let Some((a, b)) = psnm.next_pair() else {
                break;
            };
            let dup = is_dup(a, b);
            psnm.feedback(dup);
            psnm_found += u32::from(dup);
        }

        let mut sn = crate::sn::SnHint.start((0..n).collect(), 20);
        let mut sn_found = 0;
        for _ in 0..60 {
            let Some((a, b)) = sn.next_pair() else { break };
            let dup = is_dup(a, b);
            sn.feedback(dup);
            sn_found += u32::from(dup);
        }
        assert!(
            psnm_found >= sn_found,
            "psnm {psnm_found} should front-load at least as many duplicates as sn {sn_found}"
        );
        assert!(
            psnm_found >= 7,
            "psnm should find most cluster pairs early, got {psnm_found}"
        );
    }

    #[test]
    fn feedback_without_pending_pair_is_noop() {
        let mut run = Psnm::default().start(vec![0, 1], 1);
        run.feedback(true); // nothing pending: must not panic or enqueue
        assert_eq!(run.next_pair(), Some((0, 1)));
    }
}
