//! Stopping rules and per-level resolution policies.
//!
//! §III-A: non-root blocks are resolved "until the number of identified
//! non-duplicate/distinct pairs exceeds a termination threshold Th(X)";
//! root blocks are resolved fully. §VI-A5 sets the window `w` per level
//! (15 root / 10 mid / 5 leaf) and `Th(X) = |X|`. The Basic baseline instead
//! uses the Popcorn scheme of ref. [5]: stop when the rate of newly found
//! duplicates over recent comparisons drops below a threshold.

use serde::{Deserialize, Serialize};

/// When to stop resolving the block at hand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopRule {
    /// Never stop early: resolve every pair the mechanism yields (root
    /// blocks; also "Basic F").
    Exhaust,
    /// Stop once this many *distinct* (non-duplicate) pairs have been
    /// resolved — `Th(X)` (§III-A).
    DistinctBudget(u64),
    /// Popcorn scheme: stop when `duplicates found in the last `window`
    /// comparisons / window` falls below `threshold`. Never triggers before
    /// one full window has elapsed.
    Popcorn {
        /// Minimum acceptable duplicate rate.
        threshold: f64,
        /// Number of recent comparisons over which the rate is measured.
        window: u64,
    },
}

/// Running state for a [`StopRule`] over one block resolution.
#[derive(Debug, Clone)]
pub struct StopState {
    rule: StopRule,
    distinct: u64,
    popcorn: PopcornState,
}

/// Sliding duplicate-rate tracker for the Popcorn scheme.
#[derive(Debug, Clone, Default)]
pub struct PopcornState {
    comparisons: u64,
    dups_in_window: u64,
    /// Ring buffer of the last `window` outcomes (true = duplicate).
    ring: Vec<bool>,
    head: usize,
}

impl PopcornState {
    fn observe(&mut self, window: u64, is_duplicate: bool) {
        let w = window.max(1) as usize;
        if self.ring.len() < w {
            self.ring.push(is_duplicate);
            self.dups_in_window += u64::from(is_duplicate);
        } else {
            let old = std::mem::replace(&mut self.ring[self.head], is_duplicate);
            self.dups_in_window += u64::from(is_duplicate);
            self.dups_in_window -= u64::from(old);
            self.head = (self.head + 1) % w;
        }
        self.comparisons += 1;
    }

    /// Duplicate rate over the current window contents.
    pub fn rate(&self) -> f64 {
        if self.ring.is_empty() {
            return 1.0;
        }
        self.dups_in_window as f64 / self.ring.len() as f64
    }
}

impl StopState {
    /// Fresh state for one block resolution under `rule`.
    pub fn new(rule: StopRule) -> Self {
        Self {
            rule,
            distinct: 0,
            popcorn: PopcornState::default(),
        }
    }

    /// Record one resolved pair and return `true` if resolution of the
    /// current block should stop *after* this pair.
    pub fn observe(&mut self, is_duplicate: bool) -> bool {
        match self.rule {
            StopRule::Exhaust => false,
            StopRule::DistinctBudget(budget) => {
                self.distinct += u64::from(!is_duplicate);
                self.distinct > budget
            }
            StopRule::Popcorn { threshold, window } => {
                self.popcorn.observe(window, is_duplicate);
                self.popcorn.ring.len() as u64 >= window && self.popcorn.rate() < threshold
            }
        }
    }

    /// Distinct pairs observed so far.
    pub fn distinct_seen(&self) -> u64 {
        self.distinct
    }
}

/// Per-level resolution policy (§VI-A5): window sizes, `Frac(X)` values, and
/// the `Th(X) = |X|` termination rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelPolicy {
    /// Window for root blocks (paper: 15, "the smallest value that allows
    /// us to identify more than 99% of the duplicate pairs").
    pub window_root: usize,
    /// Window for intermediate blocks (paper: 10).
    pub window_mid: usize,
    /// Window for leaf blocks (paper: 5).
    pub window_leaf: usize,
    /// `Frac(X)` for leaf blocks (paper: 0.8 CiteSeerX / 0.85 OL-Books).
    pub frac_leaf: f64,
    /// `Frac(X)` for non-leaf non-root blocks (paper: 0.9 / 0.95).
    pub frac_mid: f64,
    /// Multiplier on `|X|` for the termination threshold (paper: 1.0, i.e.
    /// `Th(X) = |X|`).
    pub th_factor: f64,
}

impl LevelPolicy {
    /// The paper's CiteSeerX settings.
    pub fn citeseer() -> Self {
        Self {
            window_root: 15,
            window_mid: 10,
            window_leaf: 5,
            frac_leaf: 0.8,
            frac_mid: 0.9,
            th_factor: 1.0,
        }
    }

    /// The paper's OL-Books settings.
    pub fn books() -> Self {
        Self {
            frac_leaf: 0.85,
            frac_mid: 0.95,
            ..Self::citeseer()
        }
    }

    /// Window for a block given its position in the tree.
    pub fn window(&self, is_root: bool, is_leaf: bool) -> usize {
        if is_root {
            self.window_root
        } else if is_leaf {
            self.window_leaf
        } else {
            self.window_mid
        }
    }

    /// `Frac(X)`: expected fraction of the block's duplicates found when it
    /// is resolved with its level's aggressiveness. Roots resolve fully.
    pub fn frac(&self, is_root: bool, is_leaf: bool) -> f64 {
        if is_root {
            1.0
        } else if is_leaf {
            self.frac_leaf
        } else {
            self.frac_mid
        }
    }

    /// `Th(X)`: distinct-pair budget for a non-root block of size `size`.
    /// Guaranteed smaller than the parent's because `|X| < |parent|` (and
    /// §III-A requires exactly that monotonicity).
    pub fn termination(&self, size: usize) -> u64 {
        (size as f64 * self.th_factor).ceil() as u64
    }

    /// Stop rule for a block.
    pub fn stop_rule(&self, is_root: bool, size: usize) -> StopRule {
        if is_root {
            StopRule::Exhaust
        } else {
            StopRule::DistinctBudget(self.termination(size))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaust_never_stops() {
        let mut s = StopState::new(StopRule::Exhaust);
        for _ in 0..10_000 {
            assert!(!s.observe(false));
        }
    }

    #[test]
    fn distinct_budget_counts_only_distinct() {
        let mut s = StopState::new(StopRule::DistinctBudget(3));
        assert!(!s.observe(true));
        assert!(!s.observe(false)); // 1
        assert!(!s.observe(false)); // 2
        assert!(!s.observe(true));
        assert!(!s.observe(false)); // 3 == budget, not yet exceeded
        assert!(s.observe(false)); // 4 > budget
        assert_eq!(s.distinct_seen(), 4);
    }

    #[test]
    fn popcorn_waits_for_full_window() {
        let mut s = StopState::new(StopRule::Popcorn {
            threshold: 0.5,
            window: 4,
        });
        // Three misses: window not yet full, never stop.
        assert!(!s.observe(false));
        assert!(!s.observe(false));
        assert!(!s.observe(false));
        // Fourth miss fills the window: rate 0 < 0.5 → stop.
        assert!(s.observe(false));
    }

    #[test]
    fn popcorn_keeps_going_while_rate_high() {
        let mut s = StopState::new(StopRule::Popcorn {
            threshold: 0.25,
            window: 4,
        });
        // Alternate hits/misses: rate 0.5 ≥ 0.25, never stops.
        for i in 0..100 {
            assert!(!s.observe(i % 2 == 0), "stopped at {i}");
        }
        // Then a dry spell: stops once the window decays below 25%.
        let mut stopped = false;
        for _ in 0..4 {
            if s.observe(false) {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
    }

    #[test]
    fn popcorn_rate_tracks_ring() {
        let mut p = PopcornState::default();
        assert_eq!(p.rate(), 1.0); // optimistic before any data
        p.observe(2, true);
        assert_eq!(p.rate(), 1.0);
        p.observe(2, false);
        assert_eq!(p.rate(), 0.5);
        p.observe(2, false); // evicts the first (true)
        assert_eq!(p.rate(), 0.0);
    }

    #[test]
    fn level_policy_paper_values() {
        let p = LevelPolicy::citeseer();
        assert_eq!(p.window(true, false), 15);
        assert_eq!(p.window(false, false), 10);
        assert_eq!(p.window(false, true), 5);
        assert_eq!(p.frac(true, false), 1.0);
        assert_eq!(p.frac(false, true), 0.8);
        assert_eq!(p.frac(false, false), 0.9);
        assert_eq!(p.termination(120), 120);
        let b = LevelPolicy::books();
        assert_eq!(b.frac(false, true), 0.85);
        assert_eq!(b.frac(false, false), 0.95);
    }

    #[test]
    fn stop_rule_shape_per_level() {
        let p = LevelPolicy::citeseer();
        assert_eq!(p.stop_rule(true, 50), StopRule::Exhaust);
        assert_eq!(p.stop_rule(false, 50), StopRule::DistinctBudget(50));
    }

    #[test]
    fn termination_monotone_in_size() {
        // Child blocks are smaller than parents, so Th(child) < Th(parent):
        // the "different levels of aggressiveness" guarantee of §III-A.
        let p = LevelPolicy::citeseer();
        assert!(p.termination(10) < p.termination(25));
    }
}
