//! The mechanism abstraction: feedback-driven pair orderings.

use pper_blocking::forest::EntityLookup;
use pper_datagen::EntityId;

/// A prioritized, resumable stream of entity pairs for one block.
///
/// The consumer alternates [`PairSource::next_pair`] and
/// [`PairSource::feedback`]: mechanisms like PSNM use the feedback (was the
/// last pair a duplicate?) to re-prioritize, and stopping rules live outside
/// the source so a block can be suspended and resumed (incremental
/// resolution, §III-A).
pub trait PairSource {
    /// The next pair to resolve, or `None` when the ordering is exhausted.
    fn next_pair(&mut self) -> Option<(EntityId, EntityId)>;

    /// Report whether the most recently yielded pair was a duplicate.
    /// Calling it without a pending pair is a no-op.
    fn feedback(&mut self, is_duplicate: bool);

    /// Lower bound on the number of pairs this source may still yield
    /// (used for cost bookkeeping; exactness not required).
    fn remaining_hint(&self) -> u64 {
        0
    }
}

/// A progressive mechanism `M`: given a block's entities *already sorted by
/// the blocking attribute* (the paper sorts "using the values of the
/// attribute on which the blocking was performed", §VI-A3) and a window,
/// produce a [`PairSource`].
pub trait Mechanism: Sync {
    /// The pair stream type.
    type Run: PairSource;

    /// Start resolving a block. `sorted` is the block's member list in sort
    /// order; `window` is the maximum rank distance to consider.
    fn start(&self, sorted: Vec<EntityId>, window: usize) -> Self::Run;

    /// Mechanism name for reports.
    fn name(&self) -> &'static str;

    /// Number of pairs the mechanism would resolve if run to exhaustion on a
    /// block of `n` entities with window `w`: `Σ_{d=1..w} (n−d)` — the cost
    /// model's `CostF` ingredient (§IV-B).
    fn full_pairs(&self, n: usize, window: usize) -> u64 {
        let n = n as u64;
        let w = (window as u64).min(n.saturating_sub(1));
        // sum_{d=1..w} (n - d) = n*w - w(w+1)/2
        n * w - w * (w + 1) / 2
    }
}

/// Sort a block's members by attribute `attr` (the hint-generation step;
/// the caller charges the sort cost against its clock). Ties break by
/// entity id for determinism.
pub fn sort_by_attr(
    members: &[EntityId],
    attr: usize,
    lookup: &impl EntityLookup,
) -> Vec<EntityId> {
    sort_by_attrs(members, &[attr], lookup)
}

/// Sort by a compound attribute key: compare `attrs[0]` first, break ties
/// with `attrs[1]`, and so on; final tie-break by entity id.
///
/// Sorted-neighbourhood methods need *discriminative* sort keys: a block
/// built on a low-cardinality attribute (e.g. venue) is full of ties, and a
/// windowed scan over an arbitrarily-ordered tie run finds nothing. Real
/// multi-pass SNM deployments therefore sort by the blocking attribute
/// *extended with* a discriminative attribute; the pipeline passes
/// `[blocking attr, title]`.
pub fn sort_by_attrs(
    members: &[EntityId],
    attrs: &[usize],
    lookup: &impl EntityLookup,
) -> Vec<EntityId> {
    let mut sorted = members.to_vec();
    sorted.sort_by(|&a, &b| {
        let ea = lookup.entity(a);
        let eb = lookup.entity(b);
        for &attr in attrs {
            let ord = ea.attr(attr).cmp(eb.attr(attr));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b)
    });
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use pper_datagen::Entity;
    use std::collections::HashMap;

    struct NoopSource;
    impl PairSource for NoopSource {
        fn next_pair(&mut self) -> Option<(EntityId, EntityId)> {
            None
        }
        fn feedback(&mut self, _is_duplicate: bool) {}
    }

    #[test]
    fn default_remaining_hint_is_zero() {
        assert_eq!(NoopSource.remaining_hint(), 0);
    }

    #[test]
    fn sort_by_attr_orders_and_breaks_ties_by_id() {
        let mut map: HashMap<EntityId, Entity> = HashMap::new();
        map.insert(0, Entity::new(0, vec!["b".into()]));
        map.insert(1, Entity::new(1, vec!["a".into()]));
        map.insert(2, Entity::new(2, vec!["a".into()]));
        let sorted = sort_by_attr(&[0, 1, 2], 0, &map);
        assert_eq!(sorted, vec![1, 2, 0]);
    }

    struct Dummy;
    impl Mechanism for Dummy {
        type Run = NoopSource;
        fn start(&self, _sorted: Vec<EntityId>, _window: usize) -> NoopSource {
            NoopSource
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }

    #[test]
    fn full_pairs_formula() {
        let m = Dummy;
        // n=4, w=3: distances 1,2,3 → 3+2+1 = 6 = all pairs.
        assert_eq!(m.full_pairs(4, 3), 6);
        // n=4, w=1: 3 adjacent pairs.
        assert_eq!(m.full_pairs(4, 1), 3);
        // window larger than block clamps.
        assert_eq!(m.full_pairs(4, 100), 6);
        // degenerate blocks.
        assert_eq!(m.full_pairs(1, 5), 0);
        assert_eq!(m.full_pairs(0, 5), 0);
    }
}
