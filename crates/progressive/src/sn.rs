//! The Sorted Neighbor mechanism with the sorted-list hint (§II-B).
//!
//! Entities are sorted by the blocking attribute; pairs are resolved in
//! non-decreasing `distance(⟨e_i, e_j⟩) = |rank(e_i) − rank(e_j)|`, i.e. all
//! distance-1 pairs in list order, then all distance-2 pairs, …, up to the
//! window `w`. "The closer the entities are to each other in the sorted
//! list, the more likely they are to be duplicates of each other."

use pper_datagen::EntityId;

use crate::mechanism::{Mechanism, PairSource};

/// The SN mechanism. Stateless; per-block state lives in [`SnRun`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SnHint;

/// Pair stream for one block under [`SnHint`].
#[derive(Debug)]
pub struct SnRun {
    order: Vec<EntityId>,
    window: usize,
    /// Current rank distance (1-based).
    d: usize,
    /// Current left index within the current distance sweep.
    i: usize,
}

impl Mechanism for SnHint {
    type Run = SnRun;

    fn start(&self, sorted: Vec<EntityId>, window: usize) -> SnRun {
        SnRun {
            window: window.min(sorted.len().saturating_sub(1)),
            order: sorted,
            d: 1,
            i: 0,
        }
    }

    fn name(&self) -> &'static str {
        "sn-hint"
    }
}

impl PairSource for SnRun {
    fn next_pair(&mut self) -> Option<(EntityId, EntityId)> {
        loop {
            if self.d > self.window || self.order.len() < 2 {
                return None;
            }
            if self.i + self.d < self.order.len() {
                let pair = (self.order[self.i], self.order[self.i + self.d]);
                self.i += 1;
                return Some(pair);
            }
            self.d += 1;
            self.i = 0;
        }
    }

    fn feedback(&mut self, _is_duplicate: bool) {
        // SN's ordering is static: feedback is ignored.
    }

    fn remaining_hint(&self) -> u64 {
        if self.order.len() < 2 || self.d > self.window {
            return 0;
        }
        let n = self.order.len() as u64;
        let mut remaining = (n - self.d as u64).saturating_sub(self.i as u64);
        for d in (self.d + 1)..=self.window {
            remaining += n.saturating_sub(d as u64);
        }
        remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(run: &mut SnRun) -> Vec<(EntityId, EntityId)> {
        let mut out = Vec::new();
        while let Some(p) = run.next_pair() {
            run.feedback(false);
            out.push(p);
        }
        out
    }

    #[test]
    fn paper_example_order() {
        // Sorted list [e3, e2, e4, e1] (paper ids; ours 3,2,4,1): ⟨e3,e2⟩
        // precedes ⟨e3,e4⟩ because distance 1 < 2.
        let mut run = SnHint.start(vec![3, 2, 4, 1], 3);
        let pairs = drain(&mut run);
        assert_eq!(pairs, vec![(3, 2), (2, 4), (4, 1), (3, 4), (2, 1), (3, 1)]);
    }

    #[test]
    fn window_limits_distance() {
        let mut run = SnHint.start(vec![0, 1, 2, 3], 1);
        assert_eq!(drain(&mut run), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn window_clamps_to_block_size() {
        let mut run = SnHint.start(vec![0, 1], 100);
        assert_eq!(drain(&mut run), vec![(0, 1)]);
    }

    #[test]
    fn empty_and_singleton_blocks_yield_nothing() {
        assert!(SnHint.start(vec![], 5).next_pair().is_none());
        assert!(SnHint.start(vec![7], 5).next_pair().is_none());
    }

    #[test]
    fn yields_each_pair_once_and_covers_window() {
        let n = 20;
        let w = 7;
        let mut run = SnHint.start((0..n).collect(), w as usize);
        let pairs = drain(&mut run);
        let expected: u64 = SnHint.full_pairs(n as usize, w as usize);
        assert_eq!(pairs.len() as u64, expected);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &pairs {
            assert!(seen.insert((*a, *b)), "pair ({a},{b}) yielded twice");
            assert!(b - a >= 1 && b - a <= w);
        }
        // Distance-major: distances never decrease.
        let mut last_d = 0;
        for (a, b) in &pairs {
            let d = b - a;
            assert!(d >= last_d || d == last_d, "ordering regressed");
            if d > last_d {
                last_d = d;
            }
        }
    }

    #[test]
    fn remaining_hint_counts_down_exactly() {
        let mut run = SnHint.start((0..10).collect(), 3);
        let mut expected = SnHint.full_pairs(10, 3);
        assert_eq!(run.remaining_hint(), expected);
        while run.next_pair().is_some() {
            run.feedback(false);
            expected -= 1;
            assert_eq!(run.remaining_hint(), expected);
        }
        assert_eq!(expected, 0);
    }
}
