//! Executes one (block, mechanism, stop-rule) combination.
//!
//! [`run_block`] drives a [`PairSource`] against a resolve function until the
//! stop rule fires or the source is exhausted, skipping pairs the caller
//! marks as not-to-resolve (already resolved in a child block, or owned by a
//! different responsible tree — the SHOULD-RESOLVE check of §V).

use pper_datagen::EntityId;

use crate::mechanism::PairSource;
use crate::policy::{StopRule, StopState};

/// What happened while (partially) resolving one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveOutcome {
    /// Duplicate pairs found, in discovery order.
    pub duplicates: Vec<(EntityId, EntityId)>,
    /// Pairs actually compared (excludes skipped pairs).
    pub comparisons: u64,
    /// Pairs skipped by the `should_resolve` filter.
    pub skipped: u64,
    /// Distinct (non-duplicate) pairs among the comparisons.
    pub distinct: u64,
    /// True if the source ran dry; false if the stop rule fired first.
    pub exhausted: bool,
}

/// Drive `source` until `stop` fires or the ordering is exhausted.
///
/// * `should_resolve(a, b)` — return `false` to skip the pair entirely (no
///   comparison cost, no feedback); used for redundancy-free resolution and
///   for skipping pairs already resolved in child blocks.
/// * `resolve(a, b)` — the match function; returns whether the pair is a
///   duplicate. The caller charges its own cost per invocation.
pub fn run_block<S: PairSource>(
    source: &mut S,
    stop: StopRule,
    mut should_resolve: impl FnMut(EntityId, EntityId) -> bool,
    mut resolve: impl FnMut(EntityId, EntityId) -> bool,
) -> ResolveOutcome {
    let mut state = StopState::new(stop);
    let mut out = ResolveOutcome {
        duplicates: Vec::new(),
        comparisons: 0,
        skipped: 0,
        distinct: 0,
        exhausted: false,
    };
    loop {
        let Some((a, b)) = source.next_pair() else {
            out.exhausted = true;
            return out;
        };
        if !should_resolve(a, b) {
            out.skipped += 1;
            continue;
        }
        let is_dup = resolve(a, b);
        source.feedback(is_dup);
        out.comparisons += 1;
        if is_dup {
            out.duplicates.push((a, b));
        } else {
            out.distinct += 1;
        }
        if state.observe(is_dup) {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StopRule;
    use crate::sn::SnHint;
    use crate::Mechanism;

    fn dup_if_close(a: EntityId, b: EntityId) -> bool {
        a.abs_diff(b) == 1
    }

    #[test]
    fn exhausts_small_block() {
        let mut src = SnHint.start((0..5).collect(), 4);
        let out = run_block(&mut src, StopRule::Exhaust, |_, _| true, dup_if_close);
        assert!(out.exhausted);
        assert_eq!(out.comparisons, 10);
        assert_eq!(out.duplicates.len(), 4); // (0,1),(1,2),(2,3),(3,4)
        assert_eq!(out.distinct, 6);
        assert_eq!(out.skipped, 0);
    }

    #[test]
    fn distinct_budget_stops_early() {
        let mut src = SnHint.start((0..100).collect(), 50);
        let out = run_block(
            &mut src,
            StopRule::DistinctBudget(5),
            |_, _| true,
            |_, _| false, // nothing matches: budget burns fast
        );
        assert!(!out.exhausted);
        assert_eq!(out.distinct, 6); // budget exceeded at 6 > 5
        assert_eq!(out.comparisons, 6);
    }

    #[test]
    fn skipped_pairs_cost_nothing_and_dont_stop() {
        let mut src = SnHint.start((0..10).collect(), 9);
        let out = run_block(
            &mut src,
            StopRule::DistinctBudget(2),
            |a, b| (a + b) % 2 == 0, // skip half the pairs
            dup_if_close,
        );
        assert!(out.skipped > 0);
        // Budget counts only compared distinct pairs.
        assert!(out.distinct <= 3);
    }

    #[test]
    fn popcorn_stops_on_dry_streak() {
        // Distance-1 pairs are duplicates (first 19 comparisons on a
        // 20-entity block), then everything is distinct: popcorn with a
        // window of 10 should stop well before exhausting all pairs.
        let mut src = SnHint.start((0..20).collect(), 19);
        let out = run_block(
            &mut src,
            StopRule::Popcorn {
                threshold: 0.2,
                window: 10,
            },
            |_, _| true,
            dup_if_close,
        );
        assert!(!out.exhausted);
        assert_eq!(out.duplicates.len(), 19);
        let total_pairs = 20 * 19 / 2;
        assert!(out.comparisons < total_pairs / 2);
    }

    #[test]
    fn duplicates_reported_in_discovery_order() {
        let mut src = SnHint.start(vec![4, 3, 2, 1, 0], 4);
        let out = run_block(&mut src, StopRule::Exhaust, |_, _| true, dup_if_close);
        // Distance-1 pairs come first, in list order.
        assert_eq!(&out.duplicates[..4], &[(4, 3), (3, 2), (2, 1), (1, 0)]);
    }
}
