//! Torture tests for the journal: proptest codec round-trips, truncation
//! at every byte boundary, and corruption at every byte position. The
//! invariant throughout: recovery never panics and never invents events —
//! it returns a prefix of what was actually appended.

use std::sync::Arc;

use pper_journal::{
    recover, AttemptFailure, JobJournal, JournalEvent, JournalStore, MemStore, TaskClass,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build one event from generated raw material. The selector picks the
/// variant; strings/numbers are reused across fields so every variant gets
/// exercised with varied payloads (including non-ASCII and empty strings).
#[allow(clippy::too_many_arguments)]
fn build_event(
    sel: u8,
    s1: String,
    s2: String,
    nums: (u32, u64, u64),
    pairs: Vec<(String, String)>,
) -> JournalEvent {
    let (n32, n64, bits) = nums;
    let cost = f64::from_bits(bits);
    let kind = if n32 % 2 == 0 {
        TaskClass::Map
    } else {
        TaskClass::Reduce
    };
    let failures: Vec<AttemptFailure> = pairs
        .iter()
        .enumerate()
        .map(|(i, (_, e))| AttemptFailure {
            attempt: i as u32 + 1,
            wasted_cost: cost / 2.0,
            error: e.clone(),
        })
        .collect();
    match sel % 10 {
        0 => JournalEvent::JobStarted {
            job_id: s1,
            params: pairs,
        },
        1 => JournalEvent::Job1Finished { virtual_cost: cost },
        2 => JournalEvent::ScheduleGenerated {
            num_tasks: n32,
            total_blocks: n64,
        },
        3 => JournalEvent::TaskFinished {
            job: s1,
            kind,
            index: n32,
            attempts: n32 % 7,
            cost,
            wasted: cost / 4.0,
            failures,
        },
        4 => JournalEvent::TaskExhausted {
            job: s1,
            kind,
            index: n32,
            attempts: n32 % 7,
            failures,
        },
        5 => JournalEvent::CheckpointCut {
            checkpoint_json: s2,
        },
        6 => JournalEvent::CountersSnapshot {
            entries: pairs.into_iter().map(|(k, _)| (k, n64)).collect(),
        },
        7 => JournalEvent::DeadLettered {
            seq: n32 % 100,
            job: s1,
            kind,
            index: n32,
            attempts: n32 % 7,
            failures,
            context_json: s2,
        },
        8 => JournalEvent::DlqDrained { seq: n32 },
        _ => JournalEvent::JobFinished {
            duplicates: n64,
            total_cost: cost,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    // encode → decode → encode is the identity on bytes. Byte-level
    // comparison sidesteps NaN != NaN while still proving the codec is
    // lossless down to f64 bit patterns.
    #[test]
    fn encode_decode_encode_is_identity(
        sel in 0u8..10,
        s1 in ".{0,24}",
        s2 in ".{0,64}",
        nums in (0u32..=u32::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
        pairs in vec((".{0,12}", ".{0,12}"), 0..4),
    ) {
        let ev = build_event(sel, s1, s2, nums, pairs);
        let bytes = ev.encode();
        let back = JournalEvent::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back.encode(), bytes);
        prop_assert_eq!(back.name(), ev.name());
    }

    // Decoding arbitrary garbage never panics — it returns Ok or Err.
    #[test]
    fn decode_arbitrary_bytes_never_panics(
        bytes in vec(0u8..=255, 0..200),
    ) {
        let _ = JournalEvent::decode(&bytes);
    }

    // A journal truncated at ANY byte length recovers without panicking,
    // and what it recovers is a prefix of the appended events.
    #[test]
    fn truncation_at_every_boundary_recovers_a_prefix(
        sels in vec(0u8..10, 1..6),
        s1 in ".{0,16}",
        nums in (0u32..=u32::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
    ) {
        let mstore = Arc::new(MemStore::new());
        let store: Arc<dyn JournalStore> = Arc::<MemStore>::clone(&mstore);
        let mut j = JobJournal::create(Arc::clone(&store), "trunc").expect("create");
        let mut appended = Vec::new();
        for (i, sel) in sels.iter().enumerate() {
            let ev = build_event(
                *sel,
                format!("{s1}-{i}"),
                String::new(),
                nums,
                vec![],
            );
            j.append(&ev).expect("append");
            appended.push(ev);
        }
        let full = store.read("trunc").expect("read").len();
        for cut in 0..full {
            let m2 = Arc::new(MemStore::new());
            let s2: Arc<dyn JournalStore> = Arc::<MemStore>::clone(&m2);
            s2.append("trunc", &store.read("trunc").expect("read")).expect("copy");
            m2.truncate("trunc", cut);
            if cut < pper_journal::MAGIC.len() {
                prop_assert!(recover(&s2, "trunc").is_err());
                continue;
            }
            let rec = recover(&s2, "trunc").expect("recover");
            prop_assert!(rec.events.len() <= appended.len());
            for (got, want) in rec.events.iter().zip(appended.iter()) {
                prop_assert_eq!(got.1.encode(), want.encode());
            }
            if cut < full {
                prop_assert!(!rec.report.clean() || rec.events.len() < appended.len()
                    || rec.report.valid_bytes as usize == cut);
            }
        }
    }

    // Flipping ANY single byte of a journal never panics recovery, and
    // every event that still decodes matches the original stream up to
    // the first divergence point.
    #[test]
    fn single_byte_corruption_never_panics(
        sels in vec(0u8..10, 1..5),
        pos_seed in 0u64..=u64::MAX,
    ) {
        let mstore = Arc::new(MemStore::new());
        let store: Arc<dyn JournalStore> = Arc::<MemStore>::clone(&mstore);
        let mut j = JobJournal::create(Arc::clone(&store), "corrupt").expect("create");
        let mut appended = Vec::new();
        for sel in &sels {
            let ev = build_event(*sel, "job".into(), "{}".into(), (7, 9, 11), vec![]);
            j.append(&ev).expect("append");
            appended.push(ev);
        }
        let bytes = store.read("corrupt").expect("read");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        mstore.corrupt("corrupt", pos);
        match recover(&store, "corrupt") {
            Err(_) => {
                // Only header damage may hard-error.
                prop_assert!(pos < pper_journal::MAGIC.len());
            }
            Ok(rec) => {
                prop_assert!(rec.events.len() <= appended.len());
                // CRC catches the flip: all surviving events are intact.
                for (got, want) in rec.events.iter().zip(appended.iter()) {
                    prop_assert_eq!(got.1.encode(), want.encode());
                }
            }
        }
    }
}

/// Deterministic (non-prop) sweep mirroring the conformance suite's shape:
/// append a realistic event sequence, then confirm that recovery after a
/// cut at every single byte yields exactly the durable prefix.
#[test]
fn realistic_sequence_truncation_sweep() {
    let events = vec![
        JournalEvent::JobStarted {
            job_id: "sweep".into(),
            params: vec![
                ("dataset".into(), "quick.jsonl".into()),
                ("machines".into(), "1".into()),
            ],
        },
        JournalEvent::Job1Finished {
            virtual_cost: 1234.5678,
        },
        JournalEvent::ScheduleGenerated {
            num_tasks: 2,
            total_blocks: 17,
        },
        JournalEvent::TaskFinished {
            job: "pper-job2-resolution".into(),
            kind: TaskClass::Reduce,
            index: 0,
            attempts: 2,
            cost: 800.0,
            wasted: 120.25,
            failures: vec![AttemptFailure {
                attempt: 1,
                wasted_cost: 120.25,
                error: "injected crash at 100".into(),
            }],
        },
        JournalEvent::CheckpointCut {
            checkpoint_json: "{\"crash_at\":1500.0}".into(),
        },
        JournalEvent::JobFinished {
            duplicates: 99,
            total_cost: 2222.25,
        },
    ];
    let mstore = Arc::new(MemStore::new());
    let store: Arc<dyn JournalStore> = Arc::<MemStore>::clone(&mstore);
    let mut j = JobJournal::create(Arc::clone(&store), "sweep").unwrap();
    let mut ends = Vec::new(); // byte length after each append
    for ev in &events {
        j.append(ev).unwrap();
        ends.push(store.read("sweep").unwrap().len());
    }
    let bytes = store.read("sweep").unwrap();
    for cut in pper_journal::MAGIC.len()..=bytes.len() {
        let m2 = Arc::new(MemStore::new());
        let s2: Arc<dyn JournalStore> = Arc::<MemStore>::clone(&m2);
        s2.append("sweep", &bytes[..cut]).unwrap();
        let rec = recover(&s2, "sweep").unwrap();
        let durable = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            rec.events.len(),
            durable,
            "cut at {cut}: events fully synced before the cut must survive"
        );
        for (i, (_, got)) in rec.events.iter().enumerate() {
            assert_eq!(got, &events[i], "cut at {cut}, event {i}");
        }
        let on_boundary = cut == pper_journal::MAGIC.len() || ends.contains(&cut);
        assert_eq!(rec.report.clean(), on_boundary);
    }
}
