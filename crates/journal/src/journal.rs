//! The per-job journal writer, recovery, and the replayed job state.
//!
//! [`JobJournal`] is the write side: it frames and appends events through a
//! [`JournalStore`], syncing after every append so an abrupt process death
//! never loses an acknowledged event. [`recover`] is the read side: it
//! parses the longest valid record prefix (tolerating the torn tail a
//! killed writer leaves) and decodes it to `(offset, event)` pairs.
//! [`JournalState`] folds that stream into "where was this job" — enough
//! for a fresh process to reconstruct the run and continue, and the source
//! of the job's live dead-letter queue.

use std::sync::Arc;

use crate::event::JournalEvent;
use crate::frame::{self, RecoveryReport, MAGIC};
use crate::store::JournalStore;
use crate::JournalError;

/// Append-side handle for one job's journal.
pub struct JobJournal {
    store: Arc<dyn JournalStore>,
    job_id: String,
    events_appended: u64,
    kill_after: Option<u64>,
}

impl std::fmt::Debug for JobJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobJournal")
            .field("job_id", &self.job_id)
            .field("events_appended", &self.events_appended)
            .field("kill_after", &self.kill_after)
            .finish()
    }
}

impl JobJournal {
    /// Open (creating if absent) the journal for `job_id`.
    ///
    /// A brand-new journal gets the magic header written and synced before
    /// this returns; an existing one has its header validated so appending
    /// to a foreign or corrupt file fails fast.
    pub fn create(store: Arc<dyn JournalStore>, job_id: &str) -> Result<Self, JournalError> {
        match store.read(job_id) {
            Ok(bytes) if bytes.is_empty() => {
                store.append(job_id, &MAGIC)?;
                store.sync(job_id)?;
            }
            Ok(bytes) => {
                if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
                    return Err(JournalError::BadHeader(format!(
                        "existing log for '{job_id}' is not a pper journal"
                    )));
                }
            }
            Err(JournalError::NotFound(_)) => {
                store.append(job_id, &MAGIC)?;
                store.sync(job_id)?;
            }
            Err(e) => return Err(e),
        }
        Ok(Self {
            store,
            job_id: job_id.to_string(),
            events_appended: 0,
            kill_after: None,
        })
    }

    /// Conformance-harness hook: after the `n`-th successful (appended and
    /// synced) event, the process aborts as if killed. `None` disables.
    ///
    /// Aborting *after* the sync is the strictest kill point: the event is
    /// durable, nothing after it is, and resume must pick up exactly there.
    pub fn set_kill_after(&mut self, n: Option<u64>) {
        self.kill_after = n;
    }

    /// Job id this journal writes under.
    pub fn job_id(&self) -> &str {
        &self.job_id
    }

    /// Events appended through this handle (not counting pre-existing ones).
    pub fn events_appended(&self) -> u64 {
        self.events_appended
    }

    /// Frame, append, and sync one event; returns the byte offset of the
    /// record's frame header, usable with [`read_event_at`].
    pub fn append(&mut self, event: &JournalEvent) -> Result<u64, JournalError> {
        let payload = event.encode();
        let mut framed = Vec::with_capacity(frame::FRAME_HEADER + payload.len());
        frame::write_frame(&mut framed, &payload);
        let offset = self.store.append(&self.job_id, &framed)?;
        self.store.sync(&self.job_id)?;
        self.events_appended += 1;
        if let Some(n) = self.kill_after {
            if self.events_appended >= n {
                // Simulated `kill -9` for the kill-point conformance suite:
                // no unwinding, no destructors, no further writes.
                std::process::abort();
            }
        }
        Ok(offset)
    }
}

/// Result of [`recover`]: the decoded event stream plus what the frame
/// layer had to drop to get there.
#[derive(Debug)]
pub struct RecoveredJournal {
    /// `(byte offset of the record, event)` in append order.
    pub events: Vec<(u64, JournalEvent)>,
    /// Torn-tail / corruption report from the frame layer.
    pub report: RecoveryReport,
}

/// Read and decode a job's journal, recovering the longest valid prefix.
///
/// A record whose checksum matches but whose payload fails to decode stops
/// the prefix there (marked corrupt) rather than erroring: recovery always
/// yields every event that is certainly good.
pub fn recover(
    store: &Arc<dyn JournalStore>,
    job_id: &str,
) -> Result<RecoveredJournal, JournalError> {
    let bytes = store.read(job_id)?;
    let (frames, mut report) = frame::read_frames(&bytes)?;
    let mut events = Vec::with_capacity(frames.len());
    for (offset, payload) in frames {
        match JournalEvent::decode(payload) {
            Ok(ev) => events.push((offset, ev)),
            Err(_) => {
                // Checksummed but undecodable: schema damage. Keep the
                // prefix before it, report everything from here as dropped.
                report.corrupt = true;
                report.dropped_bytes += report.valid_bytes - offset;
                report.valid_bytes = offset;
                break;
            }
        }
    }
    Ok(RecoveredJournal { events, report })
}

/// Decode the single event at byte `offset` of a job's journal.
///
/// This is how durable pointers are dereferenced: a later event (or a
/// fresh process) holds "checkpoint at offset N" and re-reads the record
/// itself rather than trusting process memory.
pub fn read_event_at(
    store: &Arc<dyn JournalStore>,
    job_id: &str,
    offset: u64,
) -> Result<JournalEvent, JournalError> {
    let bytes = store.read(job_id)?;
    let payload = frame::read_frame_at(&bytes, offset)?;
    JournalEvent::decode(payload)
}

/// One task sitting in the dead-letter queue.
#[derive(Debug, Clone, PartialEq)]
pub struct DlqEntry {
    /// Sequence number assigned at capture (stable across drains).
    pub seq: u32,
    /// Name of the MR job the task belonged to.
    pub job: String,
    /// Map or reduce side.
    pub kind: crate::event::TaskClass,
    /// Task index within its phase.
    pub index: u32,
    /// Attempts the task consumed before exhausting its budget.
    pub attempts: u32,
    /// Rendered failure history, one entry per dead attempt.
    pub failures: Vec<crate::event::AttemptFailure>,
    /// JSON reprocessing context captured with the task.
    pub context_json: String,
}

/// The fold of a job's event stream: everything a fresh process needs to
/// know to list, resume, or reprocess the job.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Job id from `JobStarted` (None if the log predates it — unresumable).
    pub job_id: Option<String>,
    /// Configuration key/value pairs from `JobStarted`.
    pub params: Vec<(String, String)>,
    /// Virtual cost of the finished statistics job, if journaled.
    pub job1_cost: Option<f64>,
    /// `(num_tasks, total_blocks)` once the schedule was generated.
    pub schedule: Option<(u32, u64)>,
    /// Offset and serialized checkpoint of the *latest* `CheckpointCut`.
    pub last_checkpoint: Option<(u64, String)>,
    /// `(duplicates, total_cost)` once the job finished.
    pub finished: Option<(u64, f64)>,
    /// Count of `TaskFinished` events seen.
    pub tasks_finished: u64,
    /// Latest counters snapshot, if any.
    pub counters: Vec<(String, u64)>,
    /// Live dead-letter queue: captured minus drained.
    pub dlq: Vec<DlqEntry>,
    /// Next dead-letter sequence number to assign.
    pub next_dlq_seq: u32,
}

impl JournalState {
    /// Fold an event stream (as produced by [`recover`]) into a state.
    pub fn replay(events: &[(u64, JournalEvent)]) -> Self {
        let mut st = Self::default();
        for (offset, ev) in events {
            match ev {
                JournalEvent::JobStarted { job_id, params } => {
                    st.job_id = Some(job_id.clone());
                    st.params = params.clone();
                }
                JournalEvent::Job1Finished { virtual_cost } => {
                    st.job1_cost = Some(*virtual_cost);
                }
                JournalEvent::ScheduleGenerated {
                    num_tasks,
                    total_blocks,
                } => st.schedule = Some((*num_tasks, *total_blocks)),
                JournalEvent::TaskFinished { .. } => st.tasks_finished += 1,
                JournalEvent::TaskExhausted { .. } => {}
                JournalEvent::CheckpointCut { checkpoint_json } => {
                    st.last_checkpoint = Some((*offset, checkpoint_json.clone()));
                }
                JournalEvent::CountersSnapshot { entries } => {
                    st.counters = entries.clone();
                }
                JournalEvent::DeadLettered {
                    seq,
                    job,
                    kind,
                    index,
                    attempts,
                    failures,
                    context_json,
                } => {
                    st.dlq.push(DlqEntry {
                        seq: *seq,
                        job: job.clone(),
                        kind: *kind,
                        index: *index,
                        attempts: *attempts,
                        failures: failures.clone(),
                        context_json: context_json.clone(),
                    });
                    st.next_dlq_seq = st.next_dlq_seq.max(*seq + 1);
                }
                JournalEvent::DlqDrained { seq } => {
                    st.dlq.retain(|e| e.seq != *seq);
                }
                JournalEvent::JobFinished {
                    duplicates,
                    total_cost,
                } => st.finished = Some((*duplicates, *total_cost)),
            }
        }
        st
    }

    /// Look up a `JobStarted` configuration parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptFailure, TaskClass};
    use crate::store::MemStore;

    fn mem() -> Arc<dyn JournalStore> {
        MemStore::shared()
    }

    #[test]
    fn append_recover_round_trip() {
        let store = mem();
        let mut j = JobJournal::create(Arc::clone(&store), "rt").unwrap();
        let ev1 = JournalEvent::JobStarted {
            job_id: "rt".into(),
            params: vec![("machines".into(), "2".into())],
        };
        let ev2 = JournalEvent::Job1Finished { virtual_cost: 17.5 };
        let off1 = j.append(&ev1).unwrap();
        let off2 = j.append(&ev2).unwrap();
        assert_eq!(off1, MAGIC.len() as u64);
        assert!(off2 > off1);
        let rec = recover(&store, "rt").unwrap();
        assert!(rec.report.clean());
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0], (off1, ev1));
        assert_eq!(rec.events[1].1, ev2);
        assert_eq!(read_event_at(&store, "rt", off2).unwrap(), ev2);
    }

    #[test]
    fn create_is_idempotent_and_validates_header() {
        let store = mem();
        {
            let mut j = JobJournal::create(Arc::clone(&store), "idem").unwrap();
            j.append(&JournalEvent::DlqDrained { seq: 0 }).unwrap();
        }
        // Re-opening appends after existing events, never rewrites the header.
        let mut j2 = JobJournal::create(Arc::clone(&store), "idem").unwrap();
        j2.append(&JournalEvent::DlqDrained { seq: 1 }).unwrap();
        let rec = recover(&store, "idem").unwrap();
        assert_eq!(rec.events.len(), 2);
        // A log that is not a journal is rejected.
        store.append("alien", b"not a journal at all").unwrap();
        assert!(matches!(
            JobJournal::create(Arc::clone(&store), "alien"),
            Err(JournalError::BadHeader(_))
        ));
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let mstore = Arc::new(MemStore::new());
        let store: Arc<dyn JournalStore> = Arc::<MemStore>::clone(&mstore);
        let mut j = JobJournal::create(Arc::clone(&store), "torn").unwrap();
        j.append(&JournalEvent::DlqDrained { seq: 0 }).unwrap();
        j.append(&JournalEvent::DlqDrained { seq: 1 }).unwrap();
        let full = store.read("torn").unwrap().len();
        mstore.truncate("torn", full - 2);
        let rec = recover(&store, "torn").unwrap();
        assert_eq!(rec.events.len(), 1);
        assert!(rec.report.torn_tail && !rec.report.corrupt);
        assert_eq!(
            rec.report.dropped_bytes as usize,
            full - 2 - rec.report.valid_bytes as usize
        );
    }

    #[test]
    fn undecodable_payload_is_reported_corrupt() {
        let store = mem();
        let mut framed = MAGIC.to_vec();
        crate::frame::write_frame(&mut framed, &[250, 1, 2, 3]); // bogus tag
        store.append("bad", &framed).unwrap();
        let rec = recover(&store, "bad").unwrap();
        assert!(rec.events.is_empty());
        assert!(rec.report.corrupt);
        assert_eq!(rec.report.valid_bytes, MAGIC.len() as u64);
    }

    #[test]
    fn state_replay_tracks_checkpoints_and_dlq() {
        let store = mem();
        let mut j = JobJournal::create(Arc::clone(&store), "state").unwrap();
        j.append(&JournalEvent::JobStarted {
            job_id: "state".into(),
            params: vec![("dataset".into(), "ds.jsonl".into())],
        })
        .unwrap();
        j.append(&JournalEvent::Job1Finished { virtual_cost: 3.0 })
            .unwrap();
        j.append(&JournalEvent::CheckpointCut {
            checkpoint_json: "{\"v\":1}".into(),
        })
        .unwrap();
        let ck2 = j
            .append(&JournalEvent::CheckpointCut {
                checkpoint_json: "{\"v\":2}".into(),
            })
            .unwrap();
        j.append(&JournalEvent::DeadLettered {
            seq: 0,
            job: "j2".into(),
            kind: TaskClass::Reduce,
            index: 3,
            attempts: 4,
            failures: vec![AttemptFailure {
                attempt: 1,
                wasted_cost: 2.5,
                error: "boom".into(),
            }],
            context_json: "{}".into(),
        })
        .unwrap();
        j.append(&JournalEvent::DeadLettered {
            seq: 1,
            job: "j2".into(),
            kind: TaskClass::Reduce,
            index: 5,
            attempts: 4,
            failures: vec![],
            context_json: "{}".into(),
        })
        .unwrap();
        j.append(&JournalEvent::DlqDrained { seq: 0 }).unwrap();

        let rec = recover(&store, "state").unwrap();
        let st = JournalState::replay(&rec.events);
        assert_eq!(st.job_id.as_deref(), Some("state"));
        assert_eq!(st.param("dataset"), Some("ds.jsonl"));
        assert_eq!(st.job1_cost, Some(3.0));
        assert_eq!(st.last_checkpoint, Some((ck2, "{\"v\":2}".to_string())));
        assert_eq!(st.dlq.len(), 1);
        assert_eq!(st.dlq[0].seq, 1);
        assert_eq!(st.dlq[0].index, 5);
        assert_eq!(st.next_dlq_seq, 2);
        assert!(st.finished.is_none());
    }
}
