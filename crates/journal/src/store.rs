//! Pluggable journal storage: where the framed bytes actually live.
//!
//! The [`JournalStore`] trait is the only seam between the journal logic
//! and the outside world. Tests use the in-memory [`MemStore`]; real runs
//! use [`FileStore`], one fsync'd file per job, so a `kill -9` after a
//! synced append can lose at most the record being written (a torn tail
//! the frame layer recovers from).
//!
//! [`FileStore`] routes every file operation through a [`pper_vfs::Vfs`]
//! (pper-lint rule D5 bans direct `std::fs` here), so chaos suites can
//! inject disk faults deterministically. Failed appends are rolled back
//! with `set_len` so a transient fault's partial bytes never linger as a
//! torn tail, and transient write faults are retried in place under a
//! bounded [`RetryPolicy`]; what cannot be recovered surfaces as the typed
//! [`JournalError::Fault`].

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use pper_vfs::{retry_io, IoFault, IoOp, RetryPolicy, Vfs, VfsFile};

use crate::JournalError;

/// Abstract append-only byte storage, keyed by job id.
pub trait JournalStore: Send + Sync {
    /// Append `bytes` to the job's log, returning the byte offset at which
    /// the write began (i.e. the log's length before the append).
    fn append(&self, job: &str, bytes: &[u8]) -> Result<u64, JournalError>;

    /// Read the job's entire log. [`JournalError::NotFound`] if the job has
    /// never been written.
    fn read(&self, job: &str) -> Result<Vec<u8>, JournalError>;

    /// Force appended bytes to stable storage (no-op for memory stores).
    fn sync(&self, job: &str) -> Result<(), JournalError>;

    /// Cut the job's log back to `len` bytes. Recovery uses this to drop a
    /// torn tail before new records are appended behind it; `len` past the
    /// current end is a no-op.
    fn truncate_log(&self, job: &str, len: u64) -> Result<(), JournalError>;

    /// Every job id with a log, sorted.
    fn list_jobs(&self) -> Result<Vec<String>, JournalError>;
}

/// Reject job ids that cannot round-trip through a file name. Applies to
/// every store so tests with `MemStore` catch bad ids too.
pub(crate) fn check_job_id(job: &str) -> Result<(), JournalError> {
    let ok = !job.is_empty()
        && job.len() <= 128
        && job
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !job.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(JournalError::BadJobId(job.to_string()))
    }
}

/// In-memory store for tests: a map of job id to its byte log.
#[derive(Default)]
pub struct MemStore {
    logs: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    /// Fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh store behind an `Arc<dyn JournalStore>`, the shape the
    /// durable runner consumes.
    pub fn shared() -> Arc<dyn JournalStore> {
        Arc::new(Self::new())
    }

    /// Truncate a job's log to `len` bytes — simulates a crash that lost
    /// the tail of the file. No-op if the log is already shorter.
    pub fn truncate(&self, job: &str, len: usize) {
        let mut logs = self.logs.lock();
        if let Some(log) = logs.get_mut(job) {
            log.truncate(len);
        }
    }

    /// Flip the byte at `pos` in a job's log — simulates bit rot.
    pub fn corrupt(&self, job: &str, pos: usize) {
        let mut logs = self.logs.lock();
        if let Some(b) = logs.get_mut(job).and_then(|log| log.get_mut(pos)) {
            *b ^= 0xFF;
        }
    }
}

impl std::fmt::Debug for MemStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let logs = self.logs.lock();
        f.debug_struct("MemStore")
            .field("jobs", &logs.len())
            .finish()
    }
}

impl JournalStore for MemStore {
    fn append(&self, job: &str, bytes: &[u8]) -> Result<u64, JournalError> {
        check_job_id(job)?;
        let mut logs = self.logs.lock();
        let log = logs.entry(job.to_string()).or_default();
        let offset = crate::frame::off_u64(log.len());
        log.extend_from_slice(bytes);
        Ok(offset)
    }

    fn read(&self, job: &str) -> Result<Vec<u8>, JournalError> {
        check_job_id(job)?;
        self.logs
            .lock()
            .get(job)
            .cloned()
            .ok_or_else(|| JournalError::NotFound(job.to_string()))
    }

    fn sync(&self, _job: &str) -> Result<(), JournalError> {
        Ok(())
    }

    fn truncate_log(&self, job: &str, len: u64) -> Result<(), JournalError> {
        check_job_id(job)?;
        let mut logs = self.logs.lock();
        if let Some(log) = logs.get_mut(job) {
            log.truncate(usize::try_from(len).unwrap_or(usize::MAX));
        }
        Ok(())
    }

    fn list_jobs(&self) -> Result<Vec<String>, JournalError> {
        Ok(self.logs.lock().keys().cloned().collect())
    }
}

/// One fsync'd `<job>.journal` file per job under a directory, written
/// through a [`Vfs`].
pub struct FileStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
    // Cached append handles so repeated appends don't reopen the file.
    handles: Mutex<BTreeMap<String, Box<dyn VfsFile>>>,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir` on the real
    /// filesystem.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, JournalError> {
        Self::open_with(pper_vfs::std_vfs(), dir)
    }

    /// [`FileStore::open`] through an explicit [`Vfs`] (chaos suites
    /// inject faults here).
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: impl AsRef<Path>) -> Result<Self, JournalError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        Ok(Self {
            dir,
            vfs,
            retry: RetryPolicy::default(),
            handles: Mutex::new(BTreeMap::new()),
        })
    }

    /// As [`FileStore::open`], but behind an `Arc<dyn JournalStore>`.
    pub fn shared(dir: impl AsRef<Path>) -> Result<Arc<dyn JournalStore>, JournalError> {
        Ok(Arc::new(Self::open(dir)?))
    }

    /// Override the transient-fault retry policy for appends.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Path of a job's journal file.
    pub fn path_for(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.journal"))
    }
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore").field("dir", &self.dir).finish()
    }
}

impl JournalStore for FileStore {
    fn append(&self, job: &str, bytes: &[u8]) -> Result<u64, JournalError> {
        check_job_id(job)?;
        let path = self.path_for(job);
        let mut handles = self.handles.lock();
        let file = match handles.entry(job.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(self.vfs.open_append(&path)?),
        };
        let offset = file
            .seek(SeekFrom::End(0))
            .map_err(|e| IoFault::classify(IoOp::Write, &path, &e))?;
        // Transient faults are retried in place; between attempts the log
        // is rolled back to `offset` so partial bytes from a failed write
        // never linger. (The frame layer would survive a torn tail anyway,
        // but rollback keeps the on-disk log dense and the returned offset
        // truthful.)
        let (result, _stats) = retry_io(&self.retry, || {
            file.write_all(bytes)
                .and_then(|()| file.flush())
                .map_err(|e| {
                    let fault = IoFault::classify(IoOp::Write, &path, &e);
                    let _ = file.set_len(offset);
                    let _ = file.seek(SeekFrom::End(0));
                    fault
                })
        });
        result?;
        Ok(offset)
    }

    fn read(&self, job: &str) -> Result<Vec<u8>, JournalError> {
        check_job_id(job)?;
        let path = self.path_for(job);
        match self.vfs.try_read(&path)? {
            Some(buf) => Ok(buf),
            None => Err(JournalError::NotFound(job.to_string())),
        }
    }

    fn sync(&self, job: &str) -> Result<(), JournalError> {
        check_job_id(job)?;
        let path = self.path_for(job);
        let mut handles = self.handles.lock();
        if let Some(file) = handles.get_mut(job) {
            file.sync_data()
                .map_err(|e| IoFault::classify(IoOp::Fsync, &path, &e))?;
        }
        Ok(())
    }

    fn truncate_log(&self, job: &str, len: u64) -> Result<(), JournalError> {
        check_job_id(job)?;
        // `Vfs::truncate` only shrinks (len past the end is a no-op) and
        // returns Ok(false) for a missing file — both exactly the contract
        // here. The cached append handle stays valid: every append seeks
        // to the (new) end first.
        self.vfs.truncate(&self.path_for(job), len)?;
        Ok(())
    }

    fn list_jobs(&self) -> Result<Vec<String>, JournalError> {
        let mut jobs = Vec::new();
        // list_dir returns sorted names, so `jobs` stays sorted.
        for name in self.vfs.list_dir(&self.dir)? {
            if let Some(job) = name.strip_suffix(".journal") {
                if check_job_id(job).is_ok() {
                    jobs.push(job.to_string());
                }
            }
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pper_vfs::{FaultKind, FaultVfs, IoFaultPlan};

    fn exercise(store: &dyn JournalStore) {
        assert!(matches!(store.read("nope"), Err(JournalError::NotFound(_))));
        assert_eq!(store.append("job-a", b"hello").unwrap(), 0);
        assert_eq!(store.append("job-a", b" world").unwrap(), 5);
        store.sync("job-a").unwrap();
        assert_eq!(store.read("job-a").unwrap(), b"hello world");
        store.truncate_log("job-a", 100).unwrap(); // past end: no-op
        assert_eq!(store.read("job-a").unwrap(), b"hello world");
        store.truncate_log("job-a", 5).unwrap();
        assert_eq!(store.read("job-a").unwrap(), b"hello");
        assert_eq!(store.append("job-a", b" world").unwrap(), 5);
        store.truncate_log("absent", 0).unwrap(); // missing job: no-op
        store.append("job-b", b"x").unwrap();
        assert_eq!(store.list_jobs().unwrap(), vec!["job-a", "job-b"]);
        for bad in ["", "a/b", "..", ".hidden", "spa ce"] {
            assert!(matches!(
                store.append(bad, b"x"),
                Err(JournalError::BadJobId(_))
            ));
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pper-journal-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fault_store(dir: &Path, plan: IoFaultPlan) -> (FileStore, FaultVfs) {
        let fvfs = FaultVfs::new(plan).unwrap();
        let store = FileStore::open_with(Arc::new(fvfs.clone()), dir).unwrap();
        (store, fvfs)
    }

    #[test]
    fn mem_store_contract() {
        exercise(&MemStore::new());
    }

    #[test]
    fn file_store_contract() {
        let dir = tmp_dir("contract");
        let store = FileStore::open(&dir).unwrap();
        exercise(&store);
        // A fresh store over the same directory sees the same bytes.
        let reopened = FileStore::open(&dir).unwrap();
        assert_eq!(reopened.read("job-a").unwrap(), b"hello world");
        assert_eq!(reopened.list_jobs().unwrap(), vec!["job-a", "job-b"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_log_missing_file_is_noop() {
        let dir = tmp_dir("trunc-missing");
        let store = FileStore::open(&dir).unwrap();
        // Never written: truncating must succeed and create nothing.
        store.truncate_log("ghost", 0).unwrap();
        store.truncate_log("ghost", 999).unwrap();
        assert!(!store.path_for("ghost").exists());
        assert!(matches!(
            store.read("ghost"),
            Err(JournalError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_log_permission_denied_is_typed() {
        // Root bypasses real permission bits in this container, so the
        // EACCES branch is exercised with an injected fault instead.
        let dir = tmp_dir("trunc-eacces");
        let plan =
            IoFaultPlan::new().with_at(IoOp::Truncate, "job-a", 0, FaultKind::PermissionDenied);
        let (store, fvfs) = fault_store(&dir, plan);
        store.append("job-a", b"hello world").unwrap();
        let err = store.truncate_log("job-a", 5).unwrap_err();
        match err {
            JournalError::Fault(f) => {
                assert!(f.is_permanent(), "{f}");
                assert_eq!(f.info().op, IoOp::Truncate);
            }
            other => panic!("expected typed fault, got {other:?}"),
        }
        assert_eq!(fvfs.faults_fired(), 1);
        // The log is untouched by the failed truncate.
        assert_eq!(store.read("job-a").unwrap(), b"hello world");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_then_append_round_trips() {
        let dir = tmp_dir("trunc-roundtrip");
        let store = FileStore::open(&dir).unwrap();
        store.append("job-a", b"hello world").unwrap();
        store.sync("job-a").unwrap();
        store.truncate_log("job-a", 5).unwrap();
        // The append lands exactly at the truncation point, through the
        // cached handle that predates the truncate.
        assert_eq!(store.append("job-a", b" again").unwrap(), 5);
        store.sync("job-a").unwrap();
        assert_eq!(store.read("job-a").unwrap(), b"hello again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_append_fault_is_retried_without_torn_tail() {
        let dir = tmp_dir("append-transient");
        // Write index 0 is the first append; fault the second one, once.
        let plan =
            IoFaultPlan::new().with_at(IoOp::Write, "job-a", 1, FaultKind::Transient { times: 1 });
        let (store, fvfs) = fault_store(&dir, plan);
        store.append("job-a", b"first").unwrap();
        assert_eq!(store.append("job-a", b"second").unwrap(), 5);
        assert!(fvfs.faults_fired() >= 1, "the injected fault must fire");
        assert_eq!(store.read("job-a").unwrap(), b"firstsecond");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_append_is_rolled_back_and_typed() {
        let dir = tmp_dir("append-enospc");
        let plan = IoFaultPlan::new().with_at(IoOp::Write, "job-a", 1, FaultKind::Enospc);
        let (store, _fvfs) = fault_store(&dir, plan);
        store.append("job-a", b"keep").unwrap();
        let err = store.append("job-a", b"lost").unwrap_err();
        match err {
            JournalError::Fault(f) => assert!(f.is_disk_full(), "{f}"),
            other => panic!("expected disk-full fault, got {other:?}"),
        }
        // Rollback: the log still ends at the last successful append.
        assert_eq!(store.read("job-a").unwrap(), b"keep");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
