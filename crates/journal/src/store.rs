//! Pluggable journal storage: where the framed bytes actually live.
//!
//! The [`JournalStore`] trait is the only seam between the journal logic
//! and the outside world. Tests use the in-memory [`MemStore`]; real runs
//! use [`FileStore`], one fsync'd file per job, so a `kill -9` after a
//! synced append can lose at most the record being written (a torn tail
//! the frame layer recovers from).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::JournalError;

/// Abstract append-only byte storage, keyed by job id.
pub trait JournalStore: Send + Sync {
    /// Append `bytes` to the job's log, returning the byte offset at which
    /// the write began (i.e. the log's length before the append).
    fn append(&self, job: &str, bytes: &[u8]) -> Result<u64, JournalError>;

    /// Read the job's entire log. [`JournalError::NotFound`] if the job has
    /// never been written.
    fn read(&self, job: &str) -> Result<Vec<u8>, JournalError>;

    /// Force appended bytes to stable storage (no-op for memory stores).
    fn sync(&self, job: &str) -> Result<(), JournalError>;

    /// Cut the job's log back to `len` bytes. Recovery uses this to drop a
    /// torn tail before new records are appended behind it; `len` past the
    /// current end is a no-op.
    fn truncate_log(&self, job: &str, len: u64) -> Result<(), JournalError>;

    /// Every job id with a log, sorted.
    fn list_jobs(&self) -> Result<Vec<String>, JournalError>;
}

/// Reject job ids that cannot round-trip through a file name. Applies to
/// every store so tests with `MemStore` catch bad ids too.
pub(crate) fn check_job_id(job: &str) -> Result<(), JournalError> {
    let ok = !job.is_empty()
        && job.len() <= 128
        && job
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !job.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(JournalError::BadJobId(job.to_string()))
    }
}

/// In-memory store for tests: a map of job id to its byte log.
#[derive(Default)]
pub struct MemStore {
    logs: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    /// Fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh store behind an `Arc<dyn JournalStore>`, the shape the
    /// durable runner consumes.
    pub fn shared() -> Arc<dyn JournalStore> {
        Arc::new(Self::new())
    }

    /// Truncate a job's log to `len` bytes — simulates a crash that lost
    /// the tail of the file. No-op if the log is already shorter.
    pub fn truncate(&self, job: &str, len: usize) {
        let mut logs = self.logs.lock();
        if let Some(log) = logs.get_mut(job) {
            log.truncate(len);
        }
    }

    /// Flip the byte at `pos` in a job's log — simulates bit rot.
    pub fn corrupt(&self, job: &str, pos: usize) {
        let mut logs = self.logs.lock();
        if let Some(b) = logs.get_mut(job).and_then(|log| log.get_mut(pos)) {
            *b ^= 0xFF;
        }
    }
}

impl std::fmt::Debug for MemStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let logs = self.logs.lock();
        f.debug_struct("MemStore")
            .field("jobs", &logs.len())
            .finish()
    }
}

impl JournalStore for MemStore {
    fn append(&self, job: &str, bytes: &[u8]) -> Result<u64, JournalError> {
        check_job_id(job)?;
        let mut logs = self.logs.lock();
        let log = logs.entry(job.to_string()).or_default();
        let offset = log.len() as u64;
        log.extend_from_slice(bytes);
        Ok(offset)
    }

    fn read(&self, job: &str) -> Result<Vec<u8>, JournalError> {
        check_job_id(job)?;
        self.logs
            .lock()
            .get(job)
            .cloned()
            .ok_or_else(|| JournalError::NotFound(job.to_string()))
    }

    fn sync(&self, _job: &str) -> Result<(), JournalError> {
        Ok(())
    }

    fn truncate_log(&self, job: &str, len: u64) -> Result<(), JournalError> {
        check_job_id(job)?;
        let mut logs = self.logs.lock();
        if let Some(log) = logs.get_mut(job) {
            log.truncate(usize::try_from(len).unwrap_or(usize::MAX));
        }
        Ok(())
    }

    fn list_jobs(&self) -> Result<Vec<String>, JournalError> {
        Ok(self.logs.lock().keys().cloned().collect())
    }
}

/// One fsync'd `<job>.journal` file per job under a directory.
pub struct FileStore {
    dir: PathBuf,
    // Cached append handles so repeated appends don't reopen the file.
    handles: Mutex<BTreeMap<String, File>>,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, JournalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| JournalError::Store(format!("create {}: {e}", dir.display())))?;
        Ok(Self {
            dir,
            handles: Mutex::new(BTreeMap::new()),
        })
    }

    /// As [`FileStore::open`], but behind an `Arc<dyn JournalStore>`.
    pub fn shared(dir: impl AsRef<Path>) -> Result<Arc<dyn JournalStore>, JournalError> {
        Ok(Arc::new(Self::open(dir)?))
    }

    /// Path of a job's journal file.
    pub fn path_for(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.journal"))
    }
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore").field("dir", &self.dir).finish()
    }
}

impl JournalStore for FileStore {
    fn append(&self, job: &str, bytes: &[u8]) -> Result<u64, JournalError> {
        check_job_id(job)?;
        let mut handles = self.handles.lock();
        let file = match handles.get_mut(job) {
            Some(f) => f,
            None => {
                let path = self.path_for(job);
                let f = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .read(true)
                    .open(&path)
                    .map_err(|e| JournalError::Store(format!("open {}: {e}", path.display())))?;
                handles.entry(job.to_string()).or_insert(f)
            }
        };
        let offset = file
            .seek(SeekFrom::End(0))
            .map_err(|e| JournalError::Store(format!("seek {job}: {e}")))?;
        file.write_all(bytes)
            .map_err(|e| JournalError::Store(format!("append {job}: {e}")))?;
        Ok(offset)
    }

    fn read(&self, job: &str) -> Result<Vec<u8>, JournalError> {
        check_job_id(job)?;
        let path = self.path_for(job);
        let mut buf = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)
                    .map_err(|e| JournalError::Store(format!("read {}: {e}", path.display())))?;
                Ok(buf)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(JournalError::NotFound(job.to_string()))
            }
            Err(e) => Err(JournalError::Store(format!("open {}: {e}", path.display()))),
        }
    }

    fn sync(&self, job: &str) -> Result<(), JournalError> {
        check_job_id(job)?;
        let handles = self.handles.lock();
        if let Some(file) = handles.get(job) {
            file.sync_data()
                .map_err(|e| JournalError::Store(format!("sync {job}: {e}")))?;
        }
        Ok(())
    }

    fn truncate_log(&self, job: &str, len: u64) -> Result<(), JournalError> {
        check_job_id(job)?;
        let path = self.path_for(job);
        match OpenOptions::new().write(true).open(&path) {
            Ok(f) => {
                let cur = f
                    .metadata()
                    .map_err(|e| JournalError::Store(format!("stat {}: {e}", path.display())))?
                    .len();
                if len < cur {
                    f.set_len(len).map_err(|e| {
                        JournalError::Store(format!("truncate {}: {e}", path.display()))
                    })?;
                    f.sync_data().map_err(|e| {
                        JournalError::Store(format!("sync {}: {e}", path.display()))
                    })?;
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(JournalError::Store(format!("open {}: {e}", path.display()))),
        }
    }

    fn list_jobs(&self) -> Result<Vec<String>, JournalError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| JournalError::Store(format!("list {}: {e}", self.dir.display())))?;
        let mut jobs = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| JournalError::Store(format!("list {}: {e}", self.dir.display())))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(job) = name.strip_suffix(".journal") {
                if check_job_id(job).is_ok() {
                    jobs.push(job.to_string());
                }
            }
        }
        jobs.sort();
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn JournalStore) {
        assert!(matches!(store.read("nope"), Err(JournalError::NotFound(_))));
        assert_eq!(store.append("job-a", b"hello").unwrap(), 0);
        assert_eq!(store.append("job-a", b" world").unwrap(), 5);
        store.sync("job-a").unwrap();
        assert_eq!(store.read("job-a").unwrap(), b"hello world");
        store.truncate_log("job-a", 100).unwrap(); // past end: no-op
        assert_eq!(store.read("job-a").unwrap(), b"hello world");
        store.truncate_log("job-a", 5).unwrap();
        assert_eq!(store.read("job-a").unwrap(), b"hello");
        assert_eq!(store.append("job-a", b" world").unwrap(), 5);
        store.truncate_log("absent", 0).unwrap(); // missing job: no-op
        store.append("job-b", b"x").unwrap();
        assert_eq!(store.list_jobs().unwrap(), vec!["job-a", "job-b"]);
        for bad in ["", "a/b", "..", ".hidden", "spa ce"] {
            assert!(matches!(
                store.append(bad, b"x"),
                Err(JournalError::BadJobId(_))
            ));
        }
    }

    #[test]
    fn mem_store_contract() {
        exercise(&MemStore::new());
    }

    #[test]
    fn file_store_contract() {
        let dir = std::env::temp_dir().join(format!(
            "pper-journal-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        exercise(&store);
        // A fresh store over the same directory sees the same bytes.
        let reopened = FileStore::open(&dir).unwrap();
        assert_eq!(reopened.read("job-a").unwrap(), b"hello world");
        assert_eq!(reopened.list_jobs().unwrap(), vec!["job-a", "job-b"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
