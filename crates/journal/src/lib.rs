//! # pper-journal
//!
//! Durable lifecycle layer for the pipeline: an append-only, length-prefixed
//! and checksummed event log per job, written through a pluggable
//! [`JournalStore`], plus the dead-letter view derived from it.
//!
//! A real MapReduce deployment survives process death because everything
//! that matters is on stable storage: the job's configuration, which tasks
//! finished, the checkpoints, and which tasks burned their attempt budget.
//! This crate is that storage layer for the simulated runtime:
//!
//! * [`frame`] — the on-disk record framing: a magic/version header followed
//!   by `[u32 len][u32 crc32][payload]` records. Recovery parses the longest
//!   valid prefix and reports (never panics on) torn tails or corruption.
//! * [`event`] — the [`JournalEvent`] schema and its hand-rolled binary
//!   codec. Virtual costs are encoded as `f64::to_bits`, so a decode is
//!   bit-identical to what was written.
//! * [`store`] — the [`JournalStore`] trait with an in-memory
//!   implementation for tests ([`MemStore`]) and an fsync'd file-per-job
//!   implementation for real runs ([`FileStore`]).
//! * [`journal`] — the [`JobJournal`] writer (with an optional
//!   kill-after-N-events crash hook for conformance harnesses),
//!   [`recover`], and the [`JournalState`] fold that reduces an event
//!   stream to "where was this job, and what is in its dead-letter queue".
//!
//! The crate is deliberately dependency-light and panic-free in production
//! paths: a corrupt journal yields a [`JournalError`] or a truncated
//! recovery, never an abort (`pper-lint`'s `panic_path` rule covers every
//! file here).

#![forbid(unsafe_code)]

pub mod event;
pub mod frame;
pub mod journal;
pub mod store;

pub use event::{AttemptFailure, JournalEvent, TaskClass};
pub use frame::{RecoveryReport, MAGIC};
pub use journal::{read_event_at, recover, DlqEntry, JobJournal, JournalState, RecoveredJournal};
pub use store::{FileStore, JournalStore, MemStore};

/// Everything that can go wrong reading or writing a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The backing store failed (I/O error, unwritable directory, ...).
    Store(String),
    /// A typed storage fault from the VFS layer. Unlike [`Store`], the
    /// class (transient / permanent / corrupt, plus a disk-full marker) is
    /// machine-readable, so recovery policies can branch on it.
    ///
    /// [`Store`]: JournalError::Store
    Fault(pper_vfs::IoFault),
    /// No journal exists for the requested job id.
    NotFound(String),
    /// A job id contains characters the store cannot map to a file name.
    BadJobId(String),
    /// The journal's header is missing or from an unknown format version.
    BadHeader(String),
    /// A record failed to decode even though its checksum matched — a
    /// schema mismatch, not bit rot.
    BadEvent(String),
    /// The journal ends in a state the caller cannot proceed from (e.g.
    /// resuming a job whose log has no `JobStarted`).
    BadState(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Store(m) => write!(f, "journal store error: {m}"),
            JournalError::Fault(fault) => write!(f, "journal storage fault: {fault}"),
            JournalError::NotFound(job) => write!(f, "no journal for job '{job}'"),
            JournalError::BadJobId(job) => write!(
                f,
                "job id '{job}' is not storable (use letters, digits, '.', '_', '-')"
            ),
            JournalError::BadHeader(m) => write!(f, "bad journal header: {m}"),
            JournalError::BadEvent(m) => write!(f, "undecodable journal event: {m}"),
            JournalError::BadState(m) => write!(f, "journal state error: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<pper_vfs::IoFault> for JournalError {
    fn from(fault: pper_vfs::IoFault) -> Self {
        JournalError::Fault(fault)
    }
}
