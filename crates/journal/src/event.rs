//! The journal event schema and its binary codec.
//!
//! One [`JournalEvent`] is one fact about a job's lifecycle. Events are
//! encoded with a small hand-rolled little-endian codec (tag byte, then the
//! variant's fields): strings as `u32` length + UTF-8, sequences as `u32`
//! count + elements, and virtual costs as `f64::to_bits` — so a decoded
//! event is *bit-identical* to what was appended, which is what lets a
//! resumed process reproduce a killed run's results exactly.
//!
//! Decoding is total: any malformed buffer yields
//! [`crate::JournalError::BadEvent`], never a panic, so a checksum-valid
//! but schema-incompatible record degrades into a recoverable error.

use crate::JournalError;

/// Map-side or reduce-side task, journal-local mirror of the runtime's
/// `TaskKind` (the journal crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskClass {
    /// Map-side task.
    Map,
    /// Reduce-side task.
    Reduce,
}

impl TaskClass {
    fn code(self) -> u8 {
        match self {
            TaskClass::Map => 0,
            TaskClass::Reduce => 1,
        }
    }

    fn from_code(c: u8) -> Result<Self, JournalError> {
        match c {
            0 => Ok(TaskClass::Map),
            1 => Ok(TaskClass::Reduce),
            other => Err(JournalError::BadEvent(format!("task class {other}"))),
        }
    }

    /// `map` / `reduce`, matching the runtime's task-id rendering.
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::Map => "map",
            TaskClass::Reduce => "reduce",
        }
    }
}

/// One failed attempt of a task: which attempt, the virtual cost it burned
/// before dying, and the rendered failure.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptFailure {
    /// 1-based attempt number, Hadoop-style.
    pub attempt: u32,
    /// Virtual cost the dead attempt occupied its slot for.
    pub wasted_cost: f64,
    /// Rendered panic message or injected-failure description.
    pub error: String,
}

/// One durable fact about a job's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// The job was submitted. `params` carries everything a fresh process
    /// needs to reconstruct the run configuration (dataset path, machine
    /// count, mechanism, checkpoint cadence, fault plan, ...), as ordered
    /// key/value pairs.
    JobStarted {
        /// Job identifier (also the store key).
        job_id: String,
        /// Ordered configuration key/value pairs.
        params: Vec<(String, String)>,
    },
    /// The statistics job (job 1) completed at this virtual cost.
    Job1Finished {
        /// Virtual completion time of the first job.
        virtual_cost: f64,
    },
    /// The progressive schedule was generated from the job-1 statistics.
    ScheduleGenerated {
        /// Reduce tasks the schedule targets.
        num_tasks: u32,
        /// Total scheduled blocks across all tasks.
        total_blocks: u64,
    },
    /// A task committed (possibly after failed attempts).
    TaskFinished {
        /// Name of the MR job the task belongs to.
        job: String,
        /// Map or reduce side.
        kind: TaskClass,
        /// Task index within its phase.
        index: u32,
        /// Attempts consumed (1 = first attempt succeeded).
        attempts: u32,
        /// Total virtual cost the task occupied its slot for.
        cost: f64,
        /// Portion of `cost` burned by dead attempts.
        wasted: f64,
        /// History of the dead attempts, in order.
        failures: Vec<AttemptFailure>,
    },
    /// A task exhausted its attempt budget and failed its job.
    TaskExhausted {
        /// Name of the MR job the task belongs to.
        job: String,
        /// Map or reduce side.
        kind: TaskClass,
        /// Task index within its phase.
        index: u32,
        /// Attempts consumed (= the budget).
        attempts: u32,
        /// History of every dead attempt, in order.
        failures: Vec<AttemptFailure>,
    },
    /// A consistent checkpoint was cut; `checkpoint_json` is the er-core
    /// `Checkpoint` serialization. The durable runner treats the journal
    /// record — not process memory — as the checkpoint of record: the next
    /// stage re-reads it by offset.
    CheckpointCut {
        /// Serialized `pper_er::Checkpoint`.
        checkpoint_json: String,
    },
    /// Counters snapshot (sorted key order) at a stable point.
    CountersSnapshot {
        /// `(counter name, value)` pairs in sorted name order.
        entries: Vec<(String, u64)>,
    },
    /// A task that exhausted its budget was captured into the dead-letter
    /// queue with its full input context and failure history.
    DeadLettered {
        /// Dead-letter sequence number (0-based per job).
        seq: u32,
        /// Name of the MR job the task belonged to.
        job: String,
        /// Map or reduce side.
        kind: TaskClass,
        /// Task index within its phase.
        index: u32,
        /// Attempts consumed.
        attempts: u32,
        /// History of every dead attempt.
        failures: Vec<AttemptFailure>,
        /// JSON context for reprocessing: pipeline stage, dataset, fault
        /// plan, last checkpoint offset.
        context_json: String,
    },
    /// Dead-letter entry `seq` was drained back into the attempt loop.
    DlqDrained {
        /// Sequence number of the drained entry.
        seq: u32,
    },
    /// The run completed; final headline numbers for quick inspection.
    JobFinished {
        /// Total duplicate pairs emitted.
        duplicates: u64,
        /// Total virtual cost of the run.
        total_cost: f64,
    },
}

const TAG_JOB_STARTED: u8 = 1;
const TAG_JOB1_FINISHED: u8 = 2;
const TAG_SCHEDULE: u8 = 3;
const TAG_TASK_FINISHED: u8 = 4;
const TAG_TASK_EXHAUSTED: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_COUNTERS: u8 = 7;
const TAG_DEAD_LETTERED: u8 = 8;
const TAG_DLQ_DRAINED: u8 = 9;
const TAG_JOB_FINISHED: u8 = 10;

impl JournalEvent {
    /// Short name of the variant, for listings and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            JournalEvent::JobStarted { .. } => "job-started",
            JournalEvent::Job1Finished { .. } => "job1-finished",
            JournalEvent::ScheduleGenerated { .. } => "schedule-generated",
            JournalEvent::TaskFinished { .. } => "task-finished",
            JournalEvent::TaskExhausted { .. } => "task-exhausted",
            JournalEvent::CheckpointCut { .. } => "checkpoint-cut",
            JournalEvent::CountersSnapshot { .. } => "counters-snapshot",
            JournalEvent::DeadLettered { .. } => "dead-lettered",
            JournalEvent::DlqDrained { .. } => "dlq-drained",
            JournalEvent::JobFinished { .. } => "job-finished",
        }
    }

    /// Encode to the binary payload format (framed by [`crate::frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            JournalEvent::JobStarted { job_id, params } => {
                out.push(TAG_JOB_STARTED);
                put_str(&mut out, job_id);
                put_u32(&mut out, crate::frame::len_u32(params.len()));
                for (k, v) in params {
                    put_str(&mut out, k);
                    put_str(&mut out, v);
                }
            }
            JournalEvent::Job1Finished { virtual_cost } => {
                out.push(TAG_JOB1_FINISHED);
                put_f64(&mut out, *virtual_cost);
            }
            JournalEvent::ScheduleGenerated {
                num_tasks,
                total_blocks,
            } => {
                out.push(TAG_SCHEDULE);
                put_u32(&mut out, *num_tasks);
                put_u64(&mut out, *total_blocks);
            }
            JournalEvent::TaskFinished {
                job,
                kind,
                index,
                attempts,
                cost,
                wasted,
                failures,
            } => {
                out.push(TAG_TASK_FINISHED);
                put_str(&mut out, job);
                out.push(kind.code());
                put_u32(&mut out, *index);
                put_u32(&mut out, *attempts);
                put_f64(&mut out, *cost);
                put_f64(&mut out, *wasted);
                put_failures(&mut out, failures);
            }
            JournalEvent::TaskExhausted {
                job,
                kind,
                index,
                attempts,
                failures,
            } => {
                out.push(TAG_TASK_EXHAUSTED);
                put_str(&mut out, job);
                out.push(kind.code());
                put_u32(&mut out, *index);
                put_u32(&mut out, *attempts);
                put_failures(&mut out, failures);
            }
            JournalEvent::CheckpointCut { checkpoint_json } => {
                out.push(TAG_CHECKPOINT);
                put_str(&mut out, checkpoint_json);
            }
            JournalEvent::CountersSnapshot { entries } => {
                out.push(TAG_COUNTERS);
                put_u32(&mut out, crate::frame::len_u32(entries.len()));
                for (k, v) in entries {
                    put_str(&mut out, k);
                    put_u64(&mut out, *v);
                }
            }
            JournalEvent::DeadLettered {
                seq,
                job,
                kind,
                index,
                attempts,
                failures,
                context_json,
            } => {
                out.push(TAG_DEAD_LETTERED);
                put_u32(&mut out, *seq);
                put_str(&mut out, job);
                out.push(kind.code());
                put_u32(&mut out, *index);
                put_u32(&mut out, *attempts);
                put_failures(&mut out, failures);
                put_str(&mut out, context_json);
            }
            JournalEvent::DlqDrained { seq } => {
                out.push(TAG_DLQ_DRAINED);
                put_u32(&mut out, *seq);
            }
            JournalEvent::JobFinished {
                duplicates,
                total_cost,
            } => {
                out.push(TAG_JOB_FINISHED);
                put_u64(&mut out, *duplicates);
                put_f64(&mut out, *total_cost);
            }
        }
        out
    }

    /// Decode a payload produced by [`JournalEvent::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, JournalError> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let ev = match tag {
            TAG_JOB_STARTED => {
                let job_id = r.str()?;
                let n = r.ulen()?;
                let mut params = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let k = r.str()?;
                    let v = r.str()?;
                    params.push((k, v));
                }
                JournalEvent::JobStarted { job_id, params }
            }
            TAG_JOB1_FINISHED => JournalEvent::Job1Finished {
                virtual_cost: r.f64()?,
            },
            TAG_SCHEDULE => JournalEvent::ScheduleGenerated {
                num_tasks: r.u32()?,
                total_blocks: r.u64()?,
            },
            TAG_TASK_FINISHED => JournalEvent::TaskFinished {
                job: r.str()?,
                kind: TaskClass::from_code(r.u8()?)?,
                index: r.u32()?,
                attempts: r.u32()?,
                cost: r.f64()?,
                wasted: r.f64()?,
                failures: r.failures()?,
            },
            TAG_TASK_EXHAUSTED => JournalEvent::TaskExhausted {
                job: r.str()?,
                kind: TaskClass::from_code(r.u8()?)?,
                index: r.u32()?,
                attempts: r.u32()?,
                failures: r.failures()?,
            },
            TAG_CHECKPOINT => JournalEvent::CheckpointCut {
                checkpoint_json: r.str()?,
            },
            TAG_COUNTERS => {
                let n = r.ulen()?;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let k = r.str()?;
                    let v = r.u64()?;
                    entries.push((k, v));
                }
                JournalEvent::CountersSnapshot { entries }
            }
            TAG_DEAD_LETTERED => JournalEvent::DeadLettered {
                seq: r.u32()?,
                job: r.str()?,
                kind: TaskClass::from_code(r.u8()?)?,
                index: r.u32()?,
                attempts: r.u32()?,
                failures: r.failures()?,
                context_json: r.str()?,
            },
            TAG_DLQ_DRAINED => JournalEvent::DlqDrained { seq: r.u32()? },
            TAG_JOB_FINISHED => JournalEvent::JobFinished {
                duplicates: r.u64()?,
                total_cost: r.f64()?,
            },
            other => {
                return Err(JournalError::BadEvent(format!("unknown event tag {other}")));
            }
        };
        if r.pos != bytes.len() {
            return Err(JournalError::BadEvent(format!(
                "{} trailing bytes after {} event",
                bytes.len() - r.pos,
                ev.name()
            )));
        }
        Ok(ev)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, crate::frame::len_u32(s.len()));
    out.extend_from_slice(s.as_bytes());
}

fn put_failures(out: &mut Vec<u8>, failures: &[AttemptFailure]) {
    put_u32(out, crate::frame::len_u32(failures.len()));
    for f in failures {
        put_u32(out, f.attempt);
        put_f64(out, f.wasted_cost);
        put_str(out, &f.error);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], JournalError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| JournalError::BadEvent("length overflow".into()))?;
        let Some(slice) = self.bytes.get(self.pos..end) else {
            return Err(JournalError::BadEvent(format!(
                "event truncated: wanted {n} bytes at {}, have {}",
                self.pos,
                self.bytes.len()
            )));
        };
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    /// A `u32` length field widened to `usize` for indexing; errors (rather
    /// than truncating) on the 16-bit targets where it cannot fit.
    fn ulen(&mut self) -> Result<usize, JournalError> {
        let n = self.u32()?;
        usize::try_from(n).map_err(|_| JournalError::BadEvent(format!("length {n} out of range")))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, JournalError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, JournalError> {
        let n = self.ulen()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| JournalError::BadEvent(format!("non-UTF-8 string: {e}")))
    }

    fn failures(&mut self) -> Result<Vec<AttemptFailure>, JournalError> {
        let n = self.ulen()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(AttemptFailure {
                attempt: self.u32()?,
                wasted_cost: self.f64()?,
                error: self.str()?,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<JournalEvent> {
        vec![
            JournalEvent::JobStarted {
                job_id: "job-7".into(),
                params: vec![("dataset".into(), "/tmp/ds.jsonl".into())],
            },
            JournalEvent::Job1Finished {
                virtual_cost: 1234.567,
            },
            JournalEvent::ScheduleGenerated {
                num_tasks: 4,
                total_blocks: 99,
            },
            JournalEvent::TaskFinished {
                job: "pper-job2-resolution".into(),
                kind: TaskClass::Reduce,
                index: 1,
                attempts: 3,
                cost: 500.25,
                wasted: 100.0,
                failures: vec![AttemptFailure {
                    attempt: 1,
                    wasted_cost: 50.0,
                    error: "injected crash".into(),
                }],
            },
            JournalEvent::DeadLettered {
                seq: 0,
                job: "j".into(),
                kind: TaskClass::Map,
                index: 0,
                attempts: 4,
                failures: vec![],
                context_json: "{}".into(),
            },
            JournalEvent::JobFinished {
                duplicates: 42,
                total_cost: f64::MAX,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for ev in samples() {
            let bytes = ev.encode();
            let back = JournalEvent::decode(&bytes).unwrap();
            assert_eq!(back, ev, "round trip of {}", ev.name());
        }
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for cost in [0.0, -0.0, 0.1 + 0.2, f64::INFINITY, 1e-308] {
            let ev = JournalEvent::Job1Finished { virtual_cost: cost };
            let JournalEvent::Job1Finished { virtual_cost } =
                JournalEvent::decode(&ev.encode()).unwrap()
            else {
                panic!("wrong variant");
            };
            assert_eq!(virtual_cost.to_bits(), cost.to_bits());
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_error() {
        let bytes = samples()[3].encode();
        for cut in 0..bytes.len() {
            assert!(
                JournalEvent::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(JournalEvent::decode(&extended).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(matches!(
            JournalEvent::decode(&[200]),
            Err(JournalError::BadEvent(_))
        ));
        assert!(JournalEvent::decode(&[]).is_err());
    }
}
