//! Record framing: magic header + `[u32 len][u32 crc32][payload]` records.
//!
//! The layout is the classic write-ahead-log frame: a fixed 8-byte header
//! identifying the file and format version, then zero or more records, each
//! a little-endian payload length, a CRC-32 (IEEE) of the payload, and the
//! payload bytes. A crashed writer can leave at most one torn record at the
//! tail; recovery walks records from the front and stops at the first frame
//! whose length runs past the buffer or whose checksum fails, returning the
//! longest valid prefix plus a report of what (if anything) was dropped.
//! Nothing in this module panics on malformed input.

/// File magic + format version ("PPERJNL" + version 1).
pub const MAGIC: [u8; 8] = *b"PPERJNL\x01";

/// Per-record framing overhead: 4-byte length + 4-byte CRC.
pub const FRAME_HEADER: usize = 8;

/// Largest payload a single frame may carry (a corrupt length field must
/// not make recovery attempt a multi-gigabyte slice).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// `usize` length → the `u32` wire field. Every caller frames payloads
/// bounded far below `u32::MAX` (see [`MAX_PAYLOAD`]); debug builds assert
/// the invariant so a future over-long payload trips loudly instead of
/// truncating silently.
pub(crate) fn len_u32(len: usize) -> u32 {
    debug_assert!(
        u32::try_from(len).is_ok(),
        "payload length {len} overflows the u32 wire field"
    );
    // lint:allow(lossy_cast) asserted in range above; payloads are capped at MAX_PAYLOAD
    len as u32
}

/// `usize` byte position → `u64` durable offset: a widening on every
/// supported target (`usize` is at most 64 bits here).
pub(crate) fn off_u64(pos: usize) -> u64 {
    // lint:allow(lossy_cast) usize -> u64 is a lossless widening on all supported targets
    pos as u64
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint:allow(lossy_cast) const context (try_from unavailable); i < 256 fits u32
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = usize::from((crc ^ u32::from(b)).to_le_bytes()[0]);
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// Append one framed record for `payload` to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&len_u32(payload.len()).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// What recovery found beyond the valid prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Byte length of the valid prefix (header + whole valid records).
    pub valid_bytes: u64,
    /// Bytes discarded past the valid prefix (torn tail or corruption).
    pub dropped_bytes: u64,
    /// A frame header or payload was cut short — the classic torn tail a
    /// killed writer leaves behind.
    pub torn_tail: bool,
    /// A complete frame's checksum did not match its payload (bit rot or
    /// an overwritten region); everything from it on is dropped.
    pub corrupt: bool,
}

impl RecoveryReport {
    /// True when the whole buffer parsed cleanly.
    pub fn clean(&self) -> bool {
        !self.torn_tail && !self.corrupt
    }
}

/// `(byte offset of the frame header, payload)` records plus how parsing
/// ended, as returned by [`read_frames`].
pub type ParsedFrames<'a> = (Vec<(u64, &'a [u8])>, RecoveryReport);

/// Parse a journal byte stream into `(byte offset, payload)` records.
///
/// The offset is the position of the record's frame header within the
/// stream, usable with [`read_frame_at`]. Returns an error only when the
/// header itself is missing or unrecognized — a valid header followed by
/// garbage yields the longest valid (possibly empty) record prefix.
pub fn read_frames(bytes: &[u8]) -> Result<ParsedFrames<'_>, crate::JournalError> {
    if bytes.len() < MAGIC.len() {
        return Err(crate::JournalError::BadHeader(format!(
            "{} bytes is shorter than the {}-byte magic",
            bytes.len(),
            MAGIC.len()
        )));
    }
    let Some(header) = bytes.get(..MAGIC.len()) else {
        return Err(crate::JournalError::BadHeader("unreadable header".into()));
    };
    if header != MAGIC {
        return Err(crate::JournalError::BadHeader(format!(
            "magic mismatch: expected {MAGIC:02x?}, found {header:02x?}"
        )));
    }
    let mut records = Vec::new();
    let mut report = RecoveryReport::default();
    let mut pos = MAGIC.len();
    loop {
        if pos == bytes.len() {
            break; // clean end exactly on a record boundary
        }
        match frame_at(bytes, pos) {
            FrameParse::Ok { payload, next } => {
                records.push((off_u64(pos), payload));
                pos = next;
            }
            FrameParse::Torn => {
                report.torn_tail = true;
                break;
            }
            FrameParse::Corrupt => {
                report.corrupt = true;
                break;
            }
        }
    }
    report.valid_bytes = off_u64(pos);
    report.dropped_bytes = off_u64(bytes.len() - pos);
    Ok((records, report))
}

/// Read the single frame starting at byte `offset` of the stream.
///
/// Used to dereference durable pointers (e.g. "the checkpoint lives at
/// journal offset N") without re-parsing the whole log.
pub fn read_frame_at(bytes: &[u8], offset: u64) -> Result<&[u8], crate::JournalError> {
    let pos = usize::try_from(offset)
        .map_err(|_| crate::JournalError::BadState(format!("offset {offset} out of range")))?;
    if pos < MAGIC.len() {
        return Err(crate::JournalError::BadState(format!(
            "offset {offset} points inside the journal header"
        )));
    }
    match frame_at(bytes, pos) {
        FrameParse::Ok { payload, .. } => Ok(payload),
        FrameParse::Torn => Err(crate::JournalError::BadState(format!(
            "no complete record at offset {offset}"
        ))),
        FrameParse::Corrupt => Err(crate::JournalError::BadState(format!(
            "record at offset {offset} fails its checksum"
        ))),
    }
}

enum FrameParse<'a> {
    Ok { payload: &'a [u8], next: usize },
    Torn,
    Corrupt,
}

fn frame_at(bytes: &[u8], pos: usize) -> FrameParse<'_> {
    let Some(header) = bytes.get(pos..pos + FRAME_HEADER) else {
        return FrameParse::Torn;
    };
    let mut len_b = [0u8; 4];
    let mut crc_b = [0u8; 4];
    len_b.copy_from_slice(&header[..4]);
    crc_b.copy_from_slice(&header[4..]);
    let Ok(len) = usize::try_from(u32::from_le_bytes(len_b)) else {
        return FrameParse::Corrupt;
    };
    if len > MAX_PAYLOAD {
        // An absurd length is corruption, not a torn tail: a real record
        // could never have been written this large.
        return FrameParse::Corrupt;
    }
    let start = pos + FRAME_HEADER;
    let Some(payload) = bytes.get(start..start + len) else {
        return FrameParse::Torn;
    };
    if crc32(payload) != u32::from_le_bytes(crc_b) {
        return FrameParse::Corrupt;
    }
    FrameParse::Ok {
        payload,
        next: start + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = MAGIC.to_vec();
        for p in payloads {
            write_frame(&mut out, p);
        }
        out
    }

    #[test]
    fn crc_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_multiple_frames() {
        let s = stream(&[b"alpha", b"", b"gamma-longer-payload"]);
        let (records, report) = read_frames(&s).unwrap();
        assert!(report.clean());
        assert_eq!(report.valid_bytes, s.len() as u64);
        let payloads: Vec<&[u8]> = records.iter().map(|&(_, p)| p).collect();
        assert_eq!(
            payloads,
            vec![&b"alpha"[..], &b""[..], &b"gamma-longer-payload"[..]]
        );
        // Offsets dereference back to the same payloads.
        for &(off, p) in &records {
            assert_eq!(read_frame_at(&s, off).unwrap(), p);
        }
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let full = stream(&[b"one", b"two"]);
        for cut in MAGIC.len()..full.len() - 1 {
            let (records, report) = read_frames(&full[..cut]).unwrap();
            assert!(records.len() <= 2);
            assert!(!report.corrupt);
            if cut < MAGIC.len() + FRAME_HEADER + 3 {
                assert!(records.is_empty());
            }
            // Every surviving record is intact.
            for &(_, p) in &records {
                assert!(p == b"one" || p == b"two");
            }
        }
    }

    #[test]
    fn corrupt_checksum_drops_suffix() {
        let mut s = stream(&[b"first", b"second"]);
        let flip = MAGIC.len() + FRAME_HEADER; // first byte of "first"
        s[flip] ^= 0xFF;
        let (records, report) = read_frames(&s).unwrap();
        assert!(records.is_empty());
        assert!(report.corrupt);
        assert_eq!(report.valid_bytes, MAGIC.len() as u64);
        assert_eq!(report.dropped_bytes, (s.len() - MAGIC.len()) as u64);
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut s = stream(&[b"x"]);
        s[0] = b'Z';
        assert!(matches!(
            read_frames(&s),
            Err(crate::JournalError::BadHeader(_))
        ));
        assert!(matches!(
            read_frames(b"PP"),
            Err(crate::JournalError::BadHeader(_))
        ));
    }

    #[test]
    fn absurd_length_is_corruption_not_torn() {
        let mut s = MAGIC.to_vec();
        s.extend_from_slice(&u32::MAX.to_le_bytes());
        s.extend_from_slice(&0u32.to_le_bytes());
        let (records, report) = read_frames(&s).unwrap();
        assert!(records.is_empty());
        assert!(report.corrupt && !report.torn_tail);
    }

    #[test]
    fn read_frame_at_rejects_header_offsets() {
        let s = stream(&[b"x"]);
        assert!(read_frame_at(&s, 0).is_err());
        assert!(read_frame_at(&s, s.len() as u64).is_err());
    }
}
