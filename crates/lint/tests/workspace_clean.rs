//! The linter's strongest test is the workspace itself: `cargo test` fails
//! the moment anyone introduces an unsuppressed hash-order iteration,
//! wall-clock read, bare `Ordering::Relaxed`, hot-path panic, bypassed VFS
//! seam, unjustified `unsafe`, or truncating codec cast — including sinks
//! that only matter because the call graph makes them *reachable* from a
//! deterministic entry point. Dead `lint:allow` annotations fail too, so
//! suppressions cannot outlive the code they excused. No CI wiring
//! required.

use std::path::{Path, PathBuf};

use pper_lint::{analyze_tree, Options};

#[test]
fn workspace_has_no_unsuppressed_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let roots: Vec<PathBuf> = ["crates", "src"]
        .iter()
        .map(|d| root.join(d))
        .filter(|p| p.is_dir())
        .collect();
    assert!(
        !roots.is_empty(),
        "no source roots under {}",
        root.display()
    );
    let diags = analyze_tree(
        &roots,
        &Options {
            reachability: true,
            check_allows: true,
        },
    );
    assert!(
        diags.is_empty(),
        "pper-lint found {} unsuppressed diagnostic(s) in the workspace \
         (fix the site or add a justified `// lint:allow(<rule>) <reason>`):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
