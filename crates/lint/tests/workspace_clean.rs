//! The linter's strongest test is the workspace itself: `cargo test` fails
//! the moment anyone introduces an unsuppressed hash-order iteration,
//! wall-clock read, bare `Ordering::Relaxed`, or hot-path panic — no CI
//! wiring required.

use std::path::Path;

use pper_lint::lint_tree;

#[test]
fn workspace_has_no_unsuppressed_diagnostics() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let diags = lint_tree(&[crates]);
    assert!(
        diags.is_empty(),
        "pper-lint found {} unsuppressed diagnostic(s) in the workspace \
         (fix the site or add a justified `// lint:allow(<rule>) <reason>`):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
