//@ path: crates/vfs/src/fixture.rs
//! U1 `safety_comment` negatives: every unsafe construct carries a
//! `// SAFETY:` justification, so the file is clean.

struct Wrapper(*mut u8);

// SAFETY: the caller guarantees `p` is valid for reads (fixture contract).
unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}

fn caller(p: *const u8) -> u8 {
    // SAFETY: `p` comes straight from the caller's contract above.
    unsafe { raw_read(p) }
}

// SAFETY: the raw pointer is only dereferenced behind &mut self (fixture).
unsafe impl Send for Wrapper {}
