//@ path: crates/journal/src/fixture.rs
//! C1 `lossy_cast` negatives: checked conversions and audited allows are
//! both clean.

fn encode(payload: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
    let len = u32::try_from(payload.len()).map_err(|_| "payload too long".to_string())?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

fn bucket(word: u64) -> usize {
    // lint:allow(lossy_cast) fixture: masked to 8 bits right here, cannot truncate
    (word & 0xFF) as usize
}
