//@ path: crates/mapreduce/src/driver.rs
//! D4 `panic_path` negatives: an annotated invariant passes, and the same
//! operations are always fine outside the hot-path file set (covered by the
//! scoping tests in `rules.rs`).

fn lookup(table: &[Option<usize>]) -> usize {
    // lint:allow(panic_path) fixture: slot occupancy proven by construction.
    let hit = table.first().and_then(|s| *s).expect("slot populated");
    hit
}
