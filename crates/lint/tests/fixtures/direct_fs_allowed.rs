//@ path: crates/journal/src/store.rs
//! D5 `direct_fs` negatives: justified escapes and test code stay silent.

fn disk_free_hint(path: &str) -> bool {
    // lint:allow(direct_fs) one-shot startup probe; never on the recovery path
    std::fs::metadata(path).is_ok()
}

fn through_the_seam(vfs: &dyn Vfs, path: &Path) -> Result<Vec<u8>, IoFault> {
    vfs.read(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn setup_uses_real_fs() {
        std::fs::create_dir_all("/tmp/x").unwrap();
    }
}
