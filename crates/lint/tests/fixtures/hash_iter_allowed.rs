//@ path: crates/mapreduce/src/fixture.rs
//! D1 `hash_iter` negatives: annotated iterations, order-insensitive sinks,
//! and ordered re-collections are all clean.
use std::collections::{BTreeMap, HashMap};

fn summarize(counts: HashMap<String, u64>) -> (u64, usize, Vec<(String, u64)>) {
    // Order-insensitive sink: a commutative fold over the values.
    let total: u64 = counts.values().sum();
    // Order-insensitive sink: counting ignores traversal order.
    let distinct = counts.keys().count();
    // Re-collection into an ordered container launders the hash order.
    let ordered: BTreeMap<String, u64> = counts.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let pairs: Vec<(String, u64)> = ordered.into_iter().collect();
    (total, distinct, pairs)
}

fn annotated(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    // lint:allow(hash_iter) fixture: order discarded by the sort below.
    for (k, _) in counts.iter() {
        out.push(k.clone());
    }
    out.sort();
    out
}
