//@ path: crates/mapreduce/src/fixture.rs
//! D2 `wall_clock` positives: real-time reads and ambient randomness on a
//! virtual-time code path.
use std::time::{Instant, SystemTime};

fn stamp() -> (Instant, u128, u64) {
    let t = Instant::now();
    let epoch = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let r = rand::thread_rng().next_u64();
    (t, epoch, r)
}
