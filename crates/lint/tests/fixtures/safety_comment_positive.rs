//@ path: crates/vfs/src/fixture.rs
//! U1 `safety_comment` positives: unsafe blocks, fns, and impls without a
//! `// SAFETY:` justification must be reported.

struct Wrapper(*mut u8);

unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}

fn caller(p: *const u8) -> u8 {
    unsafe { raw_read(p) }
}

unsafe impl Send for Wrapper {}
