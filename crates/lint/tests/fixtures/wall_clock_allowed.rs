//@ path: crates/mapreduce/src/cost.rs
//! D2 `wall_clock` negatives: `cost.rs` is an approved module (it owns the
//! virtual clock and may anchor it), and explicit annotations also pass.
use std::time::Instant;

fn anchor() -> Instant {
    Instant::now()
}

fn annotated_elapsed(start: Instant) -> f64 {
    // lint:allow(wall_clock) fixture: informational timing only.
    let end = Instant::now();
    end.duration_since(start).as_secs_f64()
}
