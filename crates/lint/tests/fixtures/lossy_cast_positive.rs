//@ path: crates/journal/src/fixture.rs
//! C1 `lossy_cast` positives: integer `as` casts in codec/framing code can
//! silently truncate; each one must be reported.

fn encode(payload: &[u8], out: &mut Vec<u8>) {
    let len = payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
}

fn decode_len(word: u64) -> usize {
    word as usize
}
