//@ path: crates/mapreduce/src/fixture.rs
//! D3 `relaxed` positives: every non-`SeqCst` ordering (`Relaxed`,
//! `Acquire`, `Release`, `AcqRel`) without a written safety argument is
//! reported, wherever it appears.
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tick() -> usize {
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

fn read() -> usize {
    COUNTER.load(Ordering::Relaxed)
}

fn handoff(flag: &AtomicUsize) -> usize {
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}
