//@ path: crates/mapreduce/src/fixture.rs
//! D3 `relaxed` positives: every `Ordering::Relaxed` without a written
//! safety argument is reported, wherever it appears.
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tick() -> usize {
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

fn read() -> usize {
    COUNTER.load(Ordering::Relaxed)
}
