//@ path: crates/simil/src/batch.rs
//! D1 multi-hop sink: `simil` is outside the legacy hash_iter crates, so
//! only the call-graph analysis can connect this to reducer output.
use std::collections::HashMap;

pub fn score_all() {
    tally();
}

fn tally() {
    let m: HashMap<String, u64> = HashMap::new();
    for k in m.keys() {
        emit(k);
    }
}
