//@ path: crates/er-core/src/job.rs
//! D1 multi-hop entry: a Reducer body two calls above a hash-order
//! iteration that legacy scoping never sees (the sink lives in `simil`).
use pper_simil::score_all;

struct Dedup;

impl Reducer for Dedup {
    fn reduce(&self) {
        score_all();
    }
}
