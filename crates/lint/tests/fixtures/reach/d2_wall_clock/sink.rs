//@ path: crates/mapreduce/src/cost.rs
//! D2 multi-hop sink: `cost.rs` is exempt from the legacy wall_clock
//! scope, so only reachability from the shuffle builder reports it.
use std::time::Instant;

pub fn estimate() {
    probe();
}

fn probe() {
    let _t = Instant::now();
}
