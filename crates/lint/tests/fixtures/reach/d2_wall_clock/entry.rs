//@ path: crates/mapreduce/src/shuffle.rs
//! D2 multi-hop entry: a shuffle builder (deterministic entry point) two
//! calls above a wall-clock read in the legacy-exempt `cost.rs`.
use crate::cost::estimate;

pub fn shuffle_partitions() {
    estimate();
}
