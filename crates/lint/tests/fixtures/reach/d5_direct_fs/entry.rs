//@ path: crates/schedule/src/exec.rs
//! D5 multi-hop entry: an Executor body two calls above a direct `std::fs`
//! write in a crate the legacy VFS scope never covered.
struct Local;

impl Executor for Local {
    fn run(&self) {
        persist();
    }
}
