//@ path: crates/schedule/src/snapshot.rs
//! D5 multi-hop sink: `schedule` is outside the legacy direct_fs scope,
//! so only reachability from the executor reports the bypassed VFS seam.
pub fn persist() {
    dump();
}

fn dump() {
    std::fs::write("plan.json", b"{}").ok();
}
