//@ path: crates/mapreduce/src/runtime.rs
//! D3 multi-hop entry: an Executor body two calls above a relaxed atomic.
//! Legacy scoping flags the sink too, but only the call-graph analysis
//! names the entry point in the diagnostic.
struct Pool;

impl Executor for Pool {
    fn run(&self) {
        drain();
    }
}
