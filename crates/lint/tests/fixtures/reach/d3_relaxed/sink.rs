//@ path: crates/mapreduce/src/queue.rs
//! D3 multi-hop sink: the relaxed ordering is two calls below the
//! executor; the chain in the message is what changes under v2.
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn drain() {
    bump();
}

fn bump() {
    COUNTER.fetch_add(1, Ordering::Relaxed);
}
