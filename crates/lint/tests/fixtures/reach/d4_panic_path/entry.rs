//@ path: crates/er-core/src/tasks.rs
//! D4 multi-hop entry: a Mapper body two calls above an unwrap in a file
//! the legacy hot-path list never covered.
struct Tok;

impl Mapper for Tok {
    fn map(&self) {
        normalize();
    }
}
