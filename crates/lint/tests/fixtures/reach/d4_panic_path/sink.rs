//@ path: crates/er-core/src/norm.rs
//! D4 multi-hop sink: `er-core` is outside the legacy panic_path scope,
//! so only reachability from the mapper reports this unwrap.
pub fn normalize() {
    strip();
}

fn strip() {
    let _v = parts().first().unwrap();
}
