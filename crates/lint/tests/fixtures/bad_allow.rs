//@ path: crates/mapreduce/src/fixture.rs
//! Annotation validation: unknown rule names and missing reasons are
//! themselves diagnostics, so stale or lazy allows cannot accumulate.
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tick() -> usize {
    // lint:allow(hash_itr) typo in the rule name
    // lint:allow(relaxed)
    COUNTER.fetch_add(1, Ordering::Relaxed)
}
