//@ path: crates/mapreduce/src/fixture.rs
//! D3 `relaxed` negatives: a justified non-`SeqCst` ordering passes, and
//! `SeqCst` itself was never in scope.
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tick() -> usize {
    // lint:allow(relaxed) fixture: ticket dispenser, RMW atomicity suffices.
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

fn read() -> usize {
    COUNTER.load(Ordering::SeqCst)
}

fn publish(flag: &AtomicUsize) {
    // lint:allow(relaxed) fixture: pairs with the Acquire load below.
    flag.store(1, Ordering::Release);
}

fn consume(flag: &AtomicUsize) -> usize {
    // lint:allow(relaxed) fixture: pairs with the Release store above.
    flag.load(Ordering::Acquire)
}
