//@ path: crates/mapreduce/src/fixture.rs
//! D3 `relaxed` negatives: a justified `Ordering::Relaxed` passes, and
//! stronger orderings were never in scope.
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tick() -> usize {
    // lint:allow(relaxed) fixture: ticket dispenser, RMW atomicity suffices.
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

fn read() -> usize {
    COUNTER.load(Ordering::SeqCst)
}
