//@ path: crates/mapreduce/src/fixture.rs
//! D1 `hash_iter` positives: every unordered traversal of a hash container
//! in a determinism-critical crate must be reported.
use std::collections::{HashMap, HashSet};

struct Shard {
    routes: HashMap<u64, usize>,
}

fn emit_all(counts: HashMap<String, u64>, seen: HashSet<u64>, shard: &Shard) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in counts.iter() {
        out.push(format!("{k}={v}"));
    }
    for id in &seen {
        out.push(id.to_string());
    }
    for (_, p) in shard.routes.iter() {
        out.push(p.to_string());
    }
    let keys: Vec<&String> = counts.keys().collect();
    out.push(keys.len().to_string());
    out
}
