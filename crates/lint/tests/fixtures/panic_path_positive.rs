//@ path: crates/mapreduce/src/driver.rs
//! D4 `panic_path` positives: unwrap/expect/panic! in a runtime hot-path
//! file (`driver.rs` here) must be reported.

fn lookup(table: &[Option<usize>], key: usize) -> usize {
    let first = table.first().unwrap();
    let hit = first.expect("slot populated");
    if hit != key {
        panic!("route mismatch");
    }
    hit
}
