//@ path: crates/store/src/lib.rs
//! D5 `direct_fs` positives: direct filesystem access in an out-of-core
//! crate must be reported — it bypasses the fault-injectable VFS seam.

use std::fs;

fn load(path: &str) -> Vec<u8> {
    let bytes = fs::read(path).unwrap_or_default();
    let _probe = File::open(path);
    let _opts = OpenOptions::new();
    std::fs::remove_file(path).ok();
    bytes
}
