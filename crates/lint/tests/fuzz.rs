//! Fuzz properties for the linter front end: whatever bytes the lexer,
//! parser, and whole-workspace analysis are fed — arbitrary garbage or
//! mutated copies of the linter's own sources — they must return
//! diagnostics, never panic. A panic here would turn a malformed source
//! file into a broken CI gate instead of a report.

use pper_lint::{analyze, lint_source, Options, SourceFile};
use proptest::collection::vec;
use proptest::prelude::*;

/// Paths that exercise every scoping branch: legacy-rule crates, exempt
/// files, the VFS seam, and codec/framing files.
const SCOPES: [&str; 6] = [
    "crates/mapreduce/src/runtime.rs",
    "crates/journal/src/frame.rs",
    "crates/store/src/lib.rs",
    "crates/vfs/src/file.rs",
    "crates/simil/src/batch.rs",
    "crates/er-core/tests/it.rs",
];

/// Run every analysis depth over one in-memory workspace.
fn exercise(files: Vec<SourceFile>) {
    for f in &files {
        lint_source(&f.path, &f.src);
    }
    analyze(&files, &Options::default());
    analyze(
        &files,
        &Options {
            reachability: false,
            check_allows: true,
        },
    );
}

/// Real workspace material to mutate: the linter's own sources, which use
/// every construct the parser knows about.
fn corpus() -> Vec<&'static str> {
    vec![
        include_str!("../src/rules.rs"),
        include_str!("../src/parser.rs"),
        include_str!("../src/taint.rs"),
        include_str!("../src/analysis.rs"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in vec(0u8..=255, 0..768),
        scope_a in 0usize..6,
        scope_b in 0usize..6,
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let files = vec![
            SourceFile { path: SCOPES[scope_a].to_string(), src: src.clone() },
            SourceFile { path: SCOPES[scope_b].to_string(), src },
        ];
        exercise(files);
    }

    #[test]
    fn mutated_workspace_sources_never_panic(
        pick in 0usize..4,
        cut in 0usize..60_000,
        splice in vec(0u8..=255, 0..64),
        at in 0usize..60_000,
    ) {
        let base = corpus()[pick];
        // Truncate at an arbitrary char boundary, then splice raw bytes in
        // (lossily re-decoded): torn files and junk edits, the two ways a
        // source tree goes bad mid-write.
        let cut = base
            .char_indices()
            .map(|(i, _)| i)
            .take_while(|&i| i <= cut)
            .last()
            .unwrap_or(0);
        let mut bytes = base.as_bytes()[..cut].to_vec();
        let at = at.min(bytes.len());
        bytes.splice(at..at, splice);
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let files = vec![
            SourceFile { path: "crates/mapreduce/src/exec.rs".to_string(), src: src.clone() },
            SourceFile { path: "crates/simil/src/mutated.rs".to_string(), src },
        ];
        exercise(files);
    }
}
