//! Golden-file tests for the linter: every fixture under `tests/fixtures/`
//! is linted as if it lived at the path named by its `//@ path:` header, and
//! the rendered diagnostics must match the sibling `.expected` file exactly
//! (empty `.expected` = the fixture must be clean).
//!
//! Regenerate the goldens after an intentional rule change with:
//!
//! ```text
//! UPDATE_EXPECT=1 cargo test -p pper-lint --test ui_fixtures
//! ```

use std::path::{Path, PathBuf};

use pper_lint::{analyze, lint_source, Options, SourceFile};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// The `//@ path:` header names the synthetic workspace path the fixture is
/// linted under — that path, not the fixture's real location, decides which
/// rules are in scope.
fn synthetic_path(fixture: &Path, src: &str) -> String {
    let header = src.lines().next().unwrap_or_default();
    let path = header
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{} must start with `//@ path: <path>`", fixture.display()));
    path.trim().to_string()
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = fixture_dir();
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory")
        .map(|e| e.expect("fixture entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        !fixtures.is_empty(),
        "no fixtures found in {}",
        dir.display()
    );

    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    let mut failures = Vec::new();
    for fixture in &fixtures {
        let src = std::fs::read_to_string(fixture).expect("read fixture");
        let path = synthetic_path(fixture, &src);
        let rendered: String = lint_source(&path, &src)
            .iter()
            .map(|d| format!("{}\n", d.render()))
            .collect();
        let expected_path = fixture.with_extension("expected");
        if update {
            std::fs::write(&expected_path, &rendered).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing golden file {} (run with UPDATE_EXPECT=1 to create it)",
                expected_path.display()
            )
        });
        if rendered != expected {
            failures.push(format!(
                "== {} ==\n-- expected --\n{expected}-- got --\n{rendered}",
                fixture.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fixture diagnostics diverged from goldens \
         (UPDATE_EXPECT=1 re-blesses):\n{}",
        failures.join("\n")
    );
}

/// Multi-file fixtures under `fixtures/reach/<case>/`: each case is a mini
/// workspace (every `.rs` carries its own `//@ path:` header) run through
/// the call-graph analysis. The golden `<case>/expected.txt` must match the
/// full analysis — and, the point of the exercise, the legacy single-file
/// scoping must produce a *different* (weaker) report for every case, with
/// at least one case whose sink legacy scoping misses entirely.
#[test]
fn reach_fixtures_match_and_legacy_provably_misses() {
    let dir = fixture_dir().join("reach");
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("reach fixtures directory")
        .map(|e| e.expect("case entry").path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no cases found in {}", dir.display());

    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    let mut failures = Vec::new();
    let mut provably_missed = 0usize;
    for case in &cases {
        let mut fixtures: Vec<PathBuf> = std::fs::read_dir(case)
            .expect("case directory")
            .map(|e| e.expect("case file").path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        fixtures.sort();
        let files: Vec<SourceFile> = fixtures
            .iter()
            .map(|f| {
                let src = std::fs::read_to_string(f).expect("read fixture");
                let path = synthetic_path(f, &src);
                SourceFile { path, src }
            })
            .collect();

        let full = analyze(&files, &Options::default());
        let legacy = analyze(
            &files,
            &Options {
                reachability: false,
                ..Options::default()
            },
        );
        let rendered: String = full.iter().map(|d| format!("{}\n", d.render())).collect();

        // Every case exists to demonstrate a multi-hop chain, so the full
        // analysis must name an entry point at least once.
        assert!(
            rendered.contains("reachable from deterministic entry via"),
            "{}: no call chain in the report:\n{rendered}",
            case.display()
        );
        // The legacy report must be strictly weaker: either it misses the
        // sink outright (counted below) or it lacks the chain.
        let legacy_rendered: String = legacy.iter().map(|d| format!("{}\n", d.render())).collect();
        assert_ne!(
            rendered,
            legacy_rendered,
            "{}: legacy scoping already reports everything",
            case.display()
        );
        if full.iter().any(|d| {
            !legacy
                .iter()
                .any(|l| (&l.file, l.line, &l.rule) == (&d.file, d.line, &d.rule))
        }) {
            provably_missed += 1;
        }

        let expected_path = case.join("expected.txt");
        if update {
            std::fs::write(&expected_path, &rendered).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing golden file {} (run with UPDATE_EXPECT=1 to create it)",
                expected_path.display()
            )
        });
        if rendered != expected {
            failures.push(format!(
                "== {} ==\n-- expected --\n{expected}-- got --\n{rendered}",
                case.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "reach fixtures diverged from goldens (UPDATE_EXPECT=1 re-blesses):\n{}",
        failures.join("\n")
    );
    assert!(
        provably_missed >= 4,
        "expected the D1/D2/D4/D5 sinks to be invisible to legacy scoping, \
         got only {provably_missed} such cases"
    );
}

/// Each of the four rules must have at least one positive fixture (golden
/// contains its id) and one negative fixture (an `*_allowed.rs` whose golden
/// is empty), so a rule can't silently stop firing.
#[test]
fn every_rule_has_positive_and_negative_coverage() {
    let dir = fixture_dir();
    for rule in pper_lint::RULE_IDS {
        let positive = dir.join(format!("{rule}_positive.expected"));
        let golden = std::fs::read_to_string(&positive)
            .unwrap_or_else(|_| panic!("missing positive golden {}", positive.display()));
        assert!(
            golden.contains(&format!("[{rule}]")),
            "{} does not actually report {rule}",
            positive.display()
        );
        let negative = dir.join(format!("{rule}_allowed.expected"));
        let golden = std::fs::read_to_string(&negative)
            .unwrap_or_else(|_| panic!("missing negative golden {}", negative.display()));
        assert_eq!(
            golden,
            "",
            "{} must be clean: the allow grammar failed to suppress",
            negative.display()
        );
    }
}
