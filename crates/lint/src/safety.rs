//! Rule U1 (`safety_comment`): every `unsafe` block, fn, or impl must
//! carry a `// SAFETY:` justification.
//!
//! The workspace holds its unsafety to a handful of audited sites (the
//! mmap view in `pper-vfs`, counting allocators in the benches); U1 keeps
//! that audit honest by requiring the safety argument to live next to the
//! code — on the same line or in the contiguous comment block directly
//! above (attribute lines like `#[cfg(…)]` between the comment and the
//! `unsafe` keyword are tolerated).

use crate::lexer::{LexedFile, Token};
use crate::parser::{is_ident, is_punct};
use crate::rules::Diagnostic;

/// What the `unsafe` keyword introduces, for the diagnostic text.
fn unsafe_kind(tokens: &[Token], i: usize) -> &'static str {
    match tokens.get(i + 1) {
        Some(t) if is_ident(t, "fn") => "`unsafe fn`",
        Some(t) if is_ident(t, "impl") => "`unsafe impl`",
        Some(t) if is_ident(t, "trait") => "`unsafe trait`",
        Some(t) if is_punct(t, '{') => "`unsafe` block",
        _ => "`unsafe`",
    }
}

/// Walk back from token `i` over any `#[…]` attribute groups, returning
/// the line the SAFETY comment must cover (the first attribute's line, or
/// the `unsafe` token's own line when no attributes precede it).
fn anchor_line(tokens: &[Token], i: usize) -> usize {
    let mut k = i;
    while let Some(prev) = k.checked_sub(1) {
        if !is_punct(&tokens[prev], ']') {
            break;
        }
        // Find the matching `[`, then require a `#` before it.
        let mut depth = 0i32;
        let mut j = prev;
        loop {
            if is_punct(&tokens[j], ']') {
                depth += 1;
            } else if is_punct(&tokens[j], '[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            let Some(next) = j.checked_sub(1) else {
                return tokens[k].line;
            };
            j = next;
        }
        let Some(hash) = j.checked_sub(1) else {
            break;
        };
        if !is_punct(&tokens[hash], '#') {
            break;
        }
        k = hash;
    }
    tokens.get(k).map_or(0, |t| t.line)
}

pub(crate) fn rule_safety_comment(
    path: &str,
    tokens: &[Token],
    mask: &[bool],
    lexed: &LexedFile,
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !is_ident(&tokens[i], "unsafe") {
            continue;
        }
        // `unsafe` inside a fn-pointer type (`unsafe fn(…)` with no name)
        // declares no new unsafety of its own; still cheap to require the
        // comment only for real items/blocks.
        let kind = unsafe_kind(tokens, i);
        if kind == "`unsafe`" {
            continue;
        }
        if kind == "`unsafe fn`" {
            // Distinguish `unsafe fn name(` (item — audit it) from the
            // `unsafe fn(…)` pointer type (no name — skip).
            let named = tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == crate::lexer::TokenKind::Ident);
            if !named {
                continue;
            }
        }
        let anchor = anchor_line(tokens, i);
        if lexed.safety_covering(anchor) || lexed.safety_covering(tokens[i].line) {
            continue;
        }
        diags.push(Diagnostic {
            file: path.to_string(),
            line: tokens[i].line,
            rule: "safety_comment".into(),
            message: format!(
                "{kind} without a `// SAFETY:` justification; state the invariant \
                 that makes this sound in a SAFETY comment directly above, or \
                 justify with `// lint:allow(safety_comment) <reason>`"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::lint_source;

    fn rules_of(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    const P: &str = "crates/vfs/src/x.rs";

    #[test]
    fn unannotated_unsafe_block_fn_and_impl_fire() {
        let src = "fn f() { let x = unsafe { *p }; }\n\
                   unsafe fn g() {}\n\
                   unsafe impl Send for M {}\n";
        assert_eq!(
            rules_of(P, src),
            vec!["safety_comment", "safety_comment", "safety_comment"]
        );
    }

    #[test]
    fn safety_comment_above_or_trailing_satisfies() {
        let src = "// SAFETY: p is valid for the lifetime of f\n\
                   fn f() { let x = unsafe { *p }; }\n\
                   unsafe fn g() {} // SAFETY: caller upholds the aliasing rules\n";
        assert!(rules_of(P, src).is_empty());
    }

    #[test]
    fn attributes_between_comment_and_unsafe_are_tolerated() {
        let src = "// SAFETY: immutable mapping, never aliased mutably\n\
                   #[cfg(target_os = \"linux\")]\n\
                   unsafe impl Send for Mmap {}\n";
        assert!(rules_of(P, src).is_empty());
        // …but a code line in between still breaks coverage.
        let src = "// SAFETY: immutable mapping\n\
                   unsafe impl Send for Mmap {}\n\
                   unsafe impl Sync for Mmap {}\n";
        assert_eq!(rules_of(P, src), vec!["safety_comment"]);
    }

    #[test]
    fn fn_pointer_types_are_not_audited() {
        let src = "type F = unsafe fn(u32) -> u32;\nfn take(f: unsafe fn()) {}\n";
        assert!(rules_of(P, src).is_empty());
    }

    #[test]
    fn allow_suppresses_with_reason() {
        let src = "// lint:allow(safety_comment) vendored allocator shim, audited upstream\n\
                   unsafe fn alloc_shim() {}\n";
        assert!(rules_of(P, src).is_empty());
    }

    #[test]
    fn applies_in_every_crate_including_bench() {
        let src = "unsafe impl GlobalAlloc for CountingAlloc {}";
        assert_eq!(
            rules_of("crates/bench/src/bin/bench_shuffle.rs", src),
            vec!["safety_comment"]
        );
    }
}
