//! SARIF 2.1.0 emitter for `--format sarif`.
//!
//! Emits the minimal static-analysis interchange document GitHub code
//! scanning ingests: one `run` with a `tool.driver` describing every rule
//! and one `result` per diagnostic. The structure is validated offline by
//! a self-test that re-parses the output with [`crate::json`] and checks
//! the fields the SARIF 2.1.0 schema marks required.

use crate::rules::{Diagnostic, RULE_IDS};

/// Short human description per rule id, embedded in the tool metadata.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "hash_iter" => "iteration over HashMap/HashSet in order-sensitive pipeline code",
        "wall_clock" => "wall-clock time source in deterministic pipeline code",
        "relaxed" => "non-SeqCst atomic ordering",
        "panic_path" => "panic path (unwrap/expect/panic!) in runtime or recovery code",
        "direct_fs" => "direct std::fs call bypassing the storage VFS",
        "safety_comment" => "unsafe item or block without a SAFETY justification",
        "lossy_cast" => "bare `as` integer cast in codec/framing code",
        "allow_unknown" => "lint:allow naming an unknown rule",
        "allow_reason" => "lint:allow without a reason",
        "dead_allow" => "lint:allow that suppresses nothing",
        "baseline_stale" => "baseline entry that no longer matches any diagnostic",
        _ => "pper determinism lint",
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a SARIF 2.1.0 document.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"pper-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/pper-lint\",\n");
    out.push_str("          \"rules\": [\n");
    // Advertise every rule the driver knows plus the meta-rules that can
    // appear in results, so each result's ruleId resolves.
    let meta_rules = [
        "allow_unknown",
        "allow_reason",
        "dead_allow",
        "baseline_stale",
    ];
    let all: Vec<&str> = RULE_IDS.iter().copied().chain(meta_rules).collect();
    for (i, rule) in all.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            esc(rule),
            esc(rule_description(rule)),
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(&d.rule)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": \"{}\"}},\n",
            esc(&d.file.replace('\\', "/"))
        ));
        out.push_str(&format!(
            "                \"region\": {{\"startLine\": {}}}\n",
            d.line.max(1)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "relaxed".into(),
                message: "non-SeqCst \"ordering\"\nsecond line".into(),
            },
            Diagnostic {
                file: "src\\main.rs".into(),
                line: 0,
                rule: "wall_clock".into(),
                message: "Instant::now".into(),
            },
        ]
    }

    #[test]
    fn emits_required_sarif_210_structure() {
        let doc = json::parse(&to_sarif(&sample())).expect("sarif must be valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(doc
            .get("$schema")
            .and_then(Value::as_str)
            .is_some_and(|s| s.contains("sarif-schema-2.1.0")));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("pper-lint")
        );
        let rules = driver.get("rules").and_then(Value::as_arr).expect("rules");
        assert!(rules.len() >= RULE_IDS.len());
        for r in rules {
            assert!(r.get("id").and_then(Value::as_str).is_some());
            assert!(r
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Value::as_str)
                .is_some());
        }
        let results = runs[0]
            .get("results")
            .and_then(Value::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        let rule_ids: Vec<&str> = rules
            .iter()
            .filter_map(|r| r.get("id").and_then(Value::as_str))
            .collect();
        for res in results {
            let rid = res.get("ruleId").and_then(Value::as_str).expect("ruleId");
            assert!(rule_ids.contains(&rid), "result ruleId {rid} not declared");
            assert_eq!(res.get("level").and_then(Value::as_str), Some("error"));
            assert!(res
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Value::as_str)
                .is_some());
            let loc = &res
                .get("locations")
                .and_then(Value::as_arr)
                .expect("locations")[0];
            let phys = loc.get("physicalLocation").expect("physicalLocation");
            let uri = phys
                .get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str)
                .expect("uri");
            assert!(!uri.contains('\\'), "SARIF uris use forward slashes");
            let line = phys
                .get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_num)
                .expect("startLine");
            assert!(line >= 1.0, "startLine must be >= 1, got {line}");
        }
    }

    #[test]
    fn empty_run_is_still_valid() {
        let doc = json::parse(&to_sarif(&[])).expect("valid");
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
        assert_eq!(
            runs[0]
                .get("results")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(0)
        );
    }
}
