//! CLI for the workspace invariant linter.
//!
//! ```text
//! pper-lint [--format text|json|sarif] [--quiet] [--legacy-scope]
//!           [--check-allows] [--baseline FILE] [--write-baseline FILE]
//!           <path>...
//! ```
//!
//! Exits 0 when every path is clean, 1 on any diagnostic, 2 on usage
//! errors. `--format json` prints a machine-readable array, `--format
//! sarif` a SARIF 2.1.0 document for code-scanning upload. The default
//! analysis is call-graph-aware; `--legacy-scope` restores the pre-v2
//! single-file scoping for comparison runs.

use std::path::PathBuf;
use std::process::ExitCode;

use pper_lint::{analyze_tree, baseline, to_json, to_sarif, Options};

const USAGE: &str = "usage: pper-lint [--format text|json|sarif] [--quiet] [--legacy-scope] \
                     [--check-allows] [--baseline FILE] [--write-baseline FILE] <path>...";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut format = Format::Text;
    let mut quiet = false;
    let mut opts = Options::default();
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("--format expects `text`, `json`, or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(p),
                None => {
                    eprintln!("--baseline expects a file path");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(p),
                None => {
                    eprintln!("--write-baseline expects a file path");
                    return ExitCode::from(2);
                }
            },
            "--check-allows" => opts.check_allows = true,
            "--legacy-scope" => opts.reachability = false,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                println!("rules: {}", pper_lint::RULE_IDS.join(", "));
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}; try --help");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut diags = analyze_tree(&roots, &opts);

    if let Some(path) = write_baseline {
        let text = baseline::render(&diags);
        if let Err(err) = std::fs::write(&path, text) {
            eprintln!("cannot write baseline {path}: {err}");
            return ExitCode::from(2);
        }
        if !quiet {
            eprintln!(
                "pper-lint: wrote baseline covering {} diagnostic{} to {path}",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut suppressed = 0usize;
    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read baseline {path}: {err}");
                return ExitCode::from(2);
            }
        };
        let entries = match baseline::parse(&text) {
            Ok(entries) => entries,
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::from(2);
            }
        };
        let (kept, n) = baseline::apply(diags, &entries, &path);
        diags = kept;
        suppressed = n;
        diags.sort();
    }

    match format {
        Format::Json => println!("{}", to_json(&diags)),
        Format::Sarif => print!("{}", to_sarif(&diags)),
        Format::Text => {
            for d in &diags {
                println!("{}", d.render());
            }
            if !quiet {
                eprintln!(
                    "pper-lint: {} diagnostic{} across {} path{}{}",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" },
                    roots.len(),
                    if roots.len() == 1 { "" } else { "s" },
                    if suppressed > 0 {
                        format!(" ({suppressed} baselined)")
                    } else {
                        String::new()
                    },
                );
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
