//! CLI for the workspace invariant linter.
//!
//! ```text
//! pper-lint [--format text|json] [--quiet] <path>...
//! ```
//!
//! Exits 0 when every path is clean, 1 on any diagnostic, 2 on usage
//! errors. `--format json` prints a machine-readable array for CI.

use std::path::PathBuf;
use std::process::ExitCode;

use pper_lint::{lint_tree, to_json};

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("--format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: pper-lint [--format text|json] [--quiet] <path>...");
                println!("rules: {}", pper_lint::RULE_IDS.join(", "));
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}; try --help");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        eprintln!("usage: pper-lint [--format text|json] [--quiet] <path>...");
        return ExitCode::from(2);
    }

    let diags = lint_tree(&roots);
    if json {
        println!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        if !quiet {
            eprintln!(
                "pper-lint: {} diagnostic{} across {} path{}",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
                roots.len(),
                if roots.len() == 1 { "" } else { "s" },
            );
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
