//! Rule C1 (`lossy_cast`): no bare `as` integer casts in codec/framing
//! code.
//!
//! The journal frame format, the columnar store header, and the external
//! sorter's run framing all serialize lengths and offsets as fixed-width
//! integers. A bare `expr as u32` silently truncates when the value
//! outgrows the target — exactly the kind of corruption the CRC layer can
//! no longer distinguish from disk damage, because the truncated value was
//! *written* wrong. C1 bans `as` casts to integer types in those crates:
//! use `From`/`try_from` for provably-lossless conversions, route real
//! failures through the crate's error type, or call an explicit truncation
//! helper whose contract documents why the value fits (the helper carries
//! the one audited `lint:allow(lossy_cast)`).

use crate::lexer::{Token, TokenKind};
use crate::parser::is_ident;
use crate::rules::Diagnostic;

/// Integer target types C1 flags.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

pub(crate) fn rule_lossy_cast(
    path: &str,
    tokens: &[Token],
    mask: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !is_ident(&tokens[i], "as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
            continue;
        }
        // `use path as name` binds idents, never primitive type names, so
        // every `as <int>` here is a cast. Associated consts like
        // `u32::MAX as usize` are casts too and still flagged: spell them
        // with `try_from`/`From` or a helper.
        diags.push(Diagnostic {
            file: path.to_string(),
            line: target.line,
            rule: "lossy_cast".into(),
            message: format!(
                "bare `as {}` cast in codec/framing code can silently truncate; \
                 use `{}::try_from`/`From`, or an explicit documented truncation \
                 helper, or justify with `// lint:allow(lossy_cast) <reason>`",
                target.text, target.text
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::lint_source;

    fn rules_of(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn int_casts_fire_only_in_codec_crates() {
        let src = "fn f(x: usize) -> u32 { x as u32 }";
        assert_eq!(
            rules_of("crates/journal/src/frame.rs", src),
            vec!["lossy_cast"]
        );
        assert_eq!(rules_of("crates/store/src/lib.rs", src), vec!["lossy_cast"]);
        assert_eq!(
            rules_of("crates/mapreduce/src/extsort.rs", src),
            vec!["lossy_cast"]
        );
        // Elsewhere `as` stays legal (exec.rs packs ranges with `as` under
        // its own loom-checked invariants).
        assert!(rules_of("crates/mapreduce/src/exec.rs", src).is_empty());
        assert!(rules_of("crates/er-core/src/basic.rs", src).is_empty());
    }

    #[test]
    fn non_integer_casts_are_ignored() {
        let src = "fn f(x: u32) { let a = x as f64; let p = &x as *const u32; }";
        assert!(rules_of("crates/journal/src/frame.rs", src).is_empty());
    }

    #[test]
    fn allow_and_cfg_test_suppress() {
        let src = "fn f(x: usize) -> u32 {\n\
                   // lint:allow(lossy_cast) helper contract: caller checked x <= u32::MAX\n\
                   x as u32 }\n\
                   #[cfg(test)] mod t { fn g(x: usize) -> u32 { x as u32 } }";
        assert!(rules_of("crates/journal/src/frame.rs", src).is_empty());
    }

    #[test]
    fn each_cast_reports_its_own_line() {
        let src = "fn f(x: u64) {\n    let a = x as u32;\n    let b = x as u16;\n}";
        let diags = lint_source("crates/store/src/lib.rs", src);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
        assert!(diags[0].message.contains("as u32"));
        assert!(diags[1].message.contains("as u16"));
    }
}
