//! `pper-lint`: determinism & concurrency invariants as named, allowlistable
//! static-analysis rules.
//!
//! The repo's headline guarantee — bit-identical results across thread
//! counts, fault plans, and resume points — rests on invariants that unit
//! tests only probe indirectly: no hash-order iteration feeding an emit, no
//! wall-clock reads on virtual-time paths, justified relaxed atomics,
//! `MrError`-routed failures in the runtime hot paths, VFS-routed file I/O,
//! audited `unsafe`, and truncation-free codec arithmetic. See [`rules`]
//! for the rule table and the `lint:allow` annotation grammar.
//!
//! Two analysis depths exist:
//!
//! - [`lint_source`] / [`lint_tree`]: the legacy single-file scoping —
//!   each rule fires only in its designated crates/files.
//! - [`analyze`] / [`analyze_tree`]: the whole-workspace analysis — on top
//!   of the legacy scoping it parses every file into functions and calls
//!   ([`parser`]), builds a cross-crate call graph ([`taint`]), and
//!   promotes any sink *reachable* from a deterministic entry point
//!   (map/reduce task bodies, `Executor::run`, the shuffle builders,
//!   journal replay), reporting the full call chain in the diagnostic.
//!
//! Run it as `cargo run -p pper-lint -- crates/ src/` (add `--format json`
//! or `--format sarif` for CI, `--check-allows` to flag stale
//! suppressions, `--baseline <file>` to adopt rules incrementally). The
//! binary exits nonzero on any unsuppressed diagnostic.

pub mod analysis;
pub mod baseline;
mod casts;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
mod safety;
pub mod sarif;
pub mod taint;

use std::path::{Path, PathBuf};

pub use analysis::{analyze, Options, SourceFile};
pub use rules::{lint_source, Diagnostic, RULE_IDS};
pub use sarif::to_sarif;

/// Recursively collect the `.rs` files under `root` (or `root` itself for a
/// file), skipping build output, VCS metadata, and lint test fixtures.
/// Results are sorted so diagnostics are emitted in a stable order.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.is_file() {
            if dir.extension().is_some_and(|e| e == "rs") {
                files.push(dir);
            }
            continue;
        }
        let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
            // Root paths like `.` or `/` have no final component; descend.
            for entry in std::fs::read_dir(&dir)? {
                stack.push(entry?.path());
            }
            continue;
        };
        if name == "target" || name == ".git" || name == "fixtures" {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            stack.push(entry?.path());
        }
    }
    files.sort();
    Ok(files)
}

/// Read every `.rs` file under the given roots into [`SourceFile`]s.
/// I/O failures surface as `io` pseudo-diagnostics rather than aborting.
pub fn read_sources(roots: &[PathBuf]) -> (Vec<SourceFile>, Vec<Diagnostic>) {
    let mut sources = Vec::new();
    let mut io_diags = Vec::new();
    for root in roots {
        let files = match collect_rs_files(root) {
            Ok(files) => files,
            Err(err) => {
                io_diags.push(Diagnostic {
                    file: root.display().to_string(),
                    line: 0,
                    rule: "io".into(),
                    message: format!("cannot walk: {err}"),
                });
                continue;
            }
        };
        for file in files {
            let path = file.display().to_string();
            match std::fs::read_to_string(&file) {
                Ok(src) => sources.push(SourceFile { path, src }),
                Err(err) => io_diags.push(Diagnostic {
                    file: path,
                    line: 0,
                    rule: "io".into(),
                    message: format!("cannot read: {err}"),
                }),
            }
        }
    }
    (sources, io_diags)
}

/// Run the whole-workspace analysis over every `.rs` file under the given
/// roots. This is what the CLI and CI use.
pub fn analyze_tree(roots: &[PathBuf], opts: &Options) -> Vec<Diagnostic> {
    let (sources, mut diags) = read_sources(roots);
    diags.extend(analyze(&sources, opts));
    diags.sort();
    diags
}

/// Lint every `.rs` file under the given roots with the legacy single-file
/// scoping (no call-graph promotion). Kept for comparison runs and
/// back-compat; prefer [`analyze_tree`].
pub fn lint_tree(roots: &[PathBuf]) -> Vec<Diagnostic> {
    let (sources, mut diags) = read_sources(roots);
    for f in &sources {
        diags.extend(lint_source(&f.path, &f.src));
    }
    diags.sort();
    diags
}

/// Render diagnostics as a JSON array (stable field order, no trailing
/// newline) for `--format json` consumers.
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                escape(&d.file),
                d.line,
                escape(&d.rule),
                escape(&d.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let diags = vec![Diagnostic {
            file: "a\"b.rs".into(),
            line: 7,
            rule: "relaxed".into(),
            message: "line1\nline2".into(),
        }];
        let json = to_json(&diags);
        assert_eq!(
            json,
            "[{\"file\":\"a\\\"b.rs\",\"line\":7,\"rule\":\"relaxed\",\"message\":\"line1\\nline2\"}]"
        );
    }

    #[test]
    fn empty_diags_render_as_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }
}
