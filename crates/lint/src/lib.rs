//! `pper-lint`: determinism & concurrency invariants as named, allowlistable
//! static-analysis rules.
//!
//! The repo's headline guarantee — bit-identical results across thread
//! counts, fault plans, and resume points — rests on invariants that unit
//! tests only probe indirectly: no hash-order iteration feeding an emit, no
//! wall-clock reads on virtual-time paths, justified relaxed atomics, and
//! `MrError`-routed failures in the runtime hot paths. This crate checks
//! those invariants on every file of the workspace; see [`rules`] for the
//! rule table and the `lint:allow` annotation grammar.
//!
//! Run it as `cargo run -p pper-lint -- crates/` (add `--format json` for
//! CI). The binary exits nonzero on any unsuppressed diagnostic.

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{lint_source, Diagnostic, RULE_IDS};

/// Recursively collect the `.rs` files under `root` (or `root` itself for a
/// file), skipping build output, VCS metadata, and lint test fixtures.
/// Results are sorted so diagnostics are emitted in a stable order.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.is_file() {
            if dir.extension().is_some_and(|e| e == "rs") {
                files.push(dir);
            }
            continue;
        }
        let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
            // Root paths like `.` or `/` have no final component; descend.
            for entry in std::fs::read_dir(&dir)? {
                stack.push(entry?.path());
            }
            continue;
        };
        if name == "target" || name == ".git" || name == "fixtures" {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            stack.push(entry?.path());
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every `.rs` file under the given roots. Unreadable files surface as
/// an `io` pseudo-diagnostic rather than aborting the run.
pub fn lint_tree(roots: &[PathBuf]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for root in roots {
        let files = match collect_rs_files(root) {
            Ok(files) => files,
            Err(err) => {
                diags.push(Diagnostic {
                    file: root.display().to_string(),
                    line: 0,
                    rule: "io".into(),
                    message: format!("cannot walk: {err}"),
                });
                continue;
            }
        };
        for file in files {
            let path = file.display().to_string();
            match std::fs::read_to_string(&file) {
                Ok(src) => diags.extend(lint_source(&path, &src)),
                Err(err) => diags.push(Diagnostic {
                    file: path,
                    line: 0,
                    rule: "io".into(),
                    message: format!("cannot read: {err}"),
                }),
            }
        }
    }
    diags.sort();
    diags
}

/// Render diagnostics as a JSON array (stable field order, no trailing
/// newline) for `--format json` consumers.
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                escape(&d.file),
                d.line,
                escape(&d.rule),
                escape(&d.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let diags = vec![Diagnostic {
            file: "a\"b.rs".into(),
            line: 7,
            rule: "relaxed".into(),
            message: "line1\nline2".into(),
        }];
        let json = to_json(&diags);
        assert_eq!(
            json,
            "[{\"file\":\"a\\\"b.rs\",\"line\":7,\"rule\":\"relaxed\",\"message\":\"line1\\nline2\"}]"
        );
    }

    #[test]
    fn empty_diags_render_as_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }
}
