//! The project-invariant rules (D1–D5, U1, C1) over the lexed token
//! stream.
//!
//! | id          | invariant                                                        |
//! |-------------|------------------------------------------------------------------|
//! | `hash_iter` | D1: no `HashMap`/`HashSet` iteration in deterministic crates     |
//! |             | unless the use is provably order-insensitive                     |
//! | `wall_clock`| D2: no `Instant::now`/`SystemTime::now`/`thread_rng` outside the |
//! |             | approved wall-clock modules (`cost.rs`, `bench`, `datagen`)      |
//! | `relaxed`   | D3: every non-`SeqCst` ordering (`Relaxed`/`Acquire`/`Release`/  |
//! |             | `AcqRel`) carries a written justification                        |
//! | `panic_path`| D4: no `unwrap`/`expect`/`panic!` in the runtime hot paths       |
//! |             | or anywhere in the durability-critical `journal` crate           |
//! | `direct_fs` | D5: no direct `std::fs` / `File::` / `OpenOptions::` access in   |
//! |             | the out-of-core crates — file I/O must route through the         |
//! |             | fault-injectable `pper_vfs::Vfs` seam                            |
//! |`safety_comment`| U1: every `unsafe` block/fn/impl carries a `// SAFETY:`       |
//! |             | justification (see [`crate::safety`])                            |
//! | `lossy_cast`| C1: no bare `as` integer casts in codec/framing code             |
//! |             | (`journal`, `store`, `extsort.rs` — see [`crate::casts`])        |
//!
//! Each rule detects *sinks* on every non-exempt file; whether a sink
//! becomes a diagnostic is decided by scope. The legacy file/crate scoping
//! above is applied by [`lint_source`]; the whole-workspace analysis in
//! [`crate::analysis`] additionally promotes sinks inside functions that
//! are *reachable* from a deterministic entry point (see [`crate::taint`]),
//! wherever they live.
//!
//! Any diagnostic can be suppressed with a `// lint:allow(<rule>) <reason>`
//! comment on the same line or in the comment block directly above it; the
//! reason is mandatory (`allow_reason`) and the rule id must exist
//! (`allow_unknown`). Code under `#[cfg(test)]` and files under `tests/`,
//! `examples/`, or `benches/` are exempt — the invariants protect the
//! production execution paths.

use crate::lexer::{lex, LexedFile, Token, TokenKind};
use crate::parser::{depth_delta, is_ident, is_path_sep, is_punct};

/// Crates whose emit-visible paths must be iteration-order deterministic
/// (rule D1). Directory names under `crates/`.
const D1_CRATES: &[&str] = &[
    "mapreduce",
    "er-core",
    "blocking",
    "schedule",
    "progressive",
    "journal",
    "store",
];

/// Hash container type names whose bindings D1 tracks.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods that iterate a hash container in nondeterministic order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-insensitive chain terminators: if the iteration's own statement
/// funnels into one of these, element order cannot reach the result.
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    "sum",
    "product",
    "count",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "all",
    "any",
    "contains",
    "len",
    "is_empty",
];

/// `collect::<T>` targets that re-establish a canonical order (or stay
/// unordered), making the iteration order immaterial.
const ORDER_INSENSITIVE_COLLECTS: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
];

/// Files whose hot paths must route errors through `MrError` (rule D4),
/// relative suffixes under the mapreduce crate.
const D4_FILES: &[&str] = &["runtime.rs", "shuffle.rs", "driver.rs", "exec.rs"];

/// Crates whose production code must route file I/O through the
/// fault-injectable `pper_vfs::Vfs` seam (rule D5): the out-of-core
/// storage crates, where the chaos suites have to be able to inject disk
/// faults under every write. The `vfs` crate itself (the one place
/// allowed to touch `std::fs`) is outside this list by construction.
const D5_CRATES: &[&str] = &["store", "journal"];

/// Mapreduce files under D5 (the external-sort spill path).
const D5_FILES: &[&str] = &["extsort.rs"];

/// Type names whose `X::…` associated calls D5 flags as direct
/// filesystem access.
const D5_FS_TYPES: &[&str] = &["File", "OpenOptions"];

/// All valid rule ids, for `lint:allow` validation.
pub const RULE_IDS: &[&str] = &[
    "hash_iter",
    "wall_clock",
    "relaxed",
    "panic_path",
    "direct_fs",
    "safety_comment",
    "lossy_cast",
];

/// One finding, ready to render as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace, as far as rule scoping cares.
pub(crate) struct FileScope {
    /// Directory name under `crates/` (or the top-level directory).
    pub(crate) crate_dir: String,
    /// Final file name.
    pub(crate) file_name: String,
    /// True for `tests/`, `examples/`, `benches/`, and fixture trees.
    pub(crate) exempt: bool,
}

pub(crate) fn classify(path: &str) -> FileScope {
    let norm = path.replace('\\', "/");
    let components: Vec<&str> = norm.split('/').filter(|c| !c.is_empty()).collect();
    let crate_dir = components
        .iter()
        .position(|&c| c == "crates")
        .and_then(|i| components.get(i + 1))
        .or_else(|| components.first())
        .unwrap_or(&"")
        .to_string();
    let file_name = components.last().unwrap_or(&"").to_string();
    // The linter's own sources quote rule names and annotation grammar in
    // doc comments, so it never analyses itself; shims vendor external API
    // surfaces (e.g. `rand::thread_rng`) that the rules target by name.
    let exempt = components.iter().any(|&c| {
        c == "tests" || c == "examples" || c == "benches" || c == "fixtures" || c == "target"
    }) || components.contains(&"shims")
        || crate_dir == "lint";
    FileScope {
        crate_dir,
        file_name,
        exempt,
    }
}

/// One detected sink plus its scope verdicts. The detectors run on every
/// non-exempt file; `legacy` says whether the historical file/crate scoping
/// fires it, `reach` whether the call-graph analysis may promote it when
/// its enclosing function is reachable from a deterministic entry point.
pub(crate) struct Sink {
    pub(crate) diag: Diagnostic,
    pub(crate) legacy: bool,
    pub(crate) reach: bool,
}

/// Run every rule's sink detector over one lexed file.
pub(crate) fn collect_sinks(
    path: &str,
    lexed: &LexedFile,
    mask: &[bool],
    scope: &FileScope,
) -> Vec<Sink> {
    let tokens = &lexed.tokens;
    let mut sinks: Vec<Sink> = Vec::new();
    let mut stage = |raw: Vec<Diagnostic>, legacy: bool, reach: bool| {
        sinks.extend(raw.into_iter().map(|diag| Sink {
            diag,
            legacy,
            reach,
        }));
    };

    let mut raw = Vec::new();
    rule_hash_iter(path, tokens, mask, &mut raw);
    stage(raw, D1_CRATES.contains(&scope.crate_dir.as_str()), true);

    // The bench/datagen crates measure and generate — wall-clock use is
    // their purpose, so they are exempt outright. `cost.rs` is only exempt
    // from the *file* scoping: a clock read there that is reachable from a
    // deterministic entry point is still a determinism bug.
    if scope.crate_dir != "bench" && scope.crate_dir != "datagen" {
        let mut raw = Vec::new();
        rule_wall_clock(path, tokens, mask, &mut raw);
        stage(raw, scope.file_name != "cost.rs", true);
    }

    let mut raw = Vec::new();
    rule_relaxed(path, tokens, mask, &mut raw);
    stage(raw, true, true);

    // D4 guards the mapreduce hot paths and the whole journal crate: a
    // panic while appending or recovering a job log turns a recoverable
    // I/O hiccup into lost durability. Elsewhere a panic only matters if
    // a deterministic entry point can actually reach it.
    let d4_scope = (scope.crate_dir == "mapreduce" && D4_FILES.contains(&scope.file_name.as_str()))
        || scope.crate_dir == "journal";
    let mut raw = Vec::new();
    rule_panic_path(path, tokens, mask, &mut raw);
    stage(raw, d4_scope, true);

    // D5 guards the out-of-core path: any file access that bypasses the
    // Vfs seam is invisible to fault injection, so the chaos conformance
    // sweep would silently stop covering it. The vfs crate IS the seam —
    // its own `std::fs` calls are the implementation, never a bypass.
    if scope.crate_dir != "vfs" {
        let d5_scope = D5_CRATES.contains(&scope.crate_dir.as_str())
            || (scope.crate_dir == "mapreduce" && D5_FILES.contains(&scope.file_name.as_str()));
        let mut raw = Vec::new();
        rule_direct_fs(path, tokens, mask, &mut raw);
        stage(raw, d5_scope, true);
    }

    // U1 applies everywhere: unsafety is audited wherever it lives.
    let mut raw = Vec::new();
    crate::safety::rule_safety_comment(path, tokens, mask, lexed, &mut raw);
    stage(raw, true, false);

    // C1 is a codec-locality rule, not a reachability one: the danger is
    // the serialized artifact, so only the framing/codec code is in scope.
    let c1_scope = scope.crate_dir == "journal"
        || scope.crate_dir == "store"
        || (scope.crate_dir == "mapreduce" && scope.file_name == "extsort.rs");
    if c1_scope {
        let mut raw = Vec::new();
        crate::casts::rule_lossy_cast(path, tokens, mask, &mut raw);
        stage(raw, true, false);
    }

    sinks
}

/// Apply the `lint:allow` layer to raw diagnostics: drop suppressed ones,
/// validate the annotations themselves (`allow_unknown`/`allow_reason`),
/// and — when `check_dead` — report valid annotations that suppressed
/// nothing as `dead_allow`.
pub(crate) fn apply_allows(
    path: &str,
    lexed: &LexedFile,
    raw: Vec<Diagnostic>,
    check_dead: bool,
) -> Vec<Diagnostic> {
    // Allows are identified by (line, rule): two annotations for the same
    // rule on the same line are indistinguishable and equally used.
    let mut used: Vec<(usize, &str)> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for a in lexed.allows_covering(d.line) {
            if a.rule == d.rule {
                suppressed = true;
                used.push((a.line, a.rule.as_str()));
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for a in &lexed.allows {
        if !RULE_IDS.contains(&a.rule.as_str()) {
            out.push(Diagnostic {
                file: path.to_string(),
                line: a.line,
                rule: "allow_unknown".into(),
                message: format!(
                    "unknown rule `{}` in lint:allow; valid rules: {}",
                    a.rule,
                    RULE_IDS.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Diagnostic {
                file: path.to_string(),
                line: a.line,
                rule: "allow_reason".into(),
                message: format!(
                    "lint:allow({}) requires a written reason after the closing paren",
                    a.rule
                ),
            });
        } else if check_dead && !used.contains(&(a.line, a.rule.as_str())) {
            out.push(Diagnostic {
                file: path.to_string(),
                line: a.line,
                rule: "dead_allow".into(),
                message: format!(
                    "lint:allow({}) suppresses nothing on the code it covers; \
                     remove the stale annotation",
                    a.rule
                ),
            });
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Lint one file's source under the legacy single-file scoping. `path` is
/// used both for scoping decisions and verbatim in the emitted
/// diagnostics. The whole-workspace, call-graph-aware analysis lives in
/// [`crate::analysis::analyze`].
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let scope = classify(path);
    if scope.exempt {
        return Vec::new();
    }
    let lexed = lex(src);
    let mask = cfg_test_mask(&lexed.tokens);
    let raw: Vec<Diagnostic> = collect_sinks(path, &lexed, &mask, &scope)
        .into_iter()
        .filter(|s| s.legacy)
        .map(|s| s.diag)
        .collect();
    apply_allows(path, &lexed, raw, false)
}

// ---------------------------------------------------------------------------
// token helpers (the shared ones live in crate::parser)

/// Index one past the end of the statement starting at `from`: the next
/// `;` at relative depth 0, a `{` opening a block at depth 0, or the point
/// where the enclosing delimiter closes.
fn statement_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(from) {
        let d = depth_delta(t);
        if d < 0 && depth == 0 {
            return j;
        }
        if depth == 0 && (is_punct(t, ';') || is_punct(t, '{')) {
            return j;
        }
        depth += d;
    }
    tokens.len()
}

/// Mark every token inside a `#[cfg(test)]`-gated item (attributes
/// included) so the rules skip test code.
pub(crate) fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let hit = is_punct(&tokens[i], '#')
            && is_punct(&tokens[i + 1], '[')
            && is_ident(&tokens[i + 2], "cfg")
            && is_punct(&tokens[i + 3], '(')
            && is_ident(&tokens[i + 4], "test")
            && is_punct(&tokens[i + 5], ')')
            && is_punct(&tokens[i + 6], ']');
        if !hit {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j + 1 < tokens.len() && is_punct(&tokens[j], '#') && is_punct(&tokens[j + 1], '[') {
            let mut depth = 0i32;
            j += 1;
            while j < tokens.len() {
                depth += depth_delta(&tokens[j]);
                j += 1;
                if depth == 0 {
                    break;
                }
            }
        }
        // The gated item runs to a `;` before any block, or to the
        // matching `}` of its first block.
        let mut depth = 0i32;
        let mut saw_block = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if depth == 0 && !saw_block && is_punct(t, ';') {
                j += 1;
                break;
            }
            if is_punct(t, '{') {
                saw_block = true;
            }
            depth += depth_delta(t);
            j += 1;
            if saw_block && depth == 0 {
                break;
            }
        }
        for m in mask.iter_mut().take(j).skip(start) {
            *m = true;
        }
        i = j;
    }
    mask
}

// ---------------------------------------------------------------------------
// D1: hash_iter

/// Names bound to hash containers in this file: `let` bindings, `fn`
/// parameters, and struct fields (matched through `.field` accesses).
#[derive(Default)]
struct HashBindings {
    names: Vec<String>,
    fields: Vec<String>,
}

fn mentions_hash_type(tokens: &[Token], from: usize, to: usize) -> bool {
    tokens[from..to.min(tokens.len())]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && HASH_TYPES.contains(&t.text.as_str()))
}

fn collect_hash_bindings(tokens: &[Token], mask: &[bool]) -> HashBindings {
    let mut b = HashBindings::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if mask[i] {
            // Bindings inside #[cfg(test)] code must not poison the
            // production name set.
            i += 1;
            continue;
        }
        if is_ident(&tokens[i], "let") {
            let mut j = i + 1;
            if j < tokens.len() && is_ident(&tokens[j], "mut") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].kind == TokenKind::Ident {
                let end = statement_end(tokens, j + 1);
                if mentions_hash_type(tokens, j + 1, end) {
                    b.names.push(tokens[j].text.clone());
                }
                i = end;
                continue;
            }
        } else if is_ident(&tokens[i], "fn") {
            // Parameters: each `name: ...Hash...` segment inside the
            // signature's parens binds `name`.
            let mut j = i + 1;
            while j < tokens.len() && !is_punct(&tokens[j], '(') && !is_punct(&tokens[j], '{') {
                j += 1;
            }
            if j < tokens.len() && is_punct(&tokens[j], '(') {
                let mut depth = 0i32;
                let open = j;
                let mut close = j;
                while close < tokens.len() {
                    depth += depth_delta(&tokens[close]);
                    if depth == 0 {
                        break;
                    }
                    close += 1;
                }
                let mut k = open + 1;
                while k < close {
                    if tokens[k].kind == TokenKind::Ident
                        && k + 1 < close
                        && is_punct(&tokens[k + 1], ':')
                        && !is_path_sep(tokens, k + 1)
                    {
                        // Scan this parameter's type up to its `,` at
                        // paren depth 1.
                        let mut depth = 0i32;
                        let mut end = k + 2;
                        while end < close {
                            if depth == 0 && is_punct(&tokens[end], ',') {
                                break;
                            }
                            depth += depth_delta(&tokens[end]);
                            end += 1;
                        }
                        if mentions_hash_type(tokens, k + 2, end) {
                            b.names.push(tokens[k].text.clone());
                        }
                        k = end + 1;
                    } else {
                        k += 1;
                    }
                }
                i = close;
                continue;
            }
        } else if is_ident(&tokens[i], "struct") {
            let mut j = i + 1;
            while j < tokens.len()
                && !is_punct(&tokens[j], '{')
                && !is_punct(&tokens[j], '(')
                && !is_punct(&tokens[j], ';')
            {
                j += 1;
            }
            if j < tokens.len() && is_punct(&tokens[j], '{') {
                let open = j;
                let mut depth = 0i32;
                let mut close = j;
                while close < tokens.len() {
                    depth += depth_delta(&tokens[close]);
                    if depth == 0 {
                        break;
                    }
                    close += 1;
                }
                let mut k = open + 1;
                while k < close {
                    if tokens[k].kind == TokenKind::Ident
                        && k + 1 < close
                        && is_punct(&tokens[k + 1], ':')
                        && !is_path_sep(tokens, k + 1)
                    {
                        let mut depth = 0i32;
                        let mut end = k + 2;
                        while end < close {
                            if depth == 0 && is_punct(&tokens[end], ',') {
                                break;
                            }
                            depth += depth_delta(&tokens[end]);
                            end += 1;
                        }
                        if mentions_hash_type(tokens, k + 2, end) {
                            b.fields.push(tokens[k].text.clone());
                        }
                        k = end + 1;
                    } else {
                        k += 1;
                    }
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }
    b.names.sort();
    b.names.dedup();
    b.fields.sort();
    b.fields.dedup();
    b
}

/// True when the statement containing the iteration at `at` funnels into an
/// order-insensitive sink.
fn has_order_insensitive_sink(tokens: &[Token], at: usize) -> bool {
    let end = statement_end(tokens, at);
    let mut j = at;
    while j < end {
        let t = &tokens[j];
        if t.kind == TokenKind::Ident {
            if ORDER_INSENSITIVE_SINKS.contains(&t.text.as_str()) {
                return true;
            }
            if t.text == "collect" {
                // `collect::<BTreeMap<_, _>>()` and friends.
                let scan_to = statement_end(tokens, j + 1).min(j + 12);
                if tokens[j + 1..scan_to].iter().any(|t| {
                    t.kind == TokenKind::Ident
                        && ORDER_INSENSITIVE_COLLECTS.contains(&t.text.as_str())
                }) {
                    return true;
                }
            }
        }
        j += 1;
    }
    // `let ordered: BTreeMap<_, _> = map.iter()….collect();` — the collect
    // target annotated on the binding instead of a turbofish. Requires both
    // a `collect` in the statement and an ordered/unordered re-collection
    // type ahead of the iteration site.
    let start = statement_start(tokens, at);
    tokens[at..end]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "collect")
        && tokens[start..at].iter().any(|t| {
            t.kind == TokenKind::Ident && ORDER_INSENSITIVE_COLLECTS.contains(&t.text.as_str())
        })
}

/// Walk back from `at` to the token just after the previous `;`/`{`/`}` —
/// the (heuristic) start of the enclosing statement.
fn statement_start(tokens: &[Token], at: usize) -> usize {
    let mut i = at.min(tokens.len());
    while i > 0 {
        let t = &tokens[i - 1];
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        i -= 1;
    }
    i
}

fn push(diags: &mut Vec<Diagnostic>, path: &str, line: usize, rule: &str, message: String) {
    diags.push(Diagnostic {
        file: path.to_string(),
        line,
        rule: rule.to_string(),
        message,
    });
}

fn rule_hash_iter(path: &str, tokens: &[Token], mask: &[bool], diags: &mut Vec<Diagnostic>) {
    let bindings = collect_hash_bindings(tokens, mask);
    let bound =
        |t: &Token| t.kind == TokenKind::Ident && bindings.names.binary_search(&t.text).is_ok();
    let field =
        |t: &Token| t.kind == TokenKind::Ident && bindings.fields.binary_search(&t.text).is_ok();
    let mut i = 0usize;
    while i < tokens.len() {
        if mask[i] {
            i += 1;
            continue;
        }
        // `name.iter()` / `x.field.iter()` forms.
        if i + 2 < tokens.len()
            && is_punct(&tokens[i + 1], '.')
            && tokens[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&tokens[i + 2].text.as_str())
            && i + 3 < tokens.len()
            && is_punct(&tokens[i + 3], '(')
            // A bare name must match a local/param binding; a `.field`
            // access must match a hash-typed struct field — a field that
            // merely shares a local's name is not hash-bound.
            && (if is_punct_prev_dot(tokens, i) {
                field(&tokens[i])
            } else {
                bound(&tokens[i])
            })
        {
            if !has_order_insensitive_sink(tokens, i + 2) {
                push(
                    diags,
                    path,
                    tokens[i + 2].line,
                    "hash_iter",
                    format!(
                        "iteration over hash container `{}` has nondeterministic order; \
                         sort first, collect into a BTreeMap/BTreeSet, or justify with \
                         `// lint:allow(hash_iter) <reason>`",
                        tokens[i].text
                    ),
                );
            }
            i += 3;
            continue;
        }
        // `for pat in [&mut] name {` / `for pat in &self.field {` forms.
        if is_ident(&tokens[i], "for") {
            if let Some((expr_start, block)) = for_loop_expr(tokens, i) {
                let expr = strip_refs(tokens, expr_start, block);
                let hit = match block.saturating_sub(expr) {
                    1 if bound(&tokens[expr]) => Some(tokens[expr].text.clone()),
                    3 if tokens[expr].kind == TokenKind::Ident
                        && is_punct(&tokens[expr + 1], '.')
                        && field(&tokens[expr + 2]) =>
                    {
                        Some(tokens[expr + 2].text.clone())
                    }
                    _ => None,
                };
                if let Some(name) = hit {
                    if !mask[i] {
                        push(
                            diags,
                            path,
                            tokens[i].line,
                            "hash_iter",
                            format!(
                                "for-loop over hash container `{name}` has nondeterministic \
                                 order; sort first, collect into a BTreeMap/BTreeSet, or \
                                 justify with `// lint:allow(hash_iter) <reason>`"
                            ),
                        );
                    }
                }
            }
        }
        i += 1;
    }
}

/// True when token `i` is preceded by a `.` (it is a field access, not a
/// free variable).
fn is_punct_prev_dot(tokens: &[Token], i: usize) -> bool {
    i > 0 && is_punct(&tokens[i - 1], '.')
}

/// For a `for` keyword at `i`, return (iterated-expression start, index of
/// the body `{`), or None if the loop shape is unexpected.
fn for_loop_expr(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    // Find `in` at pattern depth 0.
    loop {
        let t = tokens.get(j)?;
        if depth == 0 && is_ident(t, "in") {
            break;
        }
        depth += depth_delta(t);
        j += 1;
    }
    let expr_start = j + 1;
    let mut depth = 0i32;
    let mut k = expr_start;
    loop {
        let t = tokens.get(k)?;
        if depth == 0 && is_punct(t, '{') {
            return Some((expr_start, k));
        }
        depth += depth_delta(t);
        k += 1;
    }
}

/// Skip leading `&`, `mut` in an iterated expression.
fn strip_refs(tokens: &[Token], mut i: usize, end: usize) -> usize {
    while i < end && (is_punct(&tokens[i], '&') || is_ident(&tokens[i], "mut")) {
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// D2: wall_clock

fn rule_wall_clock(path: &str, tokens: &[Token], mask: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `Instant::now` / `SystemTime::now`.
        if (t.text == "Instant" || t.text == "SystemTime")
            && is_path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|n| is_ident(n, "now"))
        {
            push(
                diags,
                path,
                t.line,
                "wall_clock",
                format!(
                    "`{}::now` reads the wall clock outside the approved modules \
                     (cost.rs, bench, datagen); virtual-time paths must stay \
                     deterministic — derive the value from job state or justify with \
                     `// lint:allow(wall_clock) <reason>`",
                    t.text
                ),
            );
        }
        if t.text == "thread_rng" && tokens.get(i + 1).is_some_and(|n| is_punct(n, '(')) {
            push(
                diags,
                path,
                t.line,
                "wall_clock",
                "`thread_rng` is OS-seeded and nondeterministic; use the seeded \
                 datagen RNG or justify with `// lint:allow(wall_clock) <reason>`"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// D3: relaxed

/// Non-`SeqCst` orderings D3 flags: each use must argue why the weaker
/// ordering is still correct (`Relaxed`: why no ordering at all is needed;
/// `Acquire`/`Release`/`AcqRel`: which store/load pair it synchronizes with).
const D3_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

fn rule_relaxed(path: &str, tokens: &[Token], mask: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        if is_ident(&tokens[i], "Ordering") && is_path_sep(tokens, i + 1) {
            let Some(variant) = tokens.get(i + 3) else {
                continue;
            };
            for ord in D3_ORDERINGS {
                if is_ident(variant, ord) {
                    push(
                        diags,
                        path,
                        variant.line,
                        "relaxed",
                        format!(
                            "`Ordering::{ord}` on a cross-task atomic needs a written safety \
                             argument: add `// lint:allow(relaxed) <why this ordering suffices>`"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D4: panic_path

fn rule_panic_path(path: &str, tokens: &[Token], mask: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let method_call = |name: &str| {
            is_ident(t, name)
                && i > 0
                && is_punct(&tokens[i - 1], '.')
                && tokens.get(i + 1).is_some_and(|n| is_punct(n, '('))
        };
        if method_call("unwrap") || method_call("expect") {
            push(
                diags,
                path,
                t.line,
                "panic_path",
                format!(
                    "`.{}()` in a runtime hot path aborts the whole job on an internal \
                     bug; route the failure through `MrError` or justify with \
                     `// lint:allow(panic_path) <reason>`",
                    t.text
                ),
            );
        }
        if is_ident(t, "panic") && tokens.get(i + 1).is_some_and(|n| is_punct(n, '!')) {
            push(
                diags,
                path,
                t.line,
                "panic_path",
                "`panic!` in a runtime hot path aborts the whole job; route the \
                 failure through `MrError` or justify with \
                 `// lint:allow(panic_path) <reason>`"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// D5: direct_fs

fn rule_direct_fs(path: &str, tokens: &[Token], mask: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `std::fs` (including `use std::fs::…`).
        let std_fs = t.text == "std"
            && is_path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|n| is_ident(n, "fs"));
        // Bare `fs::…` via `use std::fs;` — skip when preceded by `::`
        // (that occurrence is already flagged as part of `std::fs`).
        let bare_fs =
            t.text == "fs" && is_path_sep(tokens, i + 1) && !(i >= 2 && is_path_sep(tokens, i - 2));
        if std_fs || bare_fs {
            push(
                diags,
                path,
                t.line,
                "direct_fs",
                "`std::fs` bypasses the fault-injectable VFS seam, so chaos suites \
                 cannot cover this I/O; route it through `pper_vfs::Vfs` or justify \
                 with `// lint:allow(direct_fs) <reason>`"
                    .to_string(),
            );
            continue;
        }
        // `File::open(…)`, `OpenOptions::new(…)` associated calls.
        if D5_FS_TYPES.contains(&t.text.as_str()) && is_path_sep(tokens, i + 1) {
            push(
                diags,
                path,
                t.line,
                "direct_fs",
                format!(
                    "direct `{}::` file access bypasses the fault-injectable VFS seam; \
                     route it through `pper_vfs::Vfs` or justify with \
                     `// lint:allow(direct_fs) <reason>`",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1_PATH: &str = "crates/mapreduce/src/example.rs";

    fn rules_of(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_iter_flags_let_binding_iteration() {
        let src = "fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); \
                   for (k, v) in m.iter() { emit(k, v); } }";
        assert_eq!(rules_of(D1_PATH, src), vec!["hash_iter"]);
    }

    #[test]
    fn hash_iter_flags_for_loop_over_ref() {
        let src = "fn f() { let m = HashSet::new(); for k in &m { emit(k); } }";
        assert_eq!(rules_of(D1_PATH, src), vec!["hash_iter"]);
    }

    #[test]
    fn hash_iter_exempts_order_insensitive_sinks() {
        let src = "fn f() { let m: HashMap<u32, u64> = HashMap::new(); \
                   let total: u64 = m.values().sum(); \
                   let sorted: BTreeMap<u32, u64> = m.into_iter().collect::<BTreeMap<_, _>>(); }";
        assert!(rules_of(D1_PATH, src).is_empty());
    }

    #[test]
    fn hash_iter_exempts_let_annotated_ordered_collect() {
        // The collect target named on the binding, not as a turbofish.
        let src = "fn f(m: HashMap<String, u64>) { \
                   let ordered: BTreeMap<String, u64> = \
                   m.iter().map(|(k, v)| (k.clone(), *v)).collect(); }";
        assert!(rules_of(D1_PATH, src).is_empty());
        // A Vec annotation must NOT launder the order.
        let src = "fn f(m: HashMap<String, u64>) { \
                   let v: Vec<u64> = m.values().copied().collect(); }";
        assert_eq!(rules_of(D1_PATH, src), vec!["hash_iter"]);
    }

    #[test]
    fn hash_iter_respects_allow_with_reason() {
        let src = "fn f() { let m = FxHashMap::default();\n\
                   // lint:allow(hash_iter) counts are folded into a commutative sum\n\
                   for k in m.keys() { bump(k); } }";
        assert!(rules_of(D1_PATH, src).is_empty());
    }

    #[test]
    fn hash_iter_only_applies_to_deterministic_crates() {
        let src = "fn f() { let m = HashMap::new(); for k in m.keys() { emit(k); } }";
        assert!(rules_of("crates/simil/src/x.rs", src).is_empty());
        assert_eq!(rules_of("crates/er-core/src/x.rs", src), vec!["hash_iter"]);
    }

    #[test]
    fn hash_iter_sees_struct_fields() {
        let src = "struct S { cache: HashMap<u32, u32> } \
                   impl S { fn f(&self) { for k in self.cache.keys() { emit(k); } } }";
        assert_eq!(rules_of(D1_PATH, src), vec!["hash_iter"]);
    }

    #[test]
    fn wall_clock_flags_and_scopes() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); \
                   let r = thread_rng(); }";
        assert_eq!(
            rules_of("crates/er-core/src/x.rs", src),
            vec!["wall_clock", "wall_clock", "wall_clock"]
        );
        assert!(rules_of("crates/bench/src/x.rs", src).is_empty());
        assert!(rules_of("crates/datagen/src/x.rs", src).is_empty());
        assert!(rules_of("crates/mapreduce/src/cost.rs", src).is_empty());
    }

    #[test]
    fn relaxed_requires_justification() {
        let src = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(rules_of("crates/simil/src/x.rs", src), vec!["relaxed"]);
        let ok = "fn f(c: &AtomicUsize) {\n\
                  // lint:allow(relaxed) pure ticket counter, no data published\n\
                  c.fetch_add(1, Ordering::Relaxed); }";
        assert!(rules_of("crates/simil/src/x.rs", ok).is_empty());
    }

    #[test]
    fn relaxed_covers_acquire_release_acqrel() {
        for ord in ["Acquire", "Release", "AcqRel"] {
            let src = format!("fn f(c: &AtomicU64) {{ c.load(Ordering::{ord}); }}");
            assert_eq!(
                rules_of("crates/mapreduce/src/exec.rs", &src),
                vec!["relaxed"],
                "Ordering::{ord} must need a justification"
            );
            let ok = format!(
                "fn f(c: &AtomicU64) {{\n\
                 // lint:allow(relaxed) pairs with the release store in take()\n\
                 c.load(Ordering::{ord}); }}"
            );
            assert!(rules_of("crates/mapreduce/src/exec.rs", &ok).is_empty());
        }
        // SeqCst is the default-safe ordering and stays unflagged.
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }";
        assert!(rules_of("crates/mapreduce/src/exec.rs", src).is_empty());
    }

    #[test]
    fn panic_path_only_in_hot_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_of("crates/mapreduce/src/runtime.rs", src),
            vec!["panic_path"]
        );
        assert!(rules_of("crates/mapreduce/src/job.rs", src).is_empty());
        let src = "fn f() { panic!(\"boom\"); }";
        assert_eq!(
            rules_of("crates/mapreduce/src/shuffle.rs", src),
            vec!["panic_path"]
        );
        // The executor backends dispatch every simulated task, so they are
        // hot-path too.
        let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"claimed\") }";
        assert_eq!(
            rules_of("crates/mapreduce/src/exec.rs", src),
            vec!["panic_path"]
        );
    }

    #[test]
    fn panic_path_covers_every_journal_file() {
        // The journal crate is durability-critical end to end, so D4
        // applies to all of it, not just a file list.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_of("crates/journal/src/frame.rs", src),
            vec!["panic_path"]
        );
        assert_eq!(
            rules_of("crates/journal/src/store.rs", src),
            vec!["panic_path"]
        );
        // D1 and D2 cover it too.
        let src = "fn f() { let m = HashMap::new(); for k in m.keys() { emit(k); } \
                   let t = Instant::now(); }";
        assert_eq!(
            rules_of("crates/journal/src/journal.rs", src),
            vec!["hash_iter", "wall_clock"]
        );
    }

    #[test]
    fn direct_fs_scopes_to_out_of_core_crates() {
        let src = "fn f() { let bytes = std::fs::read(\"x\").unwrap(); }";
        assert!(rules_of("crates/store/src/lib.rs", src).contains(&"direct_fs".to_string()));
        assert!(rules_of("crates/journal/src/store.rs", src).contains(&"direct_fs".to_string()));
        assert_eq!(
            rules_of("crates/mapreduce/src/extsort.rs", src),
            vec!["direct_fs"]
        );
        // Elsewhere (and in the vfs crate itself) direct fs access is fine.
        assert!(rules_of("crates/mapreduce/src/runtime.rs", src)
            .iter()
            .all(|r| r != "direct_fs"));
        assert!(rules_of("crates/vfs/src/lib.rs", src).is_empty());
        assert!(rules_of("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn direct_fs_flags_type_entry_points_and_bare_fs() {
        let src = "use std::fs;\n\
                   fn f() {\n\
                   let _ = fs::remove_file(\"x\");\n\
                   let f = File::open(\"x\");\n\
                   let o = OpenOptions::new();\n\
                   }";
        let rules = rules_of("crates/store/src/lib.rs", src);
        // One for the use, one for bare `fs::`, one each for File/OpenOptions.
        assert_eq!(rules, vec!["direct_fs"; 4], "{rules:?}");
    }

    #[test]
    fn direct_fs_respects_allow_and_cfg_test() {
        let src = "fn f() {\n\
                   // lint:allow(direct_fs) mmap setup probes the real fs once at open\n\
                   let m = std::fs::metadata(\"x\"); }\n\
                   #[cfg(test)] mod tests { fn t() { std::fs::write(\"x\", b\"y\"); } }";
        assert!(rules_of("crates/store/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn ok() {} #[cfg(test)] mod tests { use super::*; \
                   fn f(x: Option<u32>) -> u32 { let t = Instant::now(); x.unwrap() } }";
        assert!(rules_of("crates/mapreduce/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn tests_dirs_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(rules_of("crates/mapreduce/tests/integration.rs", src).is_empty());
    }

    #[test]
    fn allow_annotations_are_validated() {
        let src = "// lint:allow(hash_iter)\nfn f() {}\n// lint:allow(bogus) reason\n";
        let rules = rules_of("crates/simil/src/x.rs", src);
        assert!(rules.contains(&"allow_reason".to_string()), "{rules:?}");
        assert!(rules.contains(&"allow_unknown".to_string()), "{rules:?}");
    }

    #[test]
    fn diagnostics_carry_file_and_line() {
        let src = "fn a() {}\nfn f() {\n    let t = Instant::now();\n}\n";
        let diags = lint_source("crates/er-core/src/basic.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].file, "crates/er-core/src/basic.rs");
        assert!(diags[0]
            .render()
            .starts_with("crates/er-core/src/basic.rs:3: [wall_clock]"));
    }
}
