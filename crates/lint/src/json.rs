//! A minimal JSON reader, used to validate the linter's own machine
//! outputs (`--format json`, `--format sarif`) in tests without external
//! dependencies. Write-side rendering lives with each format
//! ([`crate::to_json`], [`crate::sarif`]); this module only parses.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(src, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(src, bytes, pos, depth + 1)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(src, bytes, pos, depth + 1)?;
                fields.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(src, bytes, pos).map(Value::Str),
        Some(b't') if src[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if src[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if src[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            src[start..*pos]
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        _ => Err(format!("unexpected byte at {pos}")),
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = src.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            c if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8: copy the whole scalar.
                let s = &src[*pos..];
                let ch = s.chars().next().ok_or("truncated utf-8")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_linters_own_json() {
        let diags = vec![crate::Diagnostic {
            file: "a\"b.rs".into(),
            line: 7,
            rule: "relaxed".into(),
            message: "line1\nline2".into(),
        }];
        let v = parse(&crate::to_json(&diags)).expect("parse");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("file").and_then(Value::as_str), Some("a\"b.rs"));
        assert_eq!(arr[0].get("line").and_then(Value::as_num), Some(7.0));
        assert_eq!(
            arr[0].get("message").and_then(Value::as_str),
            Some("line1\nline2")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "[1] trailing", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_nested_structures_and_escapes() {
        let v = parse(r#"{"a": [1, {"b": "A\n"}], "c": null, "d": true}"#).expect("parse");
        assert_eq!(
            v.get("a")
                .and_then(Value::as_arr)
                .and_then(|a| a.get(1))
                .and_then(|o| o.get("b"))
                .and_then(Value::as_str),
            Some("A\n")
        );
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
    }
}
