//! Cross-file call-graph taint propagation.
//!
//! The determinism invariants (rules D1–D5) protect whatever is *reachable*
//! from the deterministic entry points — map/reduce task bodies,
//! `Executor::run` dispatch, the shuffle builders, and journal replay — not
//! just whatever happens to live in a hot-path file. This module builds a
//! whole-workspace call graph from the [`crate::parser`] output, marks the
//! entry points, computes the reachable function set, and reports every
//! sink (wall-clock read, hash iteration, non-SeqCst atomic, hot-path
//! panic, direct `std::fs`) found inside it — with the full call chain from
//! the entry point in the diagnostic, so "a `HashMap::iter` two helpers
//! away from `reduce_partition`" is as visible as one in `runtime.rs`.
//!
//! Resolution is name-based and deliberately over-approximate (no type
//! inference): a method call `.score(…)` links to every workspace method
//! named `score`; qualified calls `T::f(…)` link to matching impl types,
//! module files, or imported crates. Over-approximation can only add
//! edges, so a sink the analysis reports as reachable should be treated as
//! reachable until a human argues otherwise in a `lint:allow`.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{CallSite, FnDef, ParsedFile};

/// Trait-dispatch entry points: an impl of `Trait::method` is a
/// deterministic task body or dispatch site.
const ENTRY_TRAIT_METHODS: &[(&str, &str)] = &[
    ("Mapper", "map"),
    ("Combiner", "combine"),
    ("Reducer", "reduce"),
    ("PartitionReducer", "reduce_partition"),
    ("Executor", "run"),
];

/// Inherent-method entry points, `(type, method)`: the shuffle builders and
/// journal replay.
const ENTRY_TYPE_METHODS: &[(&str, &str)] = &[
    ("GroupedPartition", "from_buckets"),
    ("GroupedPartition", "from_pairs"),
    ("GroupedPartition", "from_sorted_pairs"),
    ("GroupedPartition", "from_buckets_spilling"),
    ("JournalState", "replay"),
];

/// Free-function entry points, `(crate_dir, fn_name)`.
const ENTRY_FREE_FNS: &[(&str, &str)] = &[
    ("mapreduce", "shuffle_partitions"),
    ("mapreduce", "shuffle_partitions_with"),
    ("mapreduce", "shuffle_partitions_spilling"),
    ("mapreduce", "shuffle_partitions_spilling_with"),
    ("journal", "recover"),
    ("journal", "read_event_at"),
];

/// One function node in the workspace graph.
pub struct FnNode {
    /// Index of the owning file in the analyzed set.
    pub file: usize,
    pub def: FnDef,
    /// Crate directory of the owning file (`mapreduce`, `er-core`, …).
    pub crate_dir: String,
    /// File stem of the owning file (`shuffle` for `shuffle.rs`).
    pub file_stem: String,
}

/// The workspace call graph plus the entry-point reachability solution.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Resolved edges, caller → (callee, call line).
    pub edges: Vec<Vec<(usize, usize)>>,
    /// `Some((parent, call_line))` for reachable nodes (entry points have
    /// `parent == usize::MAX`), `None` for unreachable ones.
    reach: Vec<Option<(usize, usize)>>,
    /// Entry-point node ids.
    pub entries: Vec<usize>,
}

/// A human-readable label for an entry point: `Reducer::reduce`,
/// `GroupedPartition::from_buckets`, or a bare fn name.
fn entry_label(node: &FnNode) -> String {
    match (&node.def.impl_trait, &node.def.impl_type) {
        (Some(tr), _) => format!("{tr}::{}", node.def.name),
        (None, Some(ty)) => format!("{ty}::{}", node.def.name),
        _ => node.def.name.clone(),
    }
}

fn is_entry(node: &FnNode) -> bool {
    if node.def.masked {
        return false;
    }
    if let Some(tr) = &node.def.impl_trait {
        if ENTRY_TRAIT_METHODS
            .iter()
            .any(|&(t, m)| t == tr && m == node.def.name)
        {
            return true;
        }
    }
    if let Some(ty) = &node.def.impl_type {
        if node.def.impl_trait.is_none()
            && ENTRY_TYPE_METHODS
                .iter()
                .any(|&(t, m)| t == ty && m == node.def.name)
        {
            return true;
        }
    }
    node.def.impl_type.is_none()
        && ENTRY_FREE_FNS
            .iter()
            .any(|&(c, f)| c == node.crate_dir && f == node.def.name)
}

/// Map an imported crate ident (`pper_simil`) to its directory under
/// `crates/` (`simil`).
fn crate_dir_of_ident(ident: &str) -> Option<String> {
    ident
        .strip_prefix("pper_")
        .map(|rest| rest.replace('_', "-"))
}

impl CallGraph {
    /// Build the graph over the parsed files. `files[i]` must describe the
    /// same file as `parsed[i]`; `meta[i]` is `(crate_dir, file_stem)`.
    pub fn build(parsed: &[ParsedFile], meta: &[(String, String)]) -> CallGraph {
        let mut nodes: Vec<FnNode> = Vec::new();
        for (fi, pf) in parsed.iter().enumerate() {
            let (crate_dir, file_stem) = meta
                .get(fi)
                .cloned()
                .unwrap_or_else(|| (String::new(), String::new()));
            for def in &pf.fns {
                nodes.push(FnNode {
                    file: fi,
                    def: def.clone(),
                    crate_dir: crate_dir.clone(),
                    file_stem: file_stem.clone(),
                });
            }
        }

        // Name → node-id index, split by kind.
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut any_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if n.def.masked {
                continue; // test-only fns neither receive nor forward taint
            }
            any_by_name.entry(&n.def.name).or_default().push(id);
            if n.def.impl_type.is_some() {
                methods_by_name.entry(&n.def.name).or_default().push(id);
            } else {
                free_by_name.entry(&n.def.name).or_default().push(id);
            }
        }

        // Per-file import table: simple name → path.
        let imports: Vec<BTreeMap<&str, &str>> = parsed
            .iter()
            .map(|pf| {
                pf.imports
                    .iter()
                    .map(|im| (im.name.as_str(), im.path.as_str()))
                    .collect()
            })
            .collect();

        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
        for (caller, node) in nodes.iter().enumerate() {
            if node.def.masked {
                continue;
            }
            for call in &node.def.calls {
                let targets = resolve(
                    call,
                    node,
                    &nodes,
                    &methods_by_name,
                    &free_by_name,
                    &any_by_name,
                    imports.get(node.file),
                );
                for t in targets {
                    if t != caller {
                        edges[caller].push((t, call.line));
                    }
                }
            }
            edges[caller].sort_unstable();
            edges[caller].dedup();
        }

        let mut entries: Vec<usize> = (0..nodes.len()).filter(|&i| is_entry(&nodes[i])).collect();
        entries.sort_unstable();

        // Multi-source BFS with parent pointers for chain reconstruction.
        let mut reach: Vec<Option<(usize, usize)>> = vec![None; nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in &entries {
            reach[e] = Some((usize::MAX, 0));
            queue.push_back(e);
        }
        while let Some(cur) = queue.pop_front() {
            for &(next, line) in &edges[cur] {
                if reach[next].is_none() {
                    reach[next] = Some((cur, line));
                    queue.push_back(next);
                }
            }
        }

        CallGraph {
            nodes,
            edges,
            reach,
            entries,
        }
    }

    /// Node ids of reachable functions owned by file `fi`.
    pub fn reachable_in_file(&self, fi: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&id| self.nodes[id].file == fi && self.reach[id].is_some())
            .collect()
    }

    /// The node (if any) in file `fi` whose body contains the sink on
    /// `line` — matched by token span having been impossible here, the
    /// innermost fn by line range is approximated at the caller instead.
    pub fn is_reachable(&self, id: usize) -> bool {
        self.reach.get(id).is_some_and(|r| r.is_some())
    }

    /// Render the call chain from an entry point down to `id`, e.g.
    /// `` `Reducer::reduce` (crates/er-core/src/basic.rs:40) → `score_block`
    /// (crates/simil/src/batch.rs:12) ``. `paths[f]` names file `f`.
    pub fn chain_to(&self, id: usize, paths: &[String]) -> String {
        let mut hops: Vec<usize> = Vec::new();
        let mut cur = id;
        let mut guard = 0usize;
        while guard <= self.nodes.len() {
            hops.push(cur);
            match self.reach.get(cur).copied().flatten() {
                Some((parent, _)) if parent != usize::MAX => cur = parent,
                _ => break,
            }
            guard += 1;
        }
        hops.reverse();
        let fallback = String::new();
        let parts: Vec<String> = hops
            .iter()
            .map(|&h| {
                let n = &self.nodes[h];
                let path = paths.get(n.file).unwrap_or(&fallback);
                let label = if self.reach[h].is_some_and(|(p, _)| p == usize::MAX) {
                    entry_label(n)
                } else {
                    n.def.name.clone()
                };
                format!("`{label}` ({path}:{line})", line = n.def.line)
            })
            .collect();
        parts.join(" → ")
    }

    /// Entry labels, for diagnostics and debugging.
    pub fn entry_labels(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|&e| entry_label(&self.nodes[e]))
            .collect()
    }
}

/// Resolve one call site to candidate node ids. Over-approximate by
/// design; an empty result means "nothing in the workspace can be the
/// callee" (std / external calls).
fn resolve(
    call: &CallSite,
    caller: &FnNode,
    nodes: &[FnNode],
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    any_by_name: &BTreeMap<&str, Vec<usize>>,
    imports: Option<&BTreeMap<&str, &str>>,
) -> Vec<usize> {
    let name = call.name.as_str();
    if call.method {
        // `.name(…)`: any workspace method with that name.
        return methods_by_name.get(name).cloned().unwrap_or_default();
    }
    if let Some(q) = &call.qualifier {
        let Some(cands) = any_by_name.get(name) else {
            return Vec::new();
        };
        let mut out: Vec<usize> = Vec::new();
        for &id in cands {
            let n = &nodes[id];
            let hit = n.def.impl_type.as_deref() == Some(q.as_str())
                || (q == "Self" && n.def.impl_type == caller.def.impl_type)
                || n.file_stem == *q
                || call
                    .root
                    .as_deref()
                    .and_then(crate_dir_of_ident)
                    .is_some_and(|dir| dir == n.crate_dir)
                || imports.is_some_and(|im| {
                    im.get(name).is_some_and(|path| {
                        path.split("::")
                            .next()
                            .and_then(crate_dir_of_ident)
                            .is_some_and(|dir| dir == n.crate_dir)
                    })
                });
            if hit {
                out.push(id);
            }
        }
        return out;
    }
    // Plain call: free fns, nearest scope first.
    let Some(cands) = free_by_name.get(name) else {
        return Vec::new();
    };
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| nodes[id].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    // Imported from a specific crate?
    if let Some(im) = imports {
        if let Some(path) = im.get(name) {
            if let Some(dir) = path.split("::").next().and_then(crate_dir_of_ident) {
                let from_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| nodes[id].crate_dir == dir)
                    .collect();
                if !from_crate.is_empty() {
                    return from_crate;
                }
            }
        }
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&id| nodes[id].crate_dir == caller.crate_dir)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

/// Find the node in `graph` owning file `fi` whose `fn` body most tightly
/// encloses `line` (by line heuristic: the fn with the greatest start line
/// ≤ the sink line among fns of that file whose body spans it, using token
/// spans mapped back through line numbers is approximated by start lines
/// since bodies do not interleave).
pub fn owner_of_line(graph: &CallGraph, fi: usize, line: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (id, n) in graph.nodes.iter().enumerate() {
        if n.file != fi || n.def.line > line {
            continue;
        }
        // `is_none_or` needs Rust 1.82; the workspace MSRV is 1.80.
        #[allow(clippy::unnecessary_map_or)]
        if best.map_or(true, |b| graph.nodes[b].def.line < n.def.line) {
            best = Some(id);
        }
    }
    best
}

/// The set of entry node ids as a sorted set, exposed for tests.
pub fn entry_set(graph: &CallGraph) -> BTreeSet<usize> {
    graph.entries.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::rules::cfg_test_mask;

    fn graph_of(files: &[(&str, &str)]) -> (CallGraph, Vec<String>) {
        let mut parsed = Vec::new();
        let mut meta = Vec::new();
        let mut paths = Vec::new();
        for (path, src) in files {
            let lexed = lex(src);
            let mask = cfg_test_mask(&lexed.tokens);
            parsed.push(parse_file(&lexed.tokens, &mask));
            let comps: Vec<&str> = path.split('/').collect();
            let crate_dir = comps
                .iter()
                .position(|&c| c == "crates")
                .and_then(|i| comps.get(i + 1))
                .copied()
                .unwrap_or("")
                .to_string();
            let stem = comps
                .last()
                .and_then(|f| f.strip_suffix(".rs"))
                .unwrap_or("")
                .to_string();
            meta.push((crate_dir, stem));
            paths.push(path.to_string());
        }
        (CallGraph::build(&parsed, &meta), paths)
    }

    #[test]
    fn trait_impl_entry_reaches_two_hops() {
        let (g, paths) = graph_of(&[(
            "crates/er-core/src/x.rs",
            "impl Reducer for Foo { fn reduce(&self) { score(1); } } \
             fn score(x: u32) { helper(x); } \
             fn helper(_x: u32) { }",
        )]);
        assert_eq!(g.entries.len(), 1);
        let helper = g
            .nodes
            .iter()
            .position(|n| n.def.name == "helper")
            .expect("helper node");
        assert!(g.is_reachable(helper));
        let chain = g.chain_to(helper, &paths);
        assert!(chain.contains("`Reducer::reduce`"), "{chain}");
        assert!(chain.contains("`score`"), "{chain}");
        assert!(chain.contains("`helper`"), "{chain}");
    }

    #[test]
    fn unreachable_helpers_stay_unreachable() {
        let (g, _) = graph_of(&[(
            "crates/er-core/src/x.rs",
            "impl Reducer for Foo { fn reduce(&self) { } } fn orphan() { }",
        )]);
        let orphan = g
            .nodes
            .iter()
            .position(|n| n.def.name == "orphan")
            .expect("orphan node");
        assert!(!g.is_reachable(orphan));
    }

    #[test]
    fn cross_file_resolution_via_import() {
        let (g, _) = graph_of(&[
            (
                "crates/er-core/src/job.rs",
                "use pper_simil::score_block; \
                 impl Reducer for Foo { fn reduce(&self) { score_block(); } }",
            ),
            ("crates/simil/src/batch.rs", "pub fn score_block() { }"),
        ]);
        let callee = g
            .nodes
            .iter()
            .position(|n| n.def.name == "score_block")
            .expect("callee");
        assert!(g.is_reachable(callee));
    }

    #[test]
    fn method_calls_link_by_name() {
        let (g, _) = graph_of(&[(
            "crates/mapreduce/src/shuffle.rs",
            "pub fn shuffle_partitions() { s.build_groups(); } \
             impl Arena { fn build_groups(&self) { } }",
        )]);
        let callee = g
            .nodes
            .iter()
            .position(|n| n.def.name == "build_groups")
            .expect("callee");
        assert!(g.is_reachable(callee));
    }

    #[test]
    fn masked_fns_are_not_entries_or_targets() {
        let (g, _) = graph_of(&[(
            "crates/er-core/src/x.rs",
            "#[cfg(test)] mod t { use super::*; \
             impl Reducer for Foo { fn reduce(&self) { helper(); } } } \
             fn helper() { }",
        )]);
        assert!(g.entries.is_empty());
    }

    #[test]
    fn owner_of_line_picks_innermost_by_start() {
        let (g, _) = graph_of(&[(
            "crates/er-core/src/x.rs",
            "fn a() {\n  x();\n}\nfn b() {\n  y();\n}\n",
        )]);
        let owner = owner_of_line(&g, 0, 5).expect("owner");
        assert_eq!(g.nodes[owner].def.name, "b");
    }
}
