//! Whole-workspace analysis: legacy file/crate scoping plus call-graph
//! reachability promotion.
//!
//! [`analyze`] is the one entry point the CLI and the conformance tests
//! use. Per file it runs every rule's sink detector
//! ([`crate::rules::collect_sinks`]); across files it builds the workspace
//! call graph ([`crate::taint::CallGraph`]) and promotes any
//! reach-eligible sink whose enclosing function is reachable from a
//! deterministic entry point — wherever the file sits. A sink that fires
//! both ways is reported once, with the call chain appended, because the
//! chain is the actionable part: it names the entry point whose output the
//! sink can perturb.

use crate::lexer::{lex, LexedFile};
use crate::parser::{parse_file, ParsedFile};
use crate::rules::{apply_allows, cfg_test_mask, classify, collect_sinks, Diagnostic, Sink};
use crate::taint::{owner_of_line, CallGraph};

/// One file handed to [`analyze`]. `path` is used for scoping and appears
/// verbatim in diagnostics.
pub struct SourceFile {
    pub path: String,
    pub src: String,
}

/// Analysis options.
pub struct Options {
    /// Promote sinks in functions reachable from deterministic entry
    /// points (the call-graph layer). Off = legacy file scoping only,
    /// byte-for-byte equivalent to running [`crate::lint_source`] per file.
    pub reachability: bool,
    /// Report `lint:allow` annotations that suppress nothing
    /// (`dead_allow`).
    pub check_allows: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            reachability: true,
            check_allows: false,
        }
    }
}

struct FileCtx {
    path: String,
    lexed: LexedFile,
    sinks: Vec<Sink>,
}

/// Analyze a set of files together. Exempt files (tests, examples,
/// benches, fixtures, shims, the linter itself) contribute neither sinks
/// nor call-graph nodes.
pub fn analyze(files: &[SourceFile], opts: &Options) -> Vec<Diagnostic> {
    let mut ctxs: Vec<FileCtx> = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut meta: Vec<(String, String)> = Vec::new();
    let mut paths: Vec<String> = Vec::new();

    for f in files {
        let scope = classify(&f.path);
        if scope.exempt {
            continue;
        }
        let lexed = lex(&f.src);
        let mask = cfg_test_mask(&lexed.tokens);
        let sinks = collect_sinks(&f.path, &lexed, &mask, &scope);
        parsed.push(parse_file(&lexed.tokens, &mask));
        let stem = scope
            .file_name
            .strip_suffix(".rs")
            .unwrap_or(&scope.file_name)
            .to_string();
        meta.push((scope.crate_dir.clone(), stem));
        paths.push(f.path.clone());
        ctxs.push(FileCtx {
            path: f.path.clone(),
            lexed,
            sinks,
        });
    }

    let graph = opts.reachability.then(|| CallGraph::build(&parsed, &meta));

    let mut out: Vec<Diagnostic> = Vec::new();
    for (fi, ctx) in ctxs.into_iter().enumerate() {
        let mut raw: Vec<Diagnostic> = Vec::new();
        for sink in ctx.sinks {
            let chain = graph.as_ref().and_then(|g| {
                if !sink.reach {
                    return None;
                }
                let owner = owner_of_line(g, fi, sink.diag.line)?;
                g.is_reachable(owner).then(|| g.chain_to(owner, &paths))
            });
            match chain {
                Some(chain) => {
                    let mut diag = sink.diag;
                    diag.message
                        .push_str(&format!("; reachable from deterministic entry via {chain}"));
                    raw.push(diag);
                }
                None if sink.legacy => raw.push(sink.diag),
                None => {}
            }
        }
        out.extend(apply_allows(&ctx.path, &ctx.lexed, raw, opts.check_allows));
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(list: &[(&str, &str)]) -> Vec<SourceFile> {
        list.iter()
            .map(|(p, s)| SourceFile {
                path: p.to_string(),
                src: s.to_string(),
            })
            .collect()
    }

    #[test]
    fn reachability_promotes_sinks_outside_legacy_scope() {
        // `simil` is not a D1 crate, so the legacy scoping never flags
        // hash iteration there — but the iteration is two calls below a
        // Reducer impl, so its order leaks into reducer output.
        let fs = files(&[
            (
                "crates/er-core/src/job.rs",
                "use pper_simil::score_all; \
                 impl Reducer for Dedup { fn reduce(&self) { score_all(); } }",
            ),
            (
                "crates/simil/src/batch.rs",
                "pub fn score_all() { tally(); }\n\
                 fn tally() {\n\
                 \x20   let m = HashMap::new();\n\
                 \x20   for k in m.keys() { emit(k); }\n\
                 }\n",
            ),
        ]);
        let legacy = analyze(
            &fs,
            &Options {
                reachability: false,
                ..Options::default()
            },
        );
        assert!(
            legacy.iter().all(|d| d.rule != "hash_iter"),
            "legacy scoping must miss the simil sink: {legacy:?}"
        );
        let full = analyze(&fs, &Options::default());
        let hit = full
            .iter()
            .find(|d| d.rule == "hash_iter")
            .expect("reachability must flag the simil sink");
        assert_eq!(hit.file, "crates/simil/src/batch.rs");
        assert!(
            hit.message.contains("`Reducer::reduce`") && hit.message.contains("`tally`"),
            "chain must run entry → sink: {}",
            hit.message
        );
    }

    #[test]
    fn legacy_sinks_gain_the_chain_when_reachable() {
        let fs = files(&[(
            "crates/mapreduce/src/runtime.rs",
            "impl Executor for Pool { fn run(&self) { let t = Instant::now(); } }",
        )]);
        let full = analyze(&fs, &Options::default());
        assert_eq!(full.len(), 1);
        assert!(
            full[0]
                .message
                .contains("reachable from deterministic entry"),
            "{}",
            full[0].message
        );
    }

    #[test]
    fn unreachable_sinks_outside_legacy_scope_stay_silent() {
        let fs = files(&[(
            "crates/simil/src/util.rs",
            "fn orphan() { let m = HashMap::new(); for k in m.keys() { emit(k); } }",
        )]);
        assert!(analyze(&fs, &Options::default()).is_empty());
    }

    #[test]
    fn allows_suppress_promoted_sinks_and_dead_allows_are_reported() {
        let fs = files(&[(
            "crates/er-core/src/x.rs",
            "impl Reducer for D { fn reduce(&self) {\n\
             // lint:allow(wall_clock) coarse progress stamp, not in compare path\n\
             let t = Instant::now(); } }\n\
             // lint:allow(hash_iter) nothing here iterates\n\
             fn unrelated() {}\n",
        )]);
        let quiet = analyze(&fs, &Options::default());
        assert!(quiet.is_empty(), "{quiet:?}");
        let checked = analyze(
            &fs,
            &Options {
                check_allows: true,
                ..Options::default()
            },
        );
        assert_eq!(checked.len(), 1, "{checked:?}");
        assert_eq!(checked[0].rule, "dead_allow");
        assert!(checked[0].message.contains("hash_iter"));
    }

    #[test]
    fn exempt_files_contribute_nothing() {
        let fs = files(&[
            (
                "crates/er-core/tests/it.rs",
                "impl Reducer for T { fn reduce(&self) { helper(); } }",
            ),
            (
                "crates/simil/src/h.rs",
                "pub fn helper() { let m = HashMap::new(); for k in m.keys() { emit(k); } }",
            ),
        ]);
        // The only path to `helper` starts in a tests/ file, which is out
        // of scope — no entry, no reach, and `simil` is outside the D1
        // legacy scope, so no diagnostics at all.
        assert!(analyze(&fs, &Options::default()).is_empty());
    }
}
