//! Baseline suppression files for `--baseline` / `--write-baseline`.
//!
//! A baseline is a plain-text file with one `rule path` pair per line
//! (`#` comments and blank lines ignored). Diagnostics whose (rule, file)
//! match an entry are suppressed — the mechanism for adopting a new rule
//! without blocking CI on a backlog. Every entry must still earn its keep:
//! an entry that matches nothing produces a `baseline_stale` diagnostic so
//! the file shrinks as debt is paid down, never silently rots.

use crate::rules::Diagnostic;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    /// 1-based line in the baseline file, for stale-entry diagnostics.
    pub line: usize,
}

/// Parse baseline text. Malformed lines are errors, not ignored — a typo'd
/// suppression that silently matched nothing would defeat the audit.
pub fn parse(src: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(file), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "baseline line {}: expected `rule path`, got {raw:?}",
                idx + 1
            ));
        };
        entries.push(Entry {
            rule: rule.to_string(),
            file: file.replace('\\', "/"),
            line: idx + 1,
        });
    }
    Ok(entries)
}

/// Split `diags` into (kept, suppressed-count) and append `baseline_stale`
/// diagnostics for entries that matched nothing.
pub fn apply(
    diags: Vec<Diagnostic>,
    entries: &[Entry],
    baseline_path: &str,
) -> (Vec<Diagnostic>, usize) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for d in diags {
        let file = d.file.replace('\\', "/");
        let hit = entries
            .iter()
            .position(|e| e.rule == d.rule && e.file == file);
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(d),
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !used[i] {
            kept.push(Diagnostic {
                file: baseline_path.to_string(),
                line: e.line,
                rule: "baseline_stale".into(),
                message: format!(
                    "baseline entry `{} {}` no longer matches any diagnostic; delete it",
                    e.rule, e.file
                ),
            });
        }
    }
    (kept, suppressed)
}

/// Render a baseline file covering `diags`, sorted and deduplicated.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut pairs: Vec<(String, String)> = diags
        .iter()
        .map(|d| (d.rule.clone(), d.file.replace('\\', "/")))
        .collect();
    pairs.sort();
    pairs.dedup();
    let mut out = String::from(
        "# pper-lint baseline: one `rule path` per line. Entries suppress all\n\
         # matching diagnostics; stale entries are themselves reported.\n",
    );
    for (rule, file) in pairs {
        out.push_str(&rule);
        out.push(' ');
        out.push_str(&file);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule: rule.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn parse_skips_comments_and_rejects_malformed() {
        let src = "# header\n\nrelaxed crates/a/src/lib.rs\nwall_clock src/main.rs\n";
        let entries = parse(src).expect("parse");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "relaxed");
        assert_eq!(entries[1].line, 4);
        assert!(parse("relaxed\n").is_err());
        assert!(parse("relaxed a b\n").is_err());
    }

    #[test]
    fn apply_suppresses_matches_and_flags_stale() {
        let entries = parse("relaxed crates/a/src/lib.rs\nhash_iter crates/gone.rs\n").expect("ok");
        let diags = vec![
            diag("relaxed", "crates/a/src/lib.rs", 3),
            diag("relaxed", "crates/a/src/lib.rs", 9),
            diag("wall_clock", "crates/b/src/lib.rs", 1),
        ];
        let (kept, suppressed) = apply(diags, &entries, "lint-baseline.txt");
        assert_eq!(suppressed, 2);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].rule, "wall_clock");
        assert_eq!(kept[1].rule, "baseline_stale");
        assert_eq!(kept[1].file, "lint-baseline.txt");
        assert_eq!(kept[1].line, 2);
    }

    #[test]
    fn render_is_sorted_deduped_and_reparseable() {
        let diags = vec![
            diag("wall_clock", "b.rs", 1),
            diag("relaxed", "a.rs", 2),
            diag("relaxed", "a.rs", 9),
        ];
        let text = render(&diags);
        let entries = parse(&text).expect("round-trip");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "relaxed");
        assert_eq!(entries[1].rule, "wall_clock");
        let (kept, suppressed) = apply(diags, &entries, "bl");
        assert_eq!(suppressed, 3);
        assert!(kept.is_empty(), "freshly written baseline suppresses all");
    }
}
