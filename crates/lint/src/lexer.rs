//! A minimal Rust lexer sufficient for token-level invariant checks.
//!
//! The workspace builds fully offline, so a real parser (`syn`) is not
//! available; the rules in [`crate::rules`] only need an honest token
//! stream — identifiers, punctuation, and literals with line numbers,
//! with comments and string contents stripped so `"Instant::now"` inside
//! a string can never trigger a rule. Comments are not discarded
//! entirely: `lint:allow(...)` annotations are harvested from them, and
//! comment-only lines are recorded so an allow above a statement can be
//! attached to it.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text; punctuation carries the single character, literals an
    /// empty string (their content is irrelevant to every rule).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    Lifetime,
    Number,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    Punct,
}

/// A `lint:allow(rule) reason` annotation harvested from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    pub rule: String,
    /// Free-text justification following the closing paren (trimmed).
    pub reason: String,
    /// 1-based line the annotation sits on.
    pub line: usize,
}

/// Lexer output: the token stream plus comment-derived side tables.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowAnnotation>,
    /// Lines that contain only comments and/or whitespace (1-based). Used
    /// to let an allow annotation above a statement cover it.
    pub comment_only_lines: Vec<usize>,
    /// Lines whose comment text contains a `SAFETY:` marker (1-based),
    /// consumed by rule U1 (`safety_comment`).
    pub safety_lines: Vec<usize>,
}

impl LexedFile {
    /// All allow annotations covering `line`: annotations on the line
    /// itself plus any in the contiguous run of comment-only lines
    /// directly above it.
    pub fn allows_covering(&self, line: usize) -> impl Iterator<Item = &AllowAnnotation> {
        let mut first = line;
        while first > 1 && self.comment_only_lines.binary_search(&(first - 1)).is_ok() {
            first -= 1;
        }
        self.allows
            .iter()
            .filter(move |a| a.line >= first && a.line <= line)
    }

    /// True when a `SAFETY:` comment covers `line`: on the line itself or
    /// in the contiguous run of comment-only lines directly above it.
    pub fn safety_covering(&self, line: usize) -> bool {
        let mut first = line;
        while first > 1 && self.comment_only_lines.binary_search(&(first - 1)).is_ok() {
            first -= 1;
        }
        self.safety_lines.iter().any(|&l| l >= first && l <= line)
    }
}

/// Lex one file. Unterminated literals/comments are tolerated (the rest of
/// the file is swallowed) — the linter must never panic on source it reads.
pub fn lex(src: &str) -> LexedFile {
    let bytes = src.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1usize;
    // Per-line flags for comment-only detection.
    let mut line_has_code = false;
    let mut line_has_comment = false;
    let mut line_flags: Vec<(usize, bool, bool)> = Vec::new();

    macro_rules! newline {
        () => {
            line_flags.push((line, line_has_code, line_has_comment));
            line_has_code = false;
            line_has_comment = false;
            line += 1;
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                newline!();
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                line_has_comment = true;
                harvest_allow(&src[start..i], line, &mut out.allows);
                harvest_safety(&src[start..i], line, &mut out.safety_lines);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                line_has_comment = true;
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        newline!();
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line_has_comment = true;
                harvest_allow(&src[start..i], start_line, &mut out.allows);
                harvest_safety(&src[start..i], start_line, &mut out.safety_lines);
            }
            b'"' => {
                line_has_code = true;
                i = skip_string(bytes, i + 1, &mut line, &mut line_flags);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                line_has_code = true;
                let tok_line = line;
                i = skip_raw_or_byte_string(bytes, i, &mut line, &mut line_flags);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
            }
            b'\'' => {
                line_has_code = true;
                // Distinguish lifetimes ('a, 'static) from char literals
                // ('a', '\n', '字'): a lifetime is a quote + ident with no
                // closing quote right after the ident.
                let (tok, next) = lex_quote(src, i, line);
                out.tokens.push(tok);
                i = next;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                line_has_code = true;
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a float at a `..` range or a method call on a literal.
                    if bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|&n| !n.is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: String::new(),
                    line,
                });
            }
            _ => {
                line_has_code = true;
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    line_flags.push((line, line_has_code, line_has_comment));
    out.comment_only_lines = line_flags
        .iter()
        .filter(|&&(_, code, comment)| comment && !code)
        .map(|&(l, _, _)| l)
        .collect();
    out
}

/// Multi-byte UTF-8 continuation bytes never collide with the ASCII
/// delimiters we scan for, so byte-wise scanning is sound.
fn skip_string(
    bytes: &[u8],
    mut i: usize,
    line: &mut usize,
    line_flags: &mut Vec<(usize, bool, bool)>,
) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                line_flags.push((*line, true, false));
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  b"..."  br#"..."#  rb... (not real Rust, ignored)
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    bytes[i] == b'b' && bytes.get(j) == Some(&b'"')
}

fn skip_raw_or_byte_string(
    bytes: &[u8],
    mut i: usize,
    line: &mut usize,
    line_flags: &mut Vec<(usize, bool, bool)>,
) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                line_flags.push((*line, true, false));
                *line += 1;
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn lex_quote(src: &str, i: usize, line: usize) -> (Token, usize) {
    let bytes = src.as_bytes();
    let rest = &bytes[i + 1..];
    // Lifetime: 'ident not followed by a closing quote.
    if rest
        .first()
        .is_some_and(|&c| c == b'_' || c.is_ascii_alphabetic())
    {
        let mut j = 1;
        while rest
            .get(j)
            .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
        {
            j += 1;
        }
        if rest.get(j) != Some(&b'\'') {
            return (
                Token {
                    kind: TokenKind::Lifetime,
                    text: String::new(),
                    line,
                },
                i + 1 + j,
            );
        }
    }
    // Char literal: skip escape or one (possibly multi-byte) char, then
    // scan to the closing quote.
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
    } else {
        j += 1;
        while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
            j += 1;
        }
    }
    while j < bytes.len() && bytes[j] != b'\'' {
        j += 1;
    }
    (
        Token {
            kind: TokenKind::Literal,
            text: String::new(),
            line,
        },
        (j + 1).min(bytes.len()),
    )
}

/// Pull every `lint:allow(rule) reason` out of one comment's text. The
/// reason runs to the end of the comment line (block comments: to the end
/// of the physical line the annotation starts on).
fn harvest_allow(comment: &str, first_line: usize, out: &mut Vec<AllowAnnotation>) {
    for (offset, text) in comment.lines().enumerate() {
        let mut rest = text;
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rule = after[..close].trim().to_string();
            let reason = after[close + 1..]
                .trim()
                .trim_end_matches("*/")
                .trim()
                .to_string();
            out.push(AllowAnnotation {
                rule,
                reason,
                line: first_line + offset,
            });
            rest = &after[close + 1..];
        }
    }
}

/// Record the line of every `SAFETY:` marker in one comment's text, for
/// rule U1.
fn harvest_safety(comment: &str, first_line: usize, out: &mut Vec<usize>) {
    for (offset, text) in comment.lines().enumerate() {
        if text.contains("SAFETY:") {
            out.push(first_line + offset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap.iter() in a block /* nested */ comment */
            let s = "Instant::now()";
            let r = r#"SystemTime::now()"#;
            let c = 'x';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'y'; let nl = '\\n';";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        // After the char literals the lexer resynchronises on real idents.
        assert!(lexed.tokens.iter().any(|t| t.text == "nl"));
    }

    #[test]
    fn allow_annotations_are_harvested_with_reasons() {
        let src = "\n// lint:allow(relaxed) cursor is a pure ticket dispenser\nlet x = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rule, "relaxed");
        assert_eq!(a.line, 2);
        assert!(a.reason.contains("ticket dispenser"));
        // Line 2 is comment-only, so the allow covers line 3.
        assert!(lexed.allows_covering(3).any(|a| a.rule == "relaxed"));
        assert!(lexed.allows_covering(1).next().is_none());
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "let x = m.iter(); // lint:allow(hash_iter) folded commutatively below\n";
        let lexed = lex(src);
        assert!(lexed.allows_covering(1).any(|a| a.rule == "hash_iter"));
    }

    #[test]
    fn safety_comments_are_harvested_and_cover_code_below() {
        let src = "\n// SAFETY: the mapping is immutable for its lifetime\n\
                   // and never handed out mutably.\nunsafe impl Send for M {}\n\
                   \nunsafe impl Sync for M {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.safety_lines, vec![2]);
        assert!(lexed.safety_covering(4), "contiguous comment block above");
        assert!(!lexed.safety_covering(6), "blank+code break coverage");
        // Same-line marker also covers.
        let lexed = lex("let p = unsafe { deref(q) }; // SAFETY: q is live\n");
        assert!(lexed.safety_covering(1));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet target = 1;\n";
        let lexed = lex(src);
        let t = lexed.tokens.iter().find(|t| t.text == "target").unwrap();
        assert_eq!(t.line, 4);
    }
}
